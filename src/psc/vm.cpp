#include "psc/vm.h"

#include <vector>

namespace btcfast::psc {
namespace {

using crypto::U256;

constexpr std::size_t kMaxStack = 1024;
constexpr std::size_t kMaxMemory = 1 << 20;  // 1 MiB hard cap

struct Frame {
  std::vector<U256> stack;
  Bytes memory;
  std::size_t pc = 0;
};

Gas op_base_cost(Op op) {
  switch (op) {
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
      return 5;
    case Op::kJump:
      return 8;
    case Op::kJumpI:
      return 10;
    case Op::kJumpDest:
      return 1;
    default:
      return 3;  // "verylow" tier; storage/hash/log/pay charge via the host
  }
}

/// Memory read/write helpers with expansion charging.
bool ensure_memory(HostContext& host, Frame& frame, std::size_t end) {
  if (end > kMaxMemory) return false;
  if (end > frame.memory.size()) {
    host.charge_memory(end - frame.memory.size());
    frame.memory.resize(end, 0);
  }
  return true;
}

U256 load_word(ByteSpan data, std::size_t offset) {
  ByteArray<32> buf{};
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t idx = offset + i;
    buf[i] = idx < data.size() ? data[idx] : 0;
  }
  return U256::from_be_bytes({buf.data(), buf.size()});
}

psc::Address word_to_address(const U256& w) {
  const auto be = w.to_be_bytes();
  psc::Address a;
  for (std::size_t i = 0; i < 20; ++i) a.bytes[i] = be[12 + i];
  return a;
}

U256 address_to_word(const psc::Address& a) {
  ByteArray<32> buf{};
  for (std::size_t i = 0; i < 20; ++i) buf[12 + i] = a.bytes[i];
  return U256::from_be_bytes({buf.data(), buf.size()});
}

}  // namespace

std::uint32_t method_selector(const std::string& method) {
  const auto digest = crypto::sha256(as_bytes(method));
  return (static_cast<std::uint32_t>(digest[0]) << 24) |
         (static_cast<std::uint32_t>(digest[1]) << 16) |
         (static_cast<std::uint32_t>(digest[2]) << 8) | static_cast<std::uint32_t>(digest[3]);
}

Status execute_bytecode(HostContext& host, ByteSpan code, ByteSpan calldata, Bytes* ret) {
  // Valid jump destinations (positions holding JUMPDEST outside push data).
  std::vector<bool> jumpdest(code.size(), false);
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::uint8_t b = code[i];
    if (b == static_cast<std::uint8_t>(Op::kJumpDest)) jumpdest[i] = true;
    if (b >= static_cast<std::uint8_t>(Op::kPush1) &&
        b <= static_cast<std::uint8_t>(Op::kPush1) + 31) {
      i += static_cast<std::size_t>(b - static_cast<std::uint8_t>(Op::kPush1)) + 1;
    }
  }

  Frame f;
  auto pop = [&]() -> U256 {
    const U256 v = f.stack.back();
    f.stack.pop_back();
    return v;
  };
  auto need = [&](std::size_t n) { return f.stack.size() >= n; };
  auto push = [&](const U256& v) {
    f.stack.push_back(v);
    return f.stack.size() <= kMaxStack;
  };

  while (f.pc < code.size()) {
    const std::uint8_t raw = code[f.pc];
    const Op op = static_cast<Op>(raw);

    // PUSH1..PUSH32 band.
    if (raw >= static_cast<std::uint8_t>(Op::kPush1) &&
        raw <= static_cast<std::uint8_t>(Op::kPush1) + 31) {
      host.charge_compute(3);
      const std::size_t n = static_cast<std::size_t>(raw - static_cast<std::uint8_t>(Op::kPush1)) + 1;
      ByteArray<32> buf{};
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = f.pc + 1 + i;
        buf[32 - n + i] = idx < code.size() ? code[idx] : 0;
      }
      if (!push(U256::from_be_bytes({buf.data(), buf.size()}))) {
        return make_error("vm-stack-overflow");
      }
      f.pc += n + 1;
      continue;
    }
    // DUP1..DUP16 band.
    if (raw >= static_cast<std::uint8_t>(Op::kDup1) &&
        raw <= static_cast<std::uint8_t>(Op::kDup1) + 15) {
      host.charge_compute(3);
      const std::size_t n = static_cast<std::size_t>(raw - static_cast<std::uint8_t>(Op::kDup1)) + 1;
      if (!need(n)) return make_error("vm-stack-underflow");
      if (!push(f.stack[f.stack.size() - n])) return make_error("vm-stack-overflow");
      ++f.pc;
      continue;
    }
    // SWAP1..SWAP16 band.
    if (raw >= static_cast<std::uint8_t>(Op::kSwap1) &&
        raw <= static_cast<std::uint8_t>(Op::kSwap1) + 15) {
      host.charge_compute(3);
      const std::size_t n = static_cast<std::size_t>(raw - static_cast<std::uint8_t>(Op::kSwap1)) + 1;
      if (!need(n + 1)) return make_error("vm-stack-underflow");
      std::swap(f.stack[f.stack.size() - 1], f.stack[f.stack.size() - 1 - n]);
      ++f.pc;
      continue;
    }

    host.charge_compute(op_base_cost(op));
    switch (op) {
      case Op::kStop:
        return Status::success();

      case Op::kAdd:
      case Op::kMul:
      case Op::kSub:
      case Op::kDiv:
      case Op::kMod:
      case Op::kLt:
      case Op::kGt:
      case Op::kEq:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr: {
        if (!need(2)) return make_error("vm-stack-underflow");
        const U256 a = pop();
        const U256 b = pop();
        U256 r;
        switch (op) {
          case Op::kAdd: r = a + b; break;
          case Op::kMul: r = a * b; break;
          case Op::kSub: r = a - b; break;
          case Op::kDiv: r = b.is_zero() ? U256::zero() : a / b; break;
          case Op::kMod: r = b.is_zero() ? U256::zero() : a % b; break;
          case Op::kLt: r = a < b ? U256::one() : U256::zero(); break;
          case Op::kGt: r = a > b ? U256::one() : U256::zero(); break;
          case Op::kEq: r = a == b ? U256::one() : U256::zero(); break;
          case Op::kAnd: r = a & b; break;
          case Op::kOr: r = a | b; break;
          case Op::kXor: {
            U256 x;
            for (int i = 0; i < 4; ++i) x.w[i] = a.w[i] ^ b.w[i];
            r = x;
            break;
          }
          case Op::kShl: r = b << static_cast<unsigned>(a.low64() & 0x1ff); break;
          case Op::kShr: r = b >> static_cast<unsigned>(a.low64() & 0x1ff); break;
          default: break;
        }
        if (!push(r)) return make_error("vm-stack-overflow");
        ++f.pc;
        break;
      }

      case Op::kIsZero:
      case Op::kNot: {
        if (!need(1)) return make_error("vm-stack-underflow");
        const U256 a = pop();
        if (op == Op::kIsZero) {
          (void)push(a.is_zero() ? U256::one() : U256::zero());
        } else {
          U256 x;
          for (int i = 0; i < 4; ++i) x.w[i] = ~a.w[i];
          (void)push(x);
        }
        ++f.pc;
        break;
      }

      case Op::kSha256: {
        if (!need(2)) return make_error("vm-stack-underflow");
        const std::size_t off = static_cast<std::size_t>(pop().low64());
        const std::size_t len = static_cast<std::size_t>(pop().low64());
        if (!ensure_memory(host, f, off + len)) return make_error("vm-memory-limit");
        const auto digest = host.sha256({f.memory.data() + off, len});
        (void)push(U256::from_be_bytes({digest.data(), digest.size()}));
        ++f.pc;
        break;
      }

      case Op::kCaller:
        if (!push(address_to_word(host.caller()))) return make_error("vm-stack-overflow");
        ++f.pc;
        break;
      case Op::kCallValue:
        if (!push(U256(host.call_value()))) return make_error("vm-stack-overflow");
        ++f.pc;
        break;
      case Op::kCallDataLoad: {
        if (!need(1)) return make_error("vm-stack-underflow");
        const std::size_t off = static_cast<std::size_t>(pop().low64());
        if (!push(load_word(calldata, off))) return make_error("vm-stack-overflow");
        ++f.pc;
        break;
      }
      case Op::kCallDataSize:
        if (!push(U256(calldata.size()))) return make_error("vm-stack-overflow");
        ++f.pc;
        break;
      case Op::kTimestamp:
        if (!push(U256(host.block_time_ms()))) return make_error("vm-stack-overflow");
        ++f.pc;
        break;
      case Op::kNumber:
        if (!push(U256(host.block_number()))) return make_error("vm-stack-overflow");
        ++f.pc;
        break;
      case Op::kSelfBalance:
        if (!push(U256(host.self_balance()))) return make_error("vm-stack-overflow");
        ++f.pc;
        break;

      case Op::kPop:
        if (!need(1)) return make_error("vm-stack-underflow");
        (void)pop();
        ++f.pc;
        break;

      case Op::kMLoad: {
        if (!need(1)) return make_error("vm-stack-underflow");
        const std::size_t off = static_cast<std::size_t>(pop().low64());
        if (!ensure_memory(host, f, off + 32)) return make_error("vm-memory-limit");
        (void)push(U256::from_be_bytes({f.memory.data() + off, 32}));
        ++f.pc;
        break;
      }
      case Op::kMStore: {
        if (!need(2)) return make_error("vm-stack-underflow");
        const std::size_t off = static_cast<std::size_t>(pop().low64());
        const U256 value = pop();
        if (!ensure_memory(host, f, off + 32)) return make_error("vm-memory-limit");
        const auto be = value.to_be_bytes();
        for (std::size_t i = 0; i < 32; ++i) f.memory[off + i] = be[i];
        ++f.pc;
        break;
      }

      case Op::kSLoad: {
        if (!need(1)) return make_error("vm-stack-underflow");
        if (!push(host.sload(pop()))) return make_error("vm-stack-overflow");
        ++f.pc;
        break;
      }
      case Op::kSStore: {
        if (!need(2)) return make_error("vm-stack-underflow");
        const U256 key = pop();
        const U256 value = pop();
        host.sstore(key, value);
        ++f.pc;
        break;
      }

      case Op::kJump:
      case Op::kJumpI: {
        if (!need(op == Op::kJump ? 1 : 2)) return make_error("vm-stack-underflow");
        const std::size_t dest = static_cast<std::size_t>(pop().low64());
        bool taken = true;
        if (op == Op::kJumpI) taken = !pop().is_zero();
        if (!taken) {
          ++f.pc;
          break;
        }
        if (dest >= code.size() || !jumpdest[dest]) return make_error("vm-bad-jumpdest");
        f.pc = dest;
        break;
      }
      case Op::kJumpDest:
        ++f.pc;
        break;

      case Op::kLog: {
        if (!need(2)) return make_error("vm-stack-underflow");
        const std::size_t off = static_cast<std::size_t>(pop().low64());
        const std::size_t len = static_cast<std::size_t>(pop().low64());
        if (!ensure_memory(host, f, off + len)) return make_error("vm-memory-limit");
        host.emit_log("vm", Bytes(f.memory.begin() + static_cast<std::ptrdiff_t>(off),
                                  f.memory.begin() + static_cast<std::ptrdiff_t>(off + len)));
        ++f.pc;
        break;
      }

      case Op::kPay: {
        if (!need(2)) return make_error("vm-stack-underflow");
        const psc::Address to = word_to_address(pop());
        const Value amount = pop().low64();
        const bool ok = host.transfer_out(to, amount);
        if (!push(ok ? U256::one() : U256::zero())) return make_error("vm-stack-overflow");
        ++f.pc;
        break;
      }

      case Op::kReturn:
      case Op::kRevert: {
        if (!need(2)) return make_error("vm-stack-underflow");
        const std::size_t off = static_cast<std::size_t>(pop().low64());
        const std::size_t len = static_cast<std::size_t>(pop().low64());
        if (!ensure_memory(host, f, off + len)) return make_error("vm-memory-limit");
        Bytes data(f.memory.begin() + static_cast<std::ptrdiff_t>(off),
                   f.memory.begin() + static_cast<std::ptrdiff_t>(off + len));
        if (op == Op::kReturn) {
          if (ret != nullptr) *ret = std::move(data);
          return Status::success();
        }
        return make_error("vm-revert", std::string(data.begin(), data.end()));
      }

      default:
        return make_error("vm-bad-opcode",
                          "0x" + std::to_string(static_cast<unsigned>(raw)));
    }
  }
  return Status::success();  // fell off the end: implicit STOP
}

VmContract::VmContract(Bytes code) : code_(std::move(code)) {}

Status VmContract::call(HostContext& host, const std::string& method, ByteSpan args,
                        Bytes* ret) {
  // calldata = selector(4) || args
  Bytes calldata;
  calldata.reserve(4 + args.size());
  const std::uint32_t sel = method_selector(method);
  calldata.push_back(static_cast<std::uint8_t>(sel >> 24));
  calldata.push_back(static_cast<std::uint8_t>(sel >> 16));
  calldata.push_back(static_cast<std::uint8_t>(sel >> 8));
  calldata.push_back(static_cast<std::uint8_t>(sel));
  append(calldata, args);
  return execute_bytecode(host, code_, calldata, ret);
}

}  // namespace btcfast::psc
