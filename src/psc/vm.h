// A compact EVM-style stack virtual machine for the PSC chain. PayJudger
// itself runs as a native contract over the metered host (a documented
// substitution), but the chain is genuinely programmable: arbitrary
// bytecode contracts execute through this VM with per-opcode gas, 256-bit
// words, byte-addressed memory, and the same storage/log/transfer host
// surface native contracts use.
//
// Calling convention: calldata = 4-byte selector (first 4 bytes of
// SHA-256 of the method name) followed by the raw argument bytes; the
// dispatcher in the bytecode compares CALLDATALOAD selectors.
#pragma once

#include <cstdint>
#include <string>

#include "psc/host.h"

namespace btcfast::psc {

/// Opcode set (values roughly follow the EVM's layout where it exists).
enum class Op : std::uint8_t {
  kStop = 0x00,
  kAdd = 0x01,
  kMul = 0x02,
  kSub = 0x03,
  kDiv = 0x04,
  kMod = 0x06,
  kLt = 0x10,
  kGt = 0x11,
  kEq = 0x14,
  kIsZero = 0x15,
  kAnd = 0x16,
  kOr = 0x17,
  kXor = 0x18,
  kNot = 0x19,
  kShl = 0x1b,
  kShr = 0x1c,
  kSha256 = 0x20,       ///< pops (offset, len), hashes memory, pushes digest
  kCaller = 0x33,       ///< pushes the caller address (as a 160-bit word)
  kCallValue = 0x34,
  kCallDataLoad = 0x35, ///< pops offset, pushes 32 bytes of calldata
  kCallDataSize = 0x36,
  kTimestamp = 0x42,    ///< block time, milliseconds
  kNumber = 0x43,       ///< block number
  kSelfBalance = 0x47,
  kPop = 0x50,
  kMLoad = 0x51,
  kMStore = 0x52,
  kSLoad = 0x54,
  kSStore = 0x55,
  kJump = 0x56,
  kJumpI = 0x57,
  kJumpDest = 0x5b,
  kPush1 = 0x60,  // .. kPush32 = 0x7f
  kDup1 = 0x80,   // .. kDup16 = 0x8f
  kSwap1 = 0x90,  // .. kSwap16 = 0x9f
  kLog = 0xa0,    ///< pops (offset, len); topic is the method selector word
  kPay = 0xf1,    ///< pops (to, amount); transfers from contract balance; pushes success
  kReturn = 0xf3, ///< pops (offset, len); returns memory slice
  kRevert = 0xfd, ///< pops (offset, len); reverts with memory slice as reason
};

/// 4-byte method selector: first 4 bytes of SHA-256(method name).
[[nodiscard]] std::uint32_t method_selector(const std::string& method);

/// A deployable bytecode contract. The chain invokes call(); the VM maps
/// (method, args) to calldata and executes the code.
class VmContract final : public Contract {
 public:
  explicit VmContract(Bytes code);

  [[nodiscard]] Status call(HostContext& host, const std::string& method, ByteSpan args,
                            Bytes* ret) override;

  [[nodiscard]] const Bytes& code() const noexcept { return code_; }

 private:
  Bytes code_;
};

/// Direct interpreter entry (tests drive raw fragments through this).
[[nodiscard]] Status execute_bytecode(HostContext& host, ByteSpan code, ByteSpan calldata,
                                      Bytes* ret);

}  // namespace btcfast::psc
