#include "replication/failover.h"

#include <algorithm>

namespace btcfast::replication {
namespace {

LogShipper::Options shipper_options(const ReplicationConfig& config) {
  LogShipper::Options o;
  o.max_batch_records = config.max_batch_records;
  o.max_buffer_records = config.max_buffer_records;
  o.retry_backoff_ms = config.retry_backoff_ms;
  o.max_backoff_ms = config.max_backoff_ms;
  return o;
}

}  // namespace

Promotion promote_follower(Follower& follower, std::uint64_t new_epoch) {
  Promotion out;
  out.epoch = new_epoch;

  // Fence before anything else: if we crash mid-promotion, the node must
  // already be deaf to the deposed primary when it comes back.
  if (!follower.fence(new_epoch)) {
    out.error = "cannot persist fence epoch";
    return out;
  }

  const std::string dir = follower.dir();
  {
    // Close the replica's store so the reopen below replays its WAL and
    // snapshot from disk — the same recovery path a crashed primary
    // takes, which is exactly the byte-exactness claim being extended.
    auto old = follower.take_store();
    old.reset();
  }
  store::StoreOptions opts;
  opts.policy = store::FsyncPolicy::kAlways;  // promotion is rare; be durable
  store::RecoveryInfo info;
  auto promoted = store::DurableStore::open(dir, opts, &info);
  if (promoted == nullptr) {
    out.error = "promotion replay failed: " + info.error;
    return out;
  }
  out.promoted_seq = promoted->last_committed_seq();

  store::StoreRecord rec;
  rec.kind = store::RecordKind::kEpochChange;
  rec.epoch = new_epoch;
  if (!promoted->append(rec) || !promoted->sync()) {
    out.error = "cannot commit epoch-change record";
    return out;
  }
  out.store = std::move(promoted);
  return out;
}

ReplicationGroup::ReplicationGroup(ReplicationConfig config)
    : config_(config), shipper_(shipper_options(config)) {}

void ReplicationGroup::attach_primary(store::DurableStore* primary) {
  std::lock_guard lock(mu_);
  shipper_.attach_primary(primary);
}

void ReplicationGroup::detach_primary() {
  std::lock_guard lock(mu_);
  shipper_.detach_primary();
}

std::size_t ReplicationGroup::add_follower(FollowerLink* link) {
  std::lock_guard lock(mu_);
  return shipper_.add_follower(link);
}

void ReplicationGroup::remove_follower(std::size_t index) {
  std::lock_guard lock(mu_);
  shipper_.remove_follower(index);
}

bool ReplicationGroup::quorum_commit(std::uint64_t seq, std::uint64_t now_ms) {
  std::lock_guard lock(mu_);
  now_floor_ = std::max(now_floor_, now_ms);
  if (config_.quorum == 0) {
    if (!shipper_.fenced_out()) {
      // Ungated, but still stream to whatever followers exist so they
      // trail the primary closely.
      shipper_.pump(now_floor_);
      acked_high_ = std::max(acked_high_, seq);
      return true;
    }
    return false;  // a deposed primary must stop acking even ungated
  }
  for (std::size_t attempt = 0; attempt < std::max<std::size_t>(config_.quorum_attempts, 1);
       ++attempt) {
    shipper_.pump(now_floor_);
    if (shipper_.fenced_out()) break;
    if (shipper_.acked_watermark(config_.quorum) >= seq) {
      acked_high_ = std::max(acked_high_, seq);
      return true;
    }
    // Step the clock past one backoff so a momentarily-down follower is
    // retried within this call instead of failing the client.
    now_floor_ += config_.retry_backoff_ms + 1;
  }
  ++quorum_failures_;
  return false;
}

void ReplicationGroup::pump(std::uint64_t now_ms) {
  std::lock_guard lock(mu_);
  now_floor_ = std::max(now_floor_, now_ms);
  shipper_.pump(now_floor_);
}

PromotionPlan ReplicationGroup::plan_promotion() {
  std::lock_guard lock(mu_);
  PromotionPlan plan;
  auto cursors = shipper_.query_cursors();
  bool found = false;
  std::uint64_t best_epoch = 0;
  std::uint64_t best_seq = 0;
  std::uint64_t max_epoch = shipper_.epoch();
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    if (!cursors[i]) continue;
    const auto& c = *cursors[i];
    max_epoch = std::max(max_epoch, c.epoch);
    if (!found || c.epoch > best_epoch || (c.epoch == best_epoch && c.last_seq > best_seq)) {
      found = true;
      best_epoch = c.epoch;
      best_seq = c.last_seq;
      plan.index = i;
    }
  }
  if (!found) {
    plan.error = "no reachable follower to promote";
    return plan;
  }
  plan.new_epoch = max_epoch + 1;
  plan.promoted_seq = best_seq;
  return plan;
}

std::size_t ReplicationGroup::fence_followers(std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  std::size_t fenced = 0;
  for (std::size_t i = 0; i < shipper_.slot_count(); ++i) {
    FollowerLink* link = shipper_.follower_link(i);
    if (link != nullptr && link->fence(epoch)) ++fenced;  // best effort
  }
  return fenced;
}

std::uint64_t ReplicationGroup::acked_high() const {
  std::lock_guard lock(mu_);
  return acked_high_;
}

std::uint64_t ReplicationGroup::epoch() const {
  std::lock_guard lock(mu_);
  return shipper_.epoch();
}

ReplicationStats ReplicationGroup::stats() const {
  std::lock_guard lock(mu_);
  ReplicationStats s;
  const ShipStats ship = shipper_.stats();
  s.epoch = shipper_.epoch();
  s.followers = shipper_.follower_count();
  s.quorum = config_.quorum;
  s.acked_watermark = config_.quorum > 0 ? shipper_.acked_watermark(config_.quorum) : 0;
  s.acked_high = acked_high_;
  s.batches_shipped = ship.batches_shipped;
  s.records_shipped = ship.records_shipped;
  s.ship_failures = ship.ship_failures;
  s.snapshot_installs = ship.snapshot_installs;
  s.quorum_failures = quorum_failures_;
  s.fenced_out = shipper_.fenced_out();
  return s;
}

}  // namespace btcfast::replication
