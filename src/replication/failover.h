// Epoch-numbered failover over the log shipper. ReplicationGroup is the
// primary-side coordinator: it implements store::CommitGate so the
// gateway acks a reservation only once a configurable quorum of
// followers have durably appended it (quorum = 0 degrades to today's
// single-node behavior), and it plans promotions — pick the reachable
// follower with the highest (epoch, sequence), fence the others, and
// hand its directory to promote_follower(), which replays the WAL
// through the existing DurableStore::open path. The promoted store's
// first write is a kEpochChange record, so the new epoch is itself part
// of the replicated, byte-exact state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "replication/follower.h"
#include "replication/log_ship.h"
#include "store/recovery.h"

namespace btcfast::replication {

struct ReplicationConfig {
  /// Followers that must durably hold a record before the primary acks
  /// it. 0 = no gating (single-node behavior).
  std::size_t quorum = 0;
  std::size_t max_batch_records = 256;
  std::size_t max_buffer_records = 4096;
  std::uint64_t retry_backoff_ms = 50;
  std::uint64_t max_backoff_ms = 2000;
  /// Retries of the full ship round inside one quorum_commit() before
  /// giving up (each advances the internal clock past one backoff step).
  std::size_t quorum_attempts = 3;
};

struct ReplicationStats {
  std::uint64_t epoch = 0;
  std::uint64_t followers = 0;
  std::uint64_t quorum = 0;
  std::uint64_t acked_watermark = 0;  ///< highest seq a quorum holds
  std::uint64_t acked_high = 0;       ///< highest seq quorum_commit() acked
  std::uint64_t batches_shipped = 0;
  std::uint64_t records_shipped = 0;
  std::uint64_t ship_failures = 0;
  std::uint64_t snapshot_installs = 0;
  std::uint64_t quorum_failures = 0;  ///< quorum_commit() calls that gave up
  bool fenced_out = false;            ///< this primary was deposed
};

/// The outcome of picking a promotion target.
struct PromotionPlan {
  std::size_t index = 0;          ///< follower slot to promote
  std::uint64_t new_epoch = 0;    ///< epoch the promoted node writes under
  std::uint64_t promoted_seq = 0; ///< its durable position at plan time
  std::string error;              ///< nonempty: no reachable follower

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// A completed promotion: the follower's directory reopened through
/// DurableStore::open (full replay — the cross-node extension of the
/// byte-exact recovery invariant) with the kEpochChange record already
/// committed.
struct Promotion {
  std::unique_ptr<store::DurableStore> store;
  std::uint64_t epoch = 0;
  std::uint64_t promoted_seq = 0;  ///< last sequence carried over (pre-epoch-record)
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Promote one follower: fence it at `new_epoch` first (a crash
/// mid-promotion must leave the node deaf to the old primary), close its
/// store, reopen the directory from scratch, then commit + fsync the
/// kEpochChange record. The Follower object is defunct afterwards.
[[nodiscard]] Promotion promote_follower(Follower& follower, std::uint64_t new_epoch);

class ReplicationGroup final : public store::CommitGate {
 public:
  explicit ReplicationGroup(ReplicationConfig config);

  /// Point the group at (a new) primary store: installs the commit tap
  /// and adopts the primary's epoch.
  void attach_primary(store::DurableStore* primary);
  void detach_primary();

  std::size_t add_follower(FollowerLink* link);
  void remove_follower(std::size_t index);

  /// store::CommitGate — safe for concurrent serve threads. Ships until
  /// a quorum durably holds `seq` or the attempts run out. `now_ms` only
  /// ratchets the internal clock forward (passing 0 reuses the latest).
  [[nodiscard]] bool quorum_commit(std::uint64_t seq, std::uint64_t now_ms) override;

  /// Ship without gating (background catch-up driver).
  void pump(std::uint64_t now_ms);

  /// Pick the reachable follower with the highest (epoch, sequence).
  [[nodiscard]] PromotionPlan plan_promotion();

  /// Best-effort fence on every reachable follower; returns how many
  /// accepted. Called with the plan's new_epoch before promote_follower.
  std::size_t fence_followers(std::uint64_t epoch);

  [[nodiscard]] std::uint64_t acked_high() const;
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] ReplicationStats stats() const;

 private:
  ReplicationConfig config_;
  mutable std::mutex mu_;
  LogShipper shipper_;
  std::uint64_t acked_high_ = 0;
  std::uint64_t now_floor_ = 0;
  std::uint64_t quorum_failures_ = 0;
};

}  // namespace btcfast::replication
