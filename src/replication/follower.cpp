#include "replication/follower.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/serialize.h"
#include "store/crc32c.h"
#include "store/wal.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace btcfast::replication {
namespace fs = std::filesystem;
namespace {

constexpr std::uint32_t kFenceMagic = 0x31454642;  // "BFE1" little-endian

std::string fence_path(const std::string& dir) { return (fs::path(dir) / "FENCE").string(); }

bool is_store_file(const std::string& name) {
  const auto has = [&](const std::string& prefix, const std::string& suffix) {
    return name.size() > prefix.size() + suffix.size() &&
           name.compare(0, prefix.size(), prefix) == 0 &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  return has("wal-", ".wal") || has("snap-", ".snap");
}

}  // namespace

std::uint64_t read_fence_epoch(const std::string& dir) {
  std::ifstream in(fence_path(dir), std::ios::binary);
  if (!in) return 0;
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  Reader r(data);
  const auto magic = r.u32le();
  const auto epoch = r.u64le();
  const auto crc = r.u32le();
  if (!magic || !epoch || !crc || *magic != kFenceMagic || !r.at_end()) return 0;
  Writer covered;
  covered.u64le(*epoch);
  if (store::crc32c(covered.data()) != *crc) return 0;
  return *epoch;
}

bool write_fence_epoch(const std::string& dir, std::uint64_t epoch) {
  Writer covered;
  covered.u64le(epoch);
  Writer w;
  w.u32le(kFenceMagic);
  w.u64le(epoch);
  w.u32le(store::crc32c(covered.data()));

  const std::string path = fence_path(dir);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(w.data().data(), 1, w.size(), f) == w.size();
  bool synced = false;
  if (wrote && std::fflush(f) == 0) {
#if defined(_WIN32)
    synced = _commit(_fileno(f)) == 0;
#else
    synced = ::fsync(fileno(f)) == 0;
#endif
  }
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !synced || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

Follower::Follower(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {}

std::unique_ptr<Follower> Follower::open(const std::string& dir, Options options,
                                         std::string* error) {
  std::unique_ptr<Follower> f(new Follower(dir, options));
  store::RecoveryInfo info;
  f->store_ = store::DurableStore::open(dir, options.store, &info);
  if (f->store_ == nullptr) {
    if (error != nullptr) *error = info.error;
    return nullptr;
  }
  f->log_epoch_ = f->store_->image_copy().epoch;
  // The persisted fence may lead the log (fence() during a promotion we
  // never received batches from) — the floor is the max of the two.
  f->fenced_epoch_ = std::max(f->log_epoch_, read_fence_epoch(dir));
  return f;
}

ShipAck Follower::append_batch(const ShipBatch& batch) {
  ShipAck nack;
  if (store_ == nullptr) {
    nack.error = ShipError::kStoreFailed;
    return nack;
  }
  nack.next_seq = store_->next_seq();
  if (batch.epoch < fenced_epoch_) {
    nack.error = ShipError::kStaleEpoch;
    return nack;
  }

  // Re-validate the shipped frames with the same scanner recovery uses:
  // prepending a file header turns the batch into a well-formed WAL
  // image, giving us CRC + contiguity + framing checks for free.
  Bytes image;
  store::append_wal_header(image);
  append(image, batch.framed);
  const store::WalScan scan = store::scan_wal(image, batch.first_seq);
  if (!scan.ok() || scan.truncated_tail || scan.records.size() != batch.count) {
    nack.error = ShipError::kCorrupt;
    return nack;
  }

  const std::uint64_t next = store_->next_seq();
  if (batch.first_seq > next) {
    nack.error = ShipError::kSequenceGap;
    return nack;
  }
  if (batch.epoch > log_epoch_ && batch.first_seq < next) {
    // A newer-epoch primary is shipping sequences we already hold: our
    // copies came from a deposed epoch and may differ byte-for-byte.
    // Appending around them would silently fork the log — fail closed
    // and let the shipper reinstall from a snapshot.
    nack.error = ShipError::kDiverged;
    return nack;
  }

  for (const auto& rec : scan.records) {
    if (rec.seq < next) continue;  // idempotent re-ship of acked records
    const auto decoded = store::StoreRecord::deserialize(rec.payload);
    if (!decoded) {
      nack.error = ShipError::kCorrupt;
      nack.next_seq = store_->next_seq();
      return nack;
    }
    if (!store_->append(*decoded)) {
      // Invalid transition: the primary's log can never produce one, so
      // local state has diverged from the stream. Fail closed.
      nack.error = ShipError::kStoreFailed;
      nack.next_seq = store_->next_seq();
      return nack;
    }
  }
  const bool durable = options_.fsync_acks ? store_->sync() : store_->commit();
  if (!durable) {
    nack.error = ShipError::kStoreFailed;
    nack.next_seq = store_->next_seq();
    return nack;
  }
  if (batch.epoch > log_epoch_) {
    log_epoch_ = batch.epoch;
    if (batch.epoch > fenced_epoch_) {
      // Accepting a newer epoch's batch commits us to it: persist the
      // fence so a restart keeps rejecting the deposed primary.
      if (!write_fence_epoch(dir_, batch.epoch)) {
        nack.error = ShipError::kStoreFailed;
        nack.next_seq = store_->next_seq();
        return nack;
      }
      fenced_epoch_ = batch.epoch;
    }
  }
  ++batches_appended_;
  ShipAck ack;
  ack.ok = true;
  ack.next_seq = store_->next_seq();
  return ack;
}

FollowerCursor Follower::cursor() const {
  FollowerCursor c;
  c.epoch = log_epoch_;
  c.last_seq = store_->last_committed_seq();
  return c;
}

bool Follower::fence(std::uint64_t epoch) {
  if (epoch <= fenced_epoch_) return true;  // fences only ratchet up
  if (!write_fence_epoch(dir_, epoch)) return false;
  fenced_epoch_ = epoch;
  return true;
}

bool Follower::install(const store::StateImage& image, std::uint64_t epoch) {
  if (epoch < fenced_epoch_) return false;  // stale primary can't reimage us
  store_.reset();  // close segment files before deleting them

  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (is_store_file(entry.path().filename().string())) fs::remove(entry.path(), ec);
  }
  if (ec) return false;

  char name[40];
  std::snprintf(name, sizeof(name), "snap-%016llx.snap",
                static_cast<unsigned long long>(image.last_seq));
  if (!store::write_snapshot((fs::path(dir_) / name).string(), image)) return false;

  store::RecoveryInfo info;
  store_ = store::DurableStore::open(dir_, options_.store, &info);
  if (store_ == nullptr) return false;
  log_epoch_ = image.epoch;
  return fence(std::max(epoch, image.epoch));
}

}  // namespace btcfast::replication
