// Follower replica: owns its own DurableStore directory and appends the
// primary's shipped batches to it, failing closed on sequence gaps, CRC
// mismatches, stale epochs and cross-epoch divergence. Its cursor is
// answered from the local WAL + snapshot, so a restarted follower
// resumes where its disk left off and the primary re-ships only the
// suffix.
//
// Epoch fencing is persisted in a sidecar file (`FENCE`) next to the
// segments — the Raft currentTerm analog. The fence only ratchets up:
// once a follower has seen epoch E (via an explicit fence() during
// promotion, or by appending a batch stamped E), every batch from an
// older epoch is rejected with kStaleEpoch, which is how a deposed
// primary's late batches die.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "replication/log_ship.h"
#include "store/recovery.h"

namespace btcfast::replication {

/// Read the persisted fence epoch (0 when absent/unreadable).
[[nodiscard]] std::uint64_t read_fence_epoch(const std::string& dir);
/// Persist the fence epoch atomically (temp file + fsync + rename).
[[nodiscard]] bool write_fence_epoch(const std::string& dir, std::uint64_t epoch);

class Follower {
 public:
  struct Options {
    store::StoreOptions store;  ///< the follower's own durability policy
    /// Force every acked batch to disk before acking. Off, an ack means
    /// "appended + committed" (group-commit durability per store policy);
    /// on, quorum acks are crash-durable.
    bool fsync_acks = false;
  };

  /// Open (create or resume) the replica at `dir`. nullptr + `*error`
  /// on unrecoverable local state.
  [[nodiscard]] static std::unique_ptr<Follower> open(const std::string& dir, Options options,
                                                     std::string* error = nullptr);

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Validate and append one shipped batch. Records the follower already
  /// holds (same epoch) are skipped idempotently, so re-ships after a
  /// lost ack are harmless.
  [[nodiscard]] ShipAck append_batch(const ShipBatch& batch);

  /// Durable position, from the local store.
  [[nodiscard]] FollowerCursor cursor() const;

  /// Raise (never lower) the fence and persist it.
  [[nodiscard]] bool fence(std::uint64_t epoch);

  /// Replace all local state with `image` under `epoch` (wipe segments
  /// and snapshots, write the image as the base snapshot, reopen).
  [[nodiscard]] bool install(const store::StateImage& image, std::uint64_t epoch);

  [[nodiscard]] store::DurableStore* store() noexcept { return store_.get(); }
  /// Promotion: hand the store over (the Follower is defunct after).
  [[nodiscard]] std::unique_ptr<store::DurableStore> take_store() { return std::move(store_); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t fenced_epoch() const noexcept { return fenced_epoch_; }
  [[nodiscard]] std::uint64_t log_epoch() const noexcept { return log_epoch_; }
  [[nodiscard]] std::uint64_t batches_appended() const noexcept { return batches_appended_; }

 private:
  Follower(std::string dir, Options options);

  std::string dir_;
  Options options_;
  std::unique_ptr<store::DurableStore> store_;
  std::uint64_t fenced_epoch_ = 0;  ///< persisted floor for acceptable batches
  std::uint64_t log_epoch_ = 0;     ///< epoch of the log content (image.epoch)
  std::uint64_t batches_appended_ = 0;
};

/// In-process transport: calls the Follower directly, with a crash
/// toggle so tests and the fuzzer can sever a replica. While down, every
/// call fails the way a dead TCP peer would.
class LocalFollowerLink final : public FollowerLink {
 public:
  explicit LocalFollowerLink(Follower* follower) : follower_(follower) {}

  /// Simulate crash/restart: a null or down follower is unreachable.
  void set_follower(Follower* follower) noexcept { follower_ = follower; }
  void set_down(bool down) noexcept { down_ = down; }
  [[nodiscard]] bool down() const noexcept { return down_ || follower_ == nullptr; }

  [[nodiscard]] ShipAck ship(const ShipBatch& batch) override {
    if (down()) return ShipAck{false, ShipError::kUnreachable, 0};
    return follower_->append_batch(batch);
  }
  [[nodiscard]] std::optional<FollowerCursor> cursor() override {
    if (down()) return std::nullopt;
    return follower_->cursor();
  }
  [[nodiscard]] bool fence(std::uint64_t epoch) override {
    return !down() && follower_->fence(epoch);
  }
  [[nodiscard]] bool install(const store::StateImage& image, std::uint64_t epoch) override {
    return !down() && follower_->install(image, epoch);
  }

 private:
  Follower* follower_;
  bool down_ = false;
};

}  // namespace btcfast::replication
