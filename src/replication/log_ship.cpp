#include "replication/log_ship.h"

#include <algorithm>

#include "store/wal.h"

namespace btcfast::replication {
namespace {

std::uint32_t load_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

LogShipper::LogShipper(Options options) : options_(options) {}

LogShipper::~LogShipper() { detach_primary(); }

void LogShipper::attach_primary(store::DurableStore* primary) {
  detach_primary();
  primary_ = primary;
  if (primary_ == nullptr) return;
  epoch_ = primary_->image_copy().epoch;
  fenced_out_ = false;
  {
    std::lock_guard lock(buf_mu_);
    buffer_.clear();
  }
  // Followers may hold state from before the switch; re-query cursors.
  for (auto& f : followers_) {
    f.cursor_known = false;
    f.backoff_until_ms = 0;
    f.failures = 0;
  }
  primary_->set_commit_tap([this](std::uint64_t first_seq, std::size_t count, ByteSpan framed) {
    on_commit(first_seq, count, framed);
  });
}

void LogShipper::detach_primary() {
  if (primary_ != nullptr) primary_->set_commit_tap(nullptr);
  primary_ = nullptr;
}

std::size_t LogShipper::add_follower(FollowerLink* link) {
  FollowerState f;
  f.link = link;
  followers_.push_back(f);
  return followers_.size() - 1;
}

void LogShipper::remove_follower(std::size_t index) {
  if (index < followers_.size()) followers_[index] = FollowerState{};
}

std::size_t LogShipper::follower_count() const {
  std::size_t n = 0;
  for (const auto& f : followers_) {
    if (f.link != nullptr) ++n;
  }
  return n;
}

void LogShipper::on_commit(std::uint64_t first_seq, std::size_t count, ByteSpan framed) {
  // Split the batch back into per-record frames so pump() can slice
  // arbitrary ranges without re-reading the primary's disk.
  std::lock_guard lock(buf_mu_);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (framed.size() - pos < store::kWalRecordHeaderSize) return;  // malformed: drop rest
    const std::uint32_t len = load_u32le(framed.data() + pos);
    const std::size_t record_size = store::kWalRecordHeaderSize + len;
    if (framed.size() - pos < record_size) return;
    BufferedFrame entry;
    entry.seq = first_seq + i;
    entry.framed.assign(framed.data() + pos, framed.data() + pos + record_size);
    if (!buffer_.empty() && entry.seq != buffer_.back().seq + 1) buffer_.clear();
    buffer_.push_back(std::move(entry));
    pos += record_size;
  }
  while (buffer_.size() > options_.max_buffer_records) buffer_.pop_front();
}

bool LogShipper::build_batch(std::uint64_t from, std::uint64_t committed,
                             store::ReadCursor& cursor, ShipBatch& out) {
  out.epoch = epoch_;
  out.first_seq = from;
  out.count = 0;
  out.framed.clear();
  const std::uint64_t want =
      std::min<std::uint64_t>(options_.max_batch_records, committed - from + 1);

  {
    std::lock_guard lock(buf_mu_);
    if (!buffer_.empty() && from >= buffer_.front().seq && from <= buffer_.back().seq) {
      const std::size_t start = static_cast<std::size_t>(from - buffer_.front().seq);
      for (std::size_t i = start; i < buffer_.size() && out.count < want; ++i) {
        const auto& entry = buffer_[i];
        if (entry.seq > committed) break;
        append(out.framed, entry.framed);
        ++out.count;
      }
      if (out.count > 0) return true;
    }
  }

  // Buffer rolled past the range: rebuild frames from the disk segments,
  // resuming the follower's byte cursor so a deep drain parses each
  // segment once, not once per batch.
  if (primary_ == nullptr) return false;
  store::RangeScan scan = primary_->read_range(from, static_cast<std::size_t>(want), &cursor);
  if (!scan.ok() || scan.pruned || scan.records.empty()) return false;
  cursor = scan.resume;
  ++stats_.catchup_reads;
  for (const auto& rec : scan.records) {
    store::append_wal_record(out.framed, rec.seq, rec.payload);
    ++out.count;
  }
  return true;
}

void LogShipper::note_down(FollowerState& f, std::uint64_t now_ms) {
  f.failures = std::min<std::uint32_t>(f.failures + 1, 31);
  const std::uint64_t delay = std::min<std::uint64_t>(
      options_.retry_backoff_ms << std::min<std::uint32_t>(f.failures - 1, 16),
      options_.max_backoff_ms);
  f.backoff_until_ms = now_ms + delay;
  f.cursor_known = false;  // re-sync the cursor once it answers again
}

void LogShipper::pump(std::uint64_t now_ms) {
  if (primary_ == nullptr) return;
  const std::uint64_t committed = primary_->last_committed_seq();
  for (auto& f : followers_) {
    if (f.link == nullptr) continue;
    if (now_ms < f.backoff_until_ms) continue;
    if (!f.cursor_known) {
      const auto c = f.link->cursor();
      if (!c) {
        ++stats_.ship_failures;
        note_down(f, now_ms);
        continue;
      }
      if (c->epoch > epoch_) {
        // The follower's log already carries a newer epoch: a promotion
        // happened behind our back. Stop acking; do not ship.
        fenced_out_ = true;
        continue;
      }
      f.acked_seq = c->last_seq;
      f.cursor_known = true;
      f.failures = 0;
      f.backoff_until_ms = 0;
    }
    std::size_t rounds = 0;
    while (f.acked_seq < committed && rounds++ < 64) {
      ShipBatch batch;
      if (!build_batch(f.acked_seq + 1, committed, f.read_cursor, batch)) {
        // Range pruned by compaction (or unreadable): install the image.
        ++stats_.snapshot_installs;
        const store::StateImage img = primary_->image_copy();
        if (!f.link->install(img, epoch_)) {
          ++stats_.ship_failures;
          note_down(f, now_ms);
          break;
        }
        f.acked_seq = std::max(f.acked_seq, img.last_seq);
        continue;
      }
      const ShipAck ack = f.link->ship(batch);
      if (ack.ok) {
        f.acked_seq = ack.next_seq - 1;
        f.failures = 0;
        ++stats_.batches_shipped;
        stats_.records_shipped += batch.count;
        continue;
      }
      ++stats_.ship_failures;
      if (ack.error == ShipError::kSequenceGap && ack.next_seq > 0 &&
          ack.next_seq - 1 != f.acked_seq) {
        f.acked_seq = ack.next_seq - 1;  // resync to what the follower wants
        continue;
      }
      if (ack.error == ShipError::kStaleEpoch) {
        fenced_out_ = true;
        break;
      }
      if (ack.error == ShipError::kDiverged) {
        // The follower holds same-sequence records from an older epoch;
        // only a full image reinstall can reconcile it.
        ++stats_.snapshot_installs;
        const store::StateImage img = primary_->image_copy();
        if (!f.link->install(img, epoch_)) {
          note_down(f, now_ms);
          break;
        }
        f.acked_seq = std::max(f.acked_seq, img.last_seq);
        continue;
      }
      note_down(f, now_ms);  // kUnreachable / kCorrupt / kStoreFailed
      break;
    }
  }
}

std::uint64_t LogShipper::acked_watermark(std::size_t quorum) const {
  if (quorum == 0) return UINT64_MAX;
  std::vector<std::uint64_t> acked;
  for (const auto& f : followers_) {
    if (f.link != nullptr && f.cursor_known) acked.push_back(f.acked_seq);
  }
  if (acked.size() < quorum) return 0;
  std::sort(acked.rbegin(), acked.rend());
  return acked[quorum - 1];
}

std::vector<std::optional<FollowerCursor>> LogShipper::query_cursors() {
  std::vector<std::optional<FollowerCursor>> out;
  out.reserve(followers_.size());
  for (auto& f : followers_) {
    if (f.link == nullptr) {
      out.push_back(std::nullopt);
      continue;
    }
    out.push_back(f.link->cursor());
  }
  return out;
}

}  // namespace btcfast::replication
