// Primary-side WAL shipping. The primary's DurableStore exposes a
// commit tap (store::CommitTap) that hands the shipper every committed
// batch in the exact length/CRC32C/seq framing the WAL wrote; the
// shipper streams those frames to N followers, tracking a per-follower
// acked-sequence cursor with retry/backoff on follower loss. A follower
// that fell behind the in-memory frame buffer is caught up from the
// primary's on-disk segments (DurableStore::read_range); one that fell
// behind compaction gets a full snapshot install.
//
// Thread-safety: on_commit() is safe to call from the store's commit
// path concurrently with everything else (it only touches the frame
// buffer, under its own leaf mutex). All other methods must be
// externally serialized — ReplicationGroup (failover.h) wraps this
// class in a mutex for concurrent quorum_commit() callers.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "store/recovery.h"

namespace btcfast::replication {

/// One shipped batch: `framed` holds `count` WAL records exactly as the
/// primary committed them (record framing only, no file header),
/// starting at `first_seq`, written under `epoch`.
struct ShipBatch {
  std::uint64_t epoch = 0;
  std::uint64_t first_seq = 0;
  std::size_t count = 0;
  Bytes framed;
};

enum class ShipError : std::uint8_t {
  kNone = 0,
  kUnreachable,  ///< link down / follower crashed
  kSequenceGap,  ///< batch does not start at the follower's next sequence
  kCorrupt,      ///< framing or CRC failure inside the batch
  kStaleEpoch,   ///< batch epoch is below the follower's fenced epoch
  kDiverged,     ///< a newer-epoch batch overlaps records the follower holds
  kStoreFailed,  ///< the follower's local append/commit failed closed
};

struct ShipAck {
  bool ok = false;
  ShipError error = ShipError::kNone;
  std::uint64_t next_seq = 0;  ///< follower's next expected sequence
};

/// A follower's durable position, answered from its local WAL+snapshot.
struct FollowerCursor {
  std::uint64_t epoch = 0;     ///< epoch of the follower's log content
  std::uint64_t last_seq = 0;  ///< highest durably appended sequence
};

/// Transport seam between the shipper and one follower. The in-process
/// implementation (LocalFollowerLink, follower.h) calls the Follower
/// directly; a socket transport would marshal the same four calls.
class FollowerLink {
 public:
  virtual ~FollowerLink() = default;
  [[nodiscard]] virtual ShipAck ship(const ShipBatch& batch) = 0;
  [[nodiscard]] virtual std::optional<FollowerCursor> cursor() = 0;
  /// Promotion-time fence: reject every batch with epoch < `epoch`.
  [[nodiscard]] virtual bool fence(std::uint64_t epoch) = 0;
  /// Full-state reinstall when the WAL range the follower needs is gone.
  [[nodiscard]] virtual bool install(const store::StateImage& image, std::uint64_t epoch) = 0;
};

struct ShipStats {
  std::uint64_t batches_shipped = 0;
  std::uint64_t records_shipped = 0;
  std::uint64_t ship_failures = 0;     ///< NACKs + unreachable links
  std::uint64_t snapshot_installs = 0; ///< catch-ups that needed a full image
  std::uint64_t catchup_reads = 0;     ///< batches rebuilt from disk segments
};

class LogShipper {
 public:
  struct Options {
    std::size_t max_batch_records = 256;   ///< chunk size per ship() call
    std::size_t max_buffer_records = 4096; ///< in-memory frame buffer cap
    std::uint64_t retry_backoff_ms = 50;   ///< first retry delay after a loss
    std::uint64_t max_backoff_ms = 2000;   ///< backoff ceiling (doubles per failure)
  };

  explicit LogShipper(Options options);

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;
  ~LogShipper();

  /// Point the shipper at (a new) primary: installs the commit tap,
  /// adopts the primary's epoch from its image, resets the frame buffer.
  void attach_primary(store::DurableStore* primary);
  void detach_primary();

  /// Register a follower; returns its slot index. Slots are stable —
  /// remove_follower() empties the slot without shifting others.
  std::size_t add_follower(FollowerLink* link);
  void remove_follower(std::size_t index);
  [[nodiscard]] std::size_t follower_count() const;

  /// Commit-tap entry. Safe to call concurrently (from inside the
  /// store's commit, under the store mutex); only buffers frames.
  void on_commit(std::uint64_t first_seq, std::size_t count, ByteSpan framed);

  /// Push every committed record toward every reachable follower,
  /// honoring per-follower backoff at `now_ms`.
  void pump(std::uint64_t now_ms);

  /// Highest sequence durably held by at least `quorum` followers
  /// (0 for an empty group or quorum larger than the group).
  [[nodiscard]] std::uint64_t acked_watermark(std::size_t quorum) const;

  /// Live cursors, one per slot (nullopt: empty slot or unreachable).
  [[nodiscard]] std::vector<std::optional<FollowerCursor>> query_cursors();

  /// The link in slot `index` (nullptr: out of range or removed).
  [[nodiscard]] FollowerLink* follower_link(std::size_t index) const {
    return index < followers_.size() ? followers_[index].link : nullptr;
  }
  /// Total slots ever allocated (including removed ones).
  [[nodiscard]] std::size_t slot_count() const noexcept { return followers_.size(); }

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  void set_epoch(std::uint64_t epoch) noexcept { epoch_ = epoch; }

  /// True once any follower rejected us as a stale epoch — a newer
  /// primary was promoted and this node must stop acking.
  [[nodiscard]] bool fenced_out() const noexcept { return fenced_out_; }

  [[nodiscard]] ShipStats stats() const noexcept { return stats_; }

 private:
  struct FollowerState {
    FollowerLink* link = nullptr;
    std::uint64_t acked_seq = 0;
    bool cursor_known = false;
    std::uint64_t backoff_until_ms = 0;
    std::uint32_t failures = 0;  ///< consecutive, drives the backoff
    /// Byte position of this follower's catch-up stream in the primary's
    /// segments — keeps a deep drain linear instead of re-parsing the
    /// segment prefix on every batch.
    store::ReadCursor read_cursor;
  };
  struct BufferedFrame {
    std::uint64_t seq = 0;
    Bytes framed;  ///< one record, WAL framing included
  };

  /// Assemble records [from .. min(from+max_batch-1, committed)] — from
  /// the frame buffer when it still covers `from`, else re-framed from
  /// the primary's disk segments (resuming at `cursor` and advancing it).
  /// False: the range was pruned (or the primary's log is unreadable) —
  /// caller falls back to install().
  [[nodiscard]] bool build_batch(std::uint64_t from, std::uint64_t committed,
                                 store::ReadCursor& cursor, ShipBatch& out);
  void note_down(FollowerState& f, std::uint64_t now_ms);

  Options options_;
  store::DurableStore* primary_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool fenced_out_ = false;
  std::vector<FollowerState> followers_;
  ShipStats stats_;

  // Leaf mutex: on_commit() runs under the store mutex, so the buffer
  // lock must never be held while calling into the store.
  mutable std::mutex buf_mu_;
  std::deque<BufferedFrame> buffer_;
};

}  // namespace btcfast::replication
