#include "replication/router.h"

#include <algorithm>

#include "gateway/wire.h"

namespace btcfast::replication {
namespace {

/// splitmix64 finalizer — full-avalanche, cheap, dependency-free.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Rendezvous weight of (partition, key).
std::uint64_t weight(std::uint64_t partition, std::uint64_t key) noexcept {
  return mix64(key ^ mix64(partition));
}

}  // namespace

EscrowRouter::EscrowRouter(const std::vector<std::uint64_t>& partition_ids) {
  for (const auto id : partition_ids) add_partition(id);
}

void EscrowRouter::add_partition(std::uint64_t id) {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return;
  ids_.insert(it, id);
}

bool EscrowRouter::remove_partition(std::uint64_t id) {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return false;
  ids_.erase(it);
  return true;
}

std::optional<std::uint64_t> EscrowRouter::route(std::uint64_t escrow_id) const {
  if (ids_.empty()) return std::nullopt;
  std::uint64_t best = ids_.front();
  std::uint64_t best_w = weight(best, escrow_id);
  for (std::size_t i = 1; i < ids_.size(); ++i) {
    const std::uint64_t w = weight(ids_[i], escrow_id);
    // Strict >: ties (vanishingly rare at 64 bits) break toward the
    // lowest partition id, deterministically.
    if (w > best_w) {
      best = ids_[i];
      best_w = w;
    }
  }
  return best;
}

void PartitionedFront::add_partition(std::uint64_t id, Serve serve) {
  router_.add_partition(id);
  const auto it = std::lower_bound(
      serves_.begin(), serves_.end(), id,
      [](const std::pair<std::uint64_t, Serve>& a, std::uint64_t b) { return a.first < b; });
  if (it != serves_.end() && it->first == id) {
    it->second = std::move(serve);
    return;
  }
  serves_.insert(it, {id, std::move(serve)});
}

bool PartitionedFront::remove_partition(std::uint64_t id) {
  const auto it = std::lower_bound(
      serves_.begin(), serves_.end(), id,
      [](const std::pair<std::uint64_t, Serve>& a, std::uint64_t b) { return a.first < b; });
  if (it == serves_.end() || it->first != id) return false;
  serves_.erase(it);
  return router_.remove_partition(id);
}

PartitionedFront::Serve* PartitionedFront::serve_for(std::uint64_t partition_id) {
  const auto it = std::lower_bound(
      serves_.begin(), serves_.end(), partition_id,
      [](const std::pair<std::uint64_t, Serve>& a, std::uint64_t b) { return a.first < b; });
  if (it == serves_.end() || it->first != partition_id) return nullptr;
  return &it->second;
}

Bytes PartitionedFront::serve(ByteSpan frame_bytes, std::uint64_t now_ms) {
  if (serves_.empty()) return {};

  std::optional<std::uint64_t> escrow;
  bool is_receipt = false;
  if (const auto frame = gateway::Frame::deserialize(frame_bytes)) {
    switch (frame->type) {
      case gateway::MsgType::kSubmitFastPay:
        if (const auto req = gateway::SubmitFastPayRequest::deserialize(frame->payload)) {
          escrow = req->package.binding.binding.escrow_id;
          ++stats_.routed_submits;
        }
        break;
      case gateway::MsgType::kQueryEscrow:
        if (const auto req = gateway::QueryEscrowRequest::deserialize(frame->payload)) {
          escrow = req->escrow_id;
          ++stats_.routed_queries;
        }
        break;
      case gateway::MsgType::kGetReceipt:
        is_receipt = true;
        break;
      default:
        break;
    }
  }

  if (is_receipt) {
    // Receipts key on the submit frame's request id, which carries no
    // partition affinity — probe until a partition knows it.
    Bytes last;
    for (auto& [id, serve] : serves_) {
      Bytes resp = serve(frame_bytes, now_ms);
      ++stats_.receipt_probes;
      if (const auto rf = gateway::Frame::deserialize(resp);
          rf && rf->type == gateway::MsgType::kReceiptInfo) {
        if (const auto info = gateway::ReceiptInfoResponse::deserialize(rf->payload);
            info && info->found) {
          return resp;
        }
      }
      last = std::move(resp);
    }
    return last;
  }

  if (escrow) {
    if (const auto owner = router_.route(*escrow)) {
      if (Serve* s = serve_for(*owner)) return (*s)(frame_bytes, now_ms);
    }
  }
  // Malformed frames (and anything unrouted) get the first partition's
  // canonical response, keeping single-partition byte parity.
  ++stats_.fallthroughs;
  return serves_.front().second(frame_bytes, now_ms);
}

}  // namespace btcfast::replication
