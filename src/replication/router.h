// Escrow → partition routing for a horizontally sharded gateway fleet.
// EscrowRouter is rendezvous (highest-random-weight) hashing: every
// (partition, escrow) pair gets a deterministic pseudo-random weight and
// the escrow lives on the partition with the highest one. Adding a
// partition steals only ~1/(P+1) of the keys (each key moves only if the
// new partition wins its rendezvous), and removing one reassigns only
// the keys it owned — no ring maintenance, no virtual nodes.
//
// PartitionedFront is the AcceptRoute-style wire front over it: frames
// whose payload names an escrow are dispatched to the owning partition's
// serve callable; receipt lookups (keyed by request id, not escrow) are
// probed across partitions. With a single partition the front is
// byte-identical to calling that partition's serve directly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.h"

namespace btcfast::replication {

class EscrowRouter {
 public:
  EscrowRouter() = default;
  explicit EscrowRouter(const std::vector<std::uint64_t>& partition_ids);

  /// Idempotent; routing is independent of insertion order.
  void add_partition(std::uint64_t id);
  /// False when the id was never added.
  bool remove_partition(std::uint64_t id);

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] const std::vector<std::uint64_t>& partitions() const noexcept { return ids_; }

  /// The owning partition id; nullopt when the router is empty.
  [[nodiscard]] std::optional<std::uint64_t> route(std::uint64_t escrow_id) const;

 private:
  std::vector<std::uint64_t> ids_;  ///< kept sorted (determinism, not correctness)
};

/// Wire-frame dispatcher over the router. Each partition registers a
/// serve callable (a Gateway::serve binding, a socket client, ...).
class PartitionedFront {
 public:
  using Serve = std::function<Bytes(ByteSpan frame, std::uint64_t now_ms)>;

  void add_partition(std::uint64_t id, Serve serve);
  bool remove_partition(std::uint64_t id);
  [[nodiscard]] std::size_t size() const noexcept { return router_.size(); }
  [[nodiscard]] const EscrowRouter& router() const noexcept { return router_; }

  /// Dispatch one frame. Submit/query frames go to the escrow's owner;
  /// receipt lookups probe every partition and return the first hit
  /// (or the last miss). Malformed frames go to the first partition so
  /// its canonical error response is returned. Empty front: empty bytes.
  [[nodiscard]] Bytes serve(ByteSpan frame_bytes, std::uint64_t now_ms);

  struct FrontStats {
    std::uint64_t routed_submits = 0;
    std::uint64_t routed_queries = 0;
    std::uint64_t receipt_probes = 0;  ///< partition serves done for receipts
    std::uint64_t fallthroughs = 0;    ///< malformed/other frames sent to partition 0
  };
  [[nodiscard]] FrontStats stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] Serve* serve_for(std::uint64_t partition_id);

  EscrowRouter router_;
  std::vector<std::pair<std::uint64_t, Serve>> serves_;  ///< sorted by partition id
  FrontStats stats_;
};

}  // namespace btcfast::replication
