#include "store/crc32c.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#include <nmmintrin.h>
#endif

namespace btcfast::store {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

/// Slicing-by-8 tables, built once at first use.
struct Tables {
  std::uint32_t t[8][256];

  Tables() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xff];
      }
    }
  }
};

const Tables& tables() noexcept {
  static const Tables t;
  return t;
}

std::uint32_t load32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint32_t crc32c_sw(ByteSpan data, std::uint32_t crc) noexcept {
  const auto& t = tables().t;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = crc ^ load32le(p);
    const std::uint32_t hi = load32le(p + 4);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^
          t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  return crc;
}

#if defined(__x86_64__) || defined(_M_X64)

bool detect_sse42() noexcept {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ecx & (1u << 20)) != 0;  // SSE4.2
}

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(ByteSpan data,
                                                          std::uint32_t crc) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    c = _mm_crc32_u64(c, v);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (n-- > 0) c32 = _mm_crc32_u8(c32, *p++);
  return c32;
}

const bool kHaveSse42 = detect_sse42();

#endif  // x86_64

}  // namespace

bool crc32c_hw_enabled() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return kHaveSse42;
#else
  return false;
#endif
}

std::uint32_t crc32c(ByteSpan data, std::uint32_t seed) noexcept {
  const std::uint32_t crc = ~seed;
#if defined(__x86_64__) || defined(_M_X64)
  if (kHaveSse42) return ~crc32c_hw(data, crc);
#endif
  return ~crc32c_sw(data, crc);
}

}  // namespace btcfast::store
