// CRC32C (Castagnoli, reflected polynomial 0x82F63B78): the checksum
// guarding every WAL record and snapshot body. Chosen over plain CRC32
// for its better burst-error detection and because x86 carries it in
// hardware (SSE4.2 CRC32 instruction) — the software path is
// slicing-by-8, the hardware path is picked once at startup.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace btcfast::store {

/// One-shot / incremental CRC32C. Pass the previous return value as
/// `seed` to continue a running checksum; start from 0.
[[nodiscard]] std::uint32_t crc32c(ByteSpan data, std::uint32_t seed = 0) noexcept;

/// True when the process is using the SSE4.2 hardware instruction.
[[nodiscard]] bool crc32c_hw_enabled() noexcept;

}  // namespace btcfast::store
