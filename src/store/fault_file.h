// Crash-consistency test shim: an in-memory AppendFile that can cut a
// write at an arbitrary byte offset or drop fsyncs, modelling the two
// crash artifacts a real disk produces — a torn final write, and data
// that was written but never made stable. `durable()` is what a reader
// would see after the machine died: everything up to the last successful
// sync, plus whatever the OS happened to have written since (the
// pessimistic view keeps only the synced prefix; tests choose).
#pragma once

#include <algorithm>
#include <cstdint>

#include "store/wal.h"

namespace btcfast::store {

class FaultFile final : public AppendFile {
 public:
  FaultFile() = default;

  /// Fail (and truncate) the write that would push the file past
  /// `limit` bytes total; the prefix up to `limit` is kept, modelling a
  /// torn write. SIZE_MAX disables the fault.
  void cut_writes_at(std::uint64_t limit) noexcept { write_limit_ = limit; }

  /// All sync() calls from now on report success but do nothing — the
  /// "power failed before the final fsync" case.
  void drop_syncs(bool drop) noexcept { drop_syncs_ = drop; }

  bool append(ByteSpan chunk) override {
    if (data_.size() + chunk.size() <= write_limit_) {
      append_bytes(data_, chunk);
      return true;
    }
    const std::uint64_t room = write_limit_ > data_.size() ? write_limit_ - data_.size() : 0;
    append_bytes(data_, {chunk.data(), static_cast<std::size_t>(
                                           std::min<std::uint64_t>(room, chunk.size()))});
    return false;  // torn write
  }

  bool sync() override {
    if (!drop_syncs_) synced_bytes_ = data_.size();
    return true;
  }

  [[nodiscard]] std::uint64_t size() const override { return data_.size(); }

  /// Everything ever written (what survives if the OS flushed it all).
  [[nodiscard]] const Bytes& written() const noexcept { return data_; }

  /// The pessimistic post-crash image: only the prefix covered by a
  /// completed fsync.
  [[nodiscard]] Bytes durable() const {
    return Bytes(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(synced_bytes_));
  }

  [[nodiscard]] std::uint64_t synced_bytes() const noexcept { return synced_bytes_; }

 private:
  static void append_bytes(Bytes& out, ByteSpan chunk) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }

  Bytes data_;
  std::uint64_t synced_bytes_ = 0;
  std::uint64_t write_limit_ = UINT64_MAX;
  bool drop_syncs_ = false;
};

}  // namespace btcfast::store
