#include "store/records.h"

#include "common/serialize.h"

namespace btcfast::store {
namespace {

constexpr std::size_t kMaxBlob = 1u << 20;  ///< cap on opaque package/invoice blobs

}  // namespace

Bytes StoreRecord::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case RecordKind::kReserve:
      w.u64le(reservation_id);
      w.u64le(escrow_id);
      w.u64le(amount);
      w.u64le(expires_at_ms);
      w.bytes({txid.data(), txid.size()});
      break;
    case RecordKind::kRelease:
      w.u64le(reservation_id);
      w.u8(static_cast<std::uint8_t>(cause));
      break;
    case RecordKind::kAcceptCommit:
      w.u64le(reservation_id);
      w.u64le(accepted_at_ms);
      w.bytes_with_len(package);
      w.bytes_with_len(invoice);
      break;
    case RecordKind::kDisputeOpen:
      w.u64le(escrow_id);
      w.u64le(amount);
      w.u64le(expires_at_ms);
      w.bytes({txid.data(), txid.size()});
      break;
    case RecordKind::kDisputeResolve:
      w.u64le(escrow_id);
      w.bytes({txid.data(), txid.size()});
      break;
    case RecordKind::kEpochChange:
      w.u64le(epoch);
      break;
    case RecordKind::kHeaderAccept:
      w.bytes({header.data(), header.size()});
      break;
  }
  return std::move(w).take();
}

std::optional<StoreRecord> StoreRecord::deserialize(ByteSpan data) {
  Reader r(data);
  const auto kind_raw = r.u8();
  if (!kind_raw) return std::nullopt;
  StoreRecord rec;
  auto read_txid = [&]() -> bool {
    const auto b = r.bytes(32);
    if (!b) return false;
    std::copy(b->begin(), b->end(), rec.txid.begin());
    return true;
  };
  switch (*kind_raw) {
    case static_cast<std::uint8_t>(RecordKind::kReserve): {
      rec.kind = RecordKind::kReserve;
      const auto rid = r.u64le();
      const auto eid = r.u64le();
      const auto amount = r.u64le();
      const auto expires = r.u64le();
      if (!rid || !eid || !amount || !expires || !read_txid()) return std::nullopt;
      rec.reservation_id = *rid;
      rec.escrow_id = *eid;
      rec.amount = *amount;
      rec.expires_at_ms = *expires;
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kRelease): {
      rec.kind = RecordKind::kRelease;
      const auto rid = r.u64le();
      const auto cause = r.u8();
      if (!rid || !cause || *cause > static_cast<std::uint8_t>(ReleaseCause::kRejected)) {
        return std::nullopt;
      }
      rec.reservation_id = *rid;
      rec.cause = static_cast<ReleaseCause>(*cause);
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kAcceptCommit): {
      rec.kind = RecordKind::kAcceptCommit;
      const auto rid = r.u64le();
      const auto at = r.u64le();
      auto package = r.bytes_with_len(kMaxBlob);
      auto invoice = r.bytes_with_len(kMaxBlob);
      if (!rid || !at || !package || !invoice) return std::nullopt;
      rec.reservation_id = *rid;
      rec.accepted_at_ms = *at;
      rec.package = std::move(*package);
      rec.invoice = std::move(*invoice);
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kDisputeOpen): {
      rec.kind = RecordKind::kDisputeOpen;
      const auto eid = r.u64le();
      const auto amount = r.u64le();
      const auto deadline = r.u64le();
      if (!eid || !amount || !deadline || !read_txid()) return std::nullopt;
      rec.escrow_id = *eid;
      rec.amount = *amount;
      rec.expires_at_ms = *deadline;
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kDisputeResolve): {
      rec.kind = RecordKind::kDisputeResolve;
      const auto eid = r.u64le();
      if (!eid || !read_txid()) return std::nullopt;
      rec.escrow_id = *eid;
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kEpochChange): {
      rec.kind = RecordKind::kEpochChange;
      const auto epoch = r.u64le();
      if (!epoch) return std::nullopt;
      rec.epoch = *epoch;
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kHeaderAccept): {
      rec.kind = RecordKind::kHeaderAccept;
      const auto b = r.bytes(80);
      if (!b) return std::nullopt;
      std::copy(b->begin(), b->end(), rec.header.begin());
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.at_end()) return std::nullopt;
  return rec;
}

}  // namespace btcfast::store
