// WAL record schemas: one record per mutating gateway/watchtower event.
// The store layer is deliberately protocol-blind — payloads carry raw
// ids, values, 32-byte txids and opaque serialized blobs, never core
// protocol structs, so btcfast_store depends only on btcfast_common and
// both the gateway and the core (watchtower/orchestrator) can link it.
// Protocol-aware layers encode/decode the opaque fields.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace btcfast::store {

using EscrowId = std::uint64_t;
using ReservationId = std::uint64_t;

/// The mutating events the durable store logs.
enum class RecordKind : std::uint8_t {
  kReserve = 1,        ///< gateway granted a collateral reservation
  kRelease = 2,        ///< reservation released (settled/judged/expired/rejected)
  kAcceptCommit = 3,   ///< accepted binding drained from the commit queue
  kDisputeOpen = 4,    ///< watchtower observed an escrow enter DISPUTED
  kDisputeResolve = 5, ///< watchtower observed the dispute leave DISPUTED
  kEpochChange = 6,    ///< replication: a newly promoted primary took over
  kHeaderAccept = 7,   ///< watchtower header sync connected a BTC header
};

/// Why a reservation was released (kRelease only).
enum class ReleaseCause : std::uint8_t {
  kResolved = 0,  ///< payment settled on BTC or judged on PSC
  kExpired = 1,   ///< binding expiry passed; no longer disputable
  kRejected = 2,  ///< reserve was rolled back before the accept completed
};

/// One logged event. Only the fields relevant to `kind` are serialized;
/// the rest stay at their defaults so operator== works across a
/// round-trip.
struct StoreRecord {
  RecordKind kind = RecordKind::kReserve;

  // kReserve / kRelease / kAcceptCommit
  ReservationId reservation_id = 0;
  EscrowId escrow_id = 0;
  std::uint64_t amount = 0;         ///< compensation locked against the escrow
  std::uint64_t expires_at_ms = 0;  ///< binding expiry (kReserve) / dispute deadline
  ByteArray<32> txid{};             ///< bound BTC payment txid
  ReleaseCause cause = ReleaseCause::kResolved;

  // kAcceptCommit: opaque core::FastPayPackage / invoice encodings.
  Bytes package;
  Bytes invoice;
  std::uint64_t accepted_at_ms = 0;

  // kEpochChange: the epoch the promoted primary now writes under.
  std::uint64_t epoch = 0;

  // kHeaderAccept: the raw 80-byte BTC block header that connected.
  ByteArray<80> header{};

  [[nodiscard]] Bytes serialize() const;
  /// Total decoder: nullopt on any truncation, trailing garbage, unknown
  /// kind or out-of-range enum value.
  [[nodiscard]] static std::optional<StoreRecord> deserialize(ByteSpan data);

  [[nodiscard]] bool operator==(const StoreRecord& o) const = default;
};

}  // namespace btcfast::store
