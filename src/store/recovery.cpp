#include "store/recovery.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace btcfast::store {
namespace fs = std::filesystem;

namespace {

/// Parse "<prefix><seq:016x><suffix>" filenames; nullopt for strangers.
std::optional<std::uint64_t> parse_seq(const std::string& name, const std::string& prefix,
                                       const std::string& suffix) {
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(prefix.size() + 16, suffix.size(), suffix) != 0) return std::nullopt;
  std::uint64_t seq = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
    const char c = name[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    seq = (seq << 4) | digit;
  }
  return seq;
}

std::string format_name(const std::string& prefix, std::uint64_t seq, const std::string& suffix) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, seq);
  return prefix + buf + suffix;
}

}  // namespace

DurableStore::DurableStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

std::string DurableStore::segment_path(std::uint64_t first_seq) const {
  return (fs::path(dir_) / format_name("wal-", first_seq, ".wal")).string();
}

std::string DurableStore::snapshot_path(std::uint64_t seq) const {
  return (fs::path(dir_) / format_name("snap-", seq, ".snap")).string();
}

std::unique_ptr<DurableStore> DurableStore::open(const std::string& dir, StoreOptions options,
                                                 RecoveryInfo* info) {
  auto fail = [&](std::string why) -> std::unique_ptr<DurableStore> {
    if (info != nullptr) {
      info->error = std::move(why);
    }
    return nullptr;
  };

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return fail("cannot create store dir: " + ec.message());

  std::unique_ptr<DurableStore> store(new DurableStore(dir, options));

  // Inventory the directory.
  std::vector<std::uint64_t> snapshot_seqs;
  std::vector<std::uint64_t> segment_seqs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto s = parse_seq(name, "snap-", ".snap")) snapshot_seqs.push_back(*s);
    if (const auto s = parse_seq(name, "wal-", ".wal")) segment_seqs.push_back(*s);
  }
  if (ec) return fail("cannot list store dir: " + ec.message());
  std::sort(snapshot_seqs.begin(), snapshot_seqs.end());
  std::sort(segment_seqs.begin(), segment_seqs.end());

  // Newest decodable snapshot wins; bit-rotted ones fall back to older.
  RecoveryInfo rec;
  for (auto it = snapshot_seqs.rbegin(); it != snapshot_seqs.rend(); ++it) {
    if (auto img = read_snapshot(store->snapshot_path(*it))) {
      store->image_ = std::move(*img);
      rec.snapshot_seq = store->image_.last_seq;
      store->snapshot_bytes_ =
          static_cast<std::uint64_t>(fs::file_size(store->snapshot_path(*it), ec));
      break;
    }
    ++rec.snapshots_skipped;
  }

  // Replay every record past the snapshot, across segments, in order.
  std::uint64_t next_seq = rec.snapshot_seq + 1;
  for (std::size_t i = 0; i < segment_seqs.size(); ++i) {
    const std::uint64_t start = segment_seqs[i];
    const bool final_segment = i + 1 == segment_seqs.size();
    if (start > next_seq) {
      return fail("missing wal segment: next record is " + std::to_string(next_seq) +
                  " but segment starts at " + std::to_string(start));
    }
    const WalScan scan = scan_wal_file(store->segment_path(start), start);
    ++rec.segments_scanned;
    if (!scan.ok()) return fail("segment " + std::to_string(start) + ": " + scan.error);
    if (scan.truncated_tail && !final_segment) {
      // A torn tail is only a crash artifact on the last segment ever
      // written; earlier segments were sealed by a later one's creation.
      return fail("segment " + std::to_string(start) + ": torn tail in non-final segment");
    }
    if (scan.truncated_tail) {
      // Truncate at the first bad checksum so the torn bytes are gone
      // for good — otherwise this segment would scan as corrupt once a
      // newer segment makes it non-final.
      fs::resize_file(store->segment_path(start), scan.valid_bytes, ec);
      if (ec) return fail("cannot truncate torn segment: " + ec.message());
    }
    rec.truncated_tail = rec.truncated_tail || scan.truncated_tail;
    for (const auto& record : scan.records) {
      if (record.seq < next_seq) continue;  // covered by the snapshot
      if (record.seq != next_seq) {
        return fail("sequence gap: got " + std::to_string(record.seq) + ", want " +
                    std::to_string(next_seq));
      }
      const auto decoded = StoreRecord::deserialize(record.payload);
      if (!decoded) {
        return fail("undecodable record at seq " + std::to_string(record.seq));
      }
      if (!apply_record(store->image_, *decoded, record.seq)) {
        return fail("invalid transition at seq " + std::to_string(record.seq));
      }
      ++rec.replayed_records;
      ++next_seq;
    }
  }

  // Fresh active segment: recovery never appends into a possibly-torn
  // file, it seals the past and starts clean at the next sequence.
  store->active_segment_start_ = next_seq;
  auto file = open_append_file(store->segment_path(next_seq));
  if (file == nullptr) return fail("cannot open active wal segment");
  WalOptions wopts;
  wopts.policy = options.policy;
  wopts.batch_records = options.batch_records;
  // The active segment may already exist (crash right after rotation,
  // before any append): only write the header into a zero-length file.
  const bool fresh = file->size() == 0;
  store->wal_ = std::make_unique<Wal>(std::move(file), wopts, next_seq, fresh);

  store->recovery_ = rec;
  if (info != nullptr) *info = rec;
  return store;
}

std::optional<std::uint64_t> DurableStore::append(const StoreRecord& record) {
  std::lock_guard lock(mu_);
  const std::uint64_t seq = wal_->next_seq();
  if (!apply_record(image_, record, seq)) return std::nullopt;
  const std::uint64_t assigned = wal_->append(record.serialize());
  ++records_since_snapshot_;
  if (options_.snapshot_every > 0 && records_since_snapshot_ >= options_.snapshot_every) {
    (void)take_snapshot_locked();
  }
  return assigned;
}

bool DurableStore::commit() {
  std::lock_guard lock(mu_);
  return wal_->commit();
}

bool DurableStore::sync() {
  std::lock_guard lock(mu_);
  return wal_->sync();
}

bool DurableStore::take_snapshot() {
  std::lock_guard lock(mu_);
  return take_snapshot_locked();
}

bool DurableStore::take_snapshot_locked() {
  // Everything the snapshot covers must be on disk first — otherwise a
  // crash between the rename and the (never-happening) WAL flush would
  // prune records the snapshot claims to contain but doesn't.
  if (!wal_->sync()) return false;

  const std::uint64_t seq = image_.last_seq;
  if (!write_snapshot(snapshot_path(seq), image_)) return false;
  snapshot_bytes_ = static_cast<std::uint64_t>(encode_snapshot(image_).size());
  ++snapshots_taken_;
  records_since_snapshot_ = 0;

  // Rotate: new active segment starting at the next sequence number.
  const std::uint64_t next = wal_->next_seq();
  retired_appends_ += wal_->appends();
  retired_syncs_ += wal_->syncs();
  retired_bytes_ += wal_->bytes_written();
  wal_.reset();
  auto file = open_append_file(segment_path(next));
  if (file == nullptr) return false;
  WalOptions wopts;
  wopts.policy = options_.policy;
  wopts.batch_records = options_.batch_records;
  // When nothing was appended since the last rotation the "new" segment
  // is the already-headered current one — don't double-header it.
  const bool fresh = file->size() == 0;
  wal_ = std::make_unique<Wal>(std::move(file), wopts, next, fresh);
  wal_->set_commit_tap(tap_);

  // Prune: every segment except the new active one is fully covered by
  // the snapshot (all its records have seq <= image_.last_seq), as are
  // all older snapshots.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto s = parse_seq(name, "wal-", ".wal"); s && *s != next) {
      fs::remove(entry.path(), ec);
    }
    if (const auto s = parse_seq(name, "snap-", ".snap"); s && *s < seq) {
      fs::remove(entry.path(), ec);
    }
  }
  active_segment_start_ = next;
  return true;
}

StateImage DurableStore::image_copy() const {
  std::lock_guard lock(mu_);
  return image_;
}

void DurableStore::set_commit_tap(CommitTap tap) {
  std::lock_guard lock(mu_);
  tap_ = std::move(tap);
  wal_->set_commit_tap(tap_);
}

std::uint64_t DurableStore::next_seq() const {
  std::lock_guard lock(mu_);
  return wal_->next_seq();
}

std::uint64_t DurableStore::last_committed_seq() const {
  std::lock_guard lock(mu_);
  return wal_->committed_seq();
}

RangeScan DurableStore::read_range(std::uint64_t from_seq, std::size_t max_records,
                                   const ReadCursor* hint) {
  std::lock_guard lock(mu_);
  RangeScan out;
  if (from_seq == 0) {
    out.error = "read_range: from_seq must be >= 1";
    return out;
  }
  const std::uint64_t committed = wal_->committed_seq();
  if (from_seq > committed) return out;  // caller is already caught up
  // Committed bytes can still sit in stdio's user-space buffer; push
  // them to the OS (no fsync) so the file read below observes them.
  if (!wal_->flush_os()) {
    out.error = "read_range: flush to OS failed";
    return out;
  }

  std::error_code ec;
  std::vector<std::uint64_t> segment_seqs;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (const auto s = parse_seq(entry.path().filename().string(), "wal-", ".wal")) {
      segment_seqs.push_back(*s);
    }
  }
  if (ec) {
    out.error = "read_range: cannot list store dir: " + ec.message();
    return out;
  }
  std::sort(segment_seqs.begin(), segment_seqs.end());
  // The segment owning from_seq is the last one starting at or before it.
  std::size_t first = segment_seqs.size();
  for (std::size_t i = 0; i < segment_seqs.size(); ++i) {
    if (segment_seqs[i] <= from_seq) first = i;
  }
  if (first == segment_seqs.size()) {
    out.pruned = true;  // compaction already dropped that range
    return out;
  }
  for (std::size_t i = first; i < segment_seqs.size() && out.records.size() < max_records; ++i) {
    const std::uint64_t seg = segment_seqs[i];
    const std::string path = segment_path(seg);
    // Hinted entry: resume the byte offset a prior read of this segment
    // ended at, as long as the hint doesn't point past what we need. A
    // hint that turns out to be wrong (a scan error right where it
    // pointed) is discarded and the segment re-scanned from its front —
    // the cursor is an accelerator, not a source of truth.
    std::uint64_t offset = 0;
    std::uint64_t expect = seg;
    bool hinted = hint != nullptr && hint->next_seq != 0 && hint->segment == seg &&
                  hint->next_seq <= from_seq && hint->offset >= kWalHeaderSize;
    if (hinted) {
      offset = hint->offset;
      expect = hint->next_seq;
    }
    bool segment_done = false;
    while (!segment_done && out.records.size() < max_records) {
      // Window budget: what we still owe the caller, plus whatever must
      // be parsed and skipped to reach from_seq.
      const std::size_t budget =
          (max_records - out.records.size()) +
          (expect < from_seq ? static_cast<std::size_t>(std::min<std::uint64_t>(
                                   from_seq - expect, std::size_t{4096})) : 0);
      WalWindowScan win = scan_wal_file_window(path, offset, expect, budget);
      const bool first_hinted_window = hinted && offset == hint->offset;
      if (!win.ok() || (first_hinted_window && win.records.empty())) {
        if (first_hinted_window) {
          // Stale hint — a scan error right at the remembered offset, or
          // garbage bytes there that read as a torn tail. Fall back to
          // the unhinted scan of this segment.
          hinted = false;
          offset = 0;
          expect = seg;
          continue;
        }
        out.error = "read_range: segment " + std::to_string(seg) + ": " + win.error;
        return out;
      }
      if (win.records.empty()) break;  // at_eof with nothing parsed
      std::uint64_t cursor = offset == 0 ? kWalHeaderSize : offset;
      for (auto& rec : win.records) {
        const std::uint64_t rec_end = cursor + kWalRecordHeaderSize + rec.payload.size();
        if (rec.seq > committed) {
          segment_done = true;  // live tail past the committed bound
          break;
        }
        if (rec.seq >= from_seq) {
          if (!out.records.empty() && rec.seq != out.records.back().seq + 1) {
            out.error = "read_range: gap across segments at seq " + std::to_string(rec.seq);
            return out;
          }
          const std::uint64_t seq = rec.seq;
          out.records.push_back(std::move(rec));
          out.resume = ReadCursor{seg, rec_end, seq + 1};
          if (out.records.size() >= max_records) {
            cursor = rec_end;
            break;
          }
        }
        cursor = rec_end;
        expect = rec.seq + 1;
      }
      offset = cursor;
      if (win.at_eof) segment_done = true;
    }
  }
  if (!out.records.empty() && out.records.front().seq != from_seq) {
    out.pruned = true;  // range starts later than asked: prefix was pruned
    out.records.clear();
    out.resume = ReadCursor{};
  }
  return out;
}

std::uint64_t DurableStore::wal_appends() const {
  std::lock_guard lock(mu_);
  return retired_appends_ + wal_->appends();
}

std::uint64_t DurableStore::wal_syncs() const {
  std::lock_guard lock(mu_);
  return retired_syncs_ + wal_->syncs();
}

std::uint64_t DurableStore::wal_bytes() const {
  std::lock_guard lock(mu_);
  return retired_bytes_ + wal_->bytes_written();
}

std::uint64_t DurableStore::snapshot_bytes() const {
  std::lock_guard lock(mu_);
  return snapshot_bytes_;
}

std::uint64_t DurableStore::snapshots_taken() const {
  std::lock_guard lock(mu_);
  return snapshots_taken_;
}

}  // namespace btcfast::store
