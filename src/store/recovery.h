// DurableStore: the directory-level store tying WAL and snapshots
// together. Layout inside the store directory:
//
//   snap-<seq:016x>.snap   state through WAL sequence <seq>
//   wal-<seq:016x>.wal     segment whose first record is <seq>
//
// open() loads the newest decodable snapshot, replays every WAL segment
// record with seq > snapshot.last_seq (contiguity enforced), and starts
// a fresh active segment at the next sequence number. take_snapshot()
// persists the live image atomically, rotates the WAL, and prunes the
// segments and older snapshots the new snapshot makes obsolete.
//
// All public methods are mutex-serialized: the gateway's serve() workers
// append concurrently while the control thread commits/snapshots.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "store/snapshot.h"
#include "store/wal.h"

namespace btcfast::store {

struct StoreOptions {
  FsyncPolicy policy = FsyncPolicy::kBatch;
  std::size_t batch_records = 32;
  /// Auto-compaction: take a snapshot after this many records applied
  /// since the last one. 0 = snapshots only on explicit take_snapshot().
  std::size_t snapshot_every = 0;
};

/// What open() found on disk.
struct RecoveryInfo {
  std::uint64_t snapshot_seq = 0;       ///< 0 = recovered from scratch
  std::uint64_t replayed_records = 0;   ///< WAL records applied after the snapshot
  std::uint64_t segments_scanned = 0;
  std::uint64_t snapshots_skipped = 0;  ///< newer snapshots that failed to decode
  bool truncated_tail = false;          ///< final segment ended in a torn write
  std::string error;                    ///< nonempty: recovery failed closed
};

class DurableStore {
 public:
  /// Open or create the store at `dir`. Returns nullptr (with
  /// info->error set when `info` is non-null) on mid-log corruption or
  /// IO failure — never a silently partial recovery.
  [[nodiscard]] static std::unique_ptr<DurableStore> open(const std::string& dir,
                                                          StoreOptions options,
                                                          RecoveryInfo* info = nullptr);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Append one event: serialize, frame into the WAL buffer, apply to
  /// the live image. Returns the assigned sequence number, or nullopt if
  /// the record is an invalid transition (see apply_record) — in which
  /// case nothing was logged.
  [[nodiscard]] std::optional<std::uint64_t> append(const StoreRecord& record);

  /// Group-commit the buffered appends (fsync per policy).
  bool commit();

  /// commit() + unconditional fsync.
  bool sync();

  /// Compact: write the live image as a new snapshot, rotate the WAL,
  /// prune obsolete segments and older snapshots.
  bool take_snapshot();

  /// Thread-safe copy of the live image.
  [[nodiscard]] StateImage image_copy() const;

  [[nodiscard]] const RecoveryInfo& recovery() const noexcept { return recovery_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  // Metrics for the gateway stats dump.
  [[nodiscard]] std::uint64_t wal_appends() const;
  [[nodiscard]] std::uint64_t wal_syncs() const;
  [[nodiscard]] std::uint64_t wal_bytes() const;
  [[nodiscard]] std::uint64_t snapshot_bytes() const;  ///< size of the newest snapshot
  [[nodiscard]] std::uint64_t snapshots_taken() const;

 private:
  DurableStore(std::string dir, StoreOptions options);

  bool take_snapshot_locked();
  [[nodiscard]] std::string segment_path(std::uint64_t first_seq) const;
  [[nodiscard]] std::string snapshot_path(std::uint64_t seq) const;

  std::string dir_;
  StoreOptions options_;
  RecoveryInfo recovery_;

  mutable std::mutex mu_;
  StateImage image_;
  std::unique_ptr<Wal> wal_;
  std::uint64_t active_segment_start_ = 1;
  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t snapshot_bytes_ = 0;
  std::uint64_t snapshots_taken_ = 0;
  // Carried across WAL rotations so metrics survive take_snapshot().
  std::uint64_t retired_appends_ = 0;
  std::uint64_t retired_syncs_ = 0;
  std::uint64_t retired_bytes_ = 0;
};

}  // namespace btcfast::store
