// DurableStore: the directory-level store tying WAL and snapshots
// together. Layout inside the store directory:
//
//   snap-<seq:016x>.snap   state through WAL sequence <seq>
//   wal-<seq:016x>.wal     segment whose first record is <seq>
//
// open() loads the newest decodable snapshot, replays every WAL segment
// record with seq > snapshot.last_seq (contiguity enforced), and starts
// a fresh active segment at the next sequence number. take_snapshot()
// persists the live image atomically, rotates the WAL, and prunes the
// segments and older snapshots the new snapshot makes obsolete.
//
// All public methods are mutex-serialized: the gateway's serve() workers
// append concurrently while the control thread commits/snapshots.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "store/snapshot.h"
#include "store/wal.h"

namespace btcfast::store {

struct StoreOptions {
  FsyncPolicy policy = FsyncPolicy::kBatch;
  std::size_t batch_records = 32;
  /// Auto-compaction: take a snapshot after this many records applied
  /// since the last one. 0 = snapshots only on explicit take_snapshot().
  std::size_t snapshot_every = 0;
};

/// Durability gate consulted after a local WAL commit and before the
/// corresponding response leaves the node: quorum_commit(seq) returns
/// once `seq` is durably appended on a quorum of replicas. A deployment
/// with no replication simply has no gate (or quorum 0) and keeps
/// today's single-node behavior. Implemented by replication::ReplicationGroup;
/// declared here so the gateway can hold one without a layering cycle.
class CommitGate {
 public:
  virtual ~CommitGate() = default;
  [[nodiscard]] virtual bool quorum_commit(std::uint64_t seq, std::uint64_t now_ms) = 0;
};

/// Resumable position for forward streaming through read_range: names
/// the byte offset of the next unread record so a follow-up read can
/// skip re-parsing the segment prefix. Purely an optimization hint —
/// a stale or wrong cursor degrades to the unhinted full-segment scan,
/// never to wrong bytes (the windowed scan re-validates CRCs and
/// sequence continuity exactly like the recovery path).
struct ReadCursor {
  std::uint64_t segment = 0;   ///< start sequence of the segment `offset` is in
  std::uint64_t offset = 0;    ///< byte offset of the record with seq `next_seq`
  std::uint64_t next_seq = 0;  ///< sequence expected at `offset`; 0 = no hint
};

/// One WAL range read (the ship/catch-up seam).
struct RangeScan {
  std::vector<WalRecord> records;
  bool pruned = false;  ///< from_seq predates the oldest retained record
  std::string error;    ///< nonempty: segment corruption, fail closed
  ReadCursor resume;    ///< pass back as `hint` to continue where this read ended

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// What open() found on disk.
struct RecoveryInfo {
  std::uint64_t snapshot_seq = 0;       ///< 0 = recovered from scratch
  std::uint64_t replayed_records = 0;   ///< WAL records applied after the snapshot
  std::uint64_t segments_scanned = 0;
  std::uint64_t snapshots_skipped = 0;  ///< newer snapshots that failed to decode
  bool truncated_tail = false;          ///< final segment ended in a torn write
  std::string error;                    ///< nonempty: recovery failed closed
};

class DurableStore {
 public:
  /// Open or create the store at `dir`. Returns nullptr (with
  /// info->error set when `info` is non-null) on mid-log corruption or
  /// IO failure — never a silently partial recovery.
  [[nodiscard]] static std::unique_ptr<DurableStore> open(const std::string& dir,
                                                          StoreOptions options,
                                                          RecoveryInfo* info = nullptr);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Append one event: serialize, frame into the WAL buffer, apply to
  /// the live image. Returns the assigned sequence number, or nullopt if
  /// the record is an invalid transition (see apply_record) — in which
  /// case nothing was logged.
  [[nodiscard]] std::optional<std::uint64_t> append(const StoreRecord& record);

  /// Group-commit the buffered appends (fsync per policy).
  bool commit();

  /// commit() + unconditional fsync.
  bool sync();

  /// Compact: write the live image as a new snapshot, rotate the WAL,
  /// prune obsolete segments and older snapshots.
  bool take_snapshot();

  /// Thread-safe copy of the live image.
  [[nodiscard]] StateImage image_copy() const;

  /// Install/clear the commit observer on the underlying WAL. Survives
  /// snapshot rotation. The tap runs under the store mutex: it must only
  /// buffer bytes, never call back into this store.
  void set_commit_tap(CommitTap tap);

  /// Read committed records starting exactly at `from_seq` (bounded by
  /// `max_records`), from the on-disk segments. Sets `pruned` when
  /// compaction already dropped that range — the caller must fall back
  /// to a snapshot install. A forward-streaming caller passes the prior
  /// read's `resume` cursor back as `hint` to start the segment parse at
  /// the remembered byte offset instead of the segment front; a stale or
  /// mismatched hint is ignored (full re-scan), never trusted blindly.
  [[nodiscard]] RangeScan read_range(std::uint64_t from_seq, std::size_t max_records,
                                     const ReadCursor* hint = nullptr);

  /// Next sequence number the WAL will assign.
  [[nodiscard]] std::uint64_t next_seq() const;
  /// Highest sequence number committed to the file; 0 when none.
  [[nodiscard]] std::uint64_t last_committed_seq() const;

  [[nodiscard]] const RecoveryInfo& recovery() const noexcept { return recovery_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  // Metrics for the gateway stats dump.
  [[nodiscard]] std::uint64_t wal_appends() const;
  [[nodiscard]] std::uint64_t wal_syncs() const;
  [[nodiscard]] std::uint64_t wal_bytes() const;
  [[nodiscard]] std::uint64_t snapshot_bytes() const;  ///< size of the newest snapshot
  [[nodiscard]] std::uint64_t snapshots_taken() const;

 private:
  DurableStore(std::string dir, StoreOptions options);

  bool take_snapshot_locked();
  [[nodiscard]] std::string segment_path(std::uint64_t first_seq) const;
  [[nodiscard]] std::string snapshot_path(std::uint64_t seq) const;

  std::string dir_;
  StoreOptions options_;
  RecoveryInfo recovery_;

  mutable std::mutex mu_;
  StateImage image_;
  std::unique_ptr<Wal> wal_;
  CommitTap tap_;  ///< kept so rotation re-installs it on the new Wal
  std::uint64_t active_segment_start_ = 1;
  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t snapshot_bytes_ = 0;
  std::uint64_t snapshots_taken_ = 0;
  // Carried across WAL rotations so metrics survive take_snapshot().
  std::uint64_t retired_appends_ = 0;
  std::uint64_t retired_syncs_ = 0;
  std::uint64_t retired_bytes_ = 0;
};

}  // namespace btcfast::store
