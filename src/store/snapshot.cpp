#include "store/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/serialize.h"
#include "store/crc32c.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace btcfast::store {
namespace {

constexpr std::size_t kMaxEntries = 1u << 22;
constexpr std::size_t kMaxBlob = 1u << 20;

void write_txid(Writer& w, const ByteArray<32>& txid) { w.bytes({txid.data(), txid.size()}); }

bool read_txid(Reader& r, ByteArray<32>& out) {
  const auto b = r.bytes(32);
  if (!b) return false;
  std::copy(b->begin(), b->end(), out.begin());
  return true;
}

}  // namespace

Bytes StateImage::serialize() const {
  // Canonical order: sorted copies, so logically equal images are
  // byte-identical regardless of insertion history.
  auto res = reservations;
  std::sort(res.begin(), res.end(),
            [](const ReservationImage& a, const ReservationImage& b) { return a.id < b.id; });
  auto acc = accepted;
  std::sort(acc.begin(), acc.end(), [](const AcceptedImage& a, const AcceptedImage& b) {
    return a.reservation_id < b.reservation_id;
  });
  auto dis = open_disputes;
  std::sort(dis.begin(), dis.end(), [](const DisputeImage& a, const DisputeImage& b) {
    if (a.escrow_id != b.escrow_id) return a.escrow_id < b.escrow_id;
    return std::lexicographical_compare(a.txid.begin(), a.txid.end(), b.txid.begin(),
                                        b.txid.end());
  });

  Writer w;
  w.u64le(last_seq);
  w.u64le(released_count);
  w.u64le(resolved_disputes);
  w.varint(res.size());
  for (const auto& r : res) {
    w.u64le(r.id);
    w.u64le(r.escrow_id);
    w.u64le(r.amount);
    w.u64le(r.expires_at_ms);
    write_txid(w, r.txid);
  }
  w.varint(acc.size());
  for (const auto& a : acc) {
    w.u64le(a.reservation_id);
    w.u64le(a.accepted_at_ms);
    w.bytes_with_len(a.package);
    w.bytes_with_len(a.invoice);
  }
  w.varint(dis.size());
  for (const auto& d : dis) {
    w.u64le(d.escrow_id);
    write_txid(w, d.txid);
    w.u64le(d.amount);
    w.u64le(d.deadline_ms);
  }
  w.u64le(epoch);
  // Headers stay in connection order — not sorted — because replay
  // re-accepts them sequentially and children must follow parents.
  w.varint(headers.size());
  for (const auto& h : headers) w.bytes({h.data(), h.size()});
  return std::move(w).take();
}

std::optional<StateImage> StateImage::deserialize(ByteSpan data) {
  Reader r(data);
  StateImage img;
  const auto last_seq = r.u64le();
  const auto released = r.u64le();
  const auto resolved = r.u64le();
  if (!last_seq || !released || !resolved) return std::nullopt;
  img.last_seq = *last_seq;
  img.released_count = *released;
  img.resolved_disputes = *resolved;

  const auto n_res = r.varint();
  if (!n_res || *n_res > kMaxEntries) return std::nullopt;
  img.reservations.reserve(static_cast<std::size_t>(*n_res));
  for (std::uint64_t i = 0; i < *n_res; ++i) {
    ReservationImage res;
    const auto id = r.u64le();
    const auto eid = r.u64le();
    const auto amount = r.u64le();
    const auto expires = r.u64le();
    if (!id || !eid || !amount || !expires || !read_txid(r, res.txid)) return std::nullopt;
    res.id = *id;
    res.escrow_id = *eid;
    res.amount = *amount;
    res.expires_at_ms = *expires;
    img.reservations.push_back(std::move(res));
  }

  const auto n_acc = r.varint();
  if (!n_acc || *n_acc > kMaxEntries) return std::nullopt;
  img.accepted.reserve(static_cast<std::size_t>(*n_acc));
  for (std::uint64_t i = 0; i < *n_acc; ++i) {
    AcceptedImage acc;
    const auto rid = r.u64le();
    const auto at = r.u64le();
    auto package = r.bytes_with_len(kMaxBlob);
    auto invoice = r.bytes_with_len(kMaxBlob);
    if (!rid || !at || !package || !invoice) return std::nullopt;
    acc.reservation_id = *rid;
    acc.accepted_at_ms = *at;
    acc.package = std::move(*package);
    acc.invoice = std::move(*invoice);
    img.accepted.push_back(std::move(acc));
  }

  const auto n_dis = r.varint();
  if (!n_dis || *n_dis > kMaxEntries) return std::nullopt;
  img.open_disputes.reserve(static_cast<std::size_t>(*n_dis));
  for (std::uint64_t i = 0; i < *n_dis; ++i) {
    DisputeImage dis;
    const auto eid = r.u64le();
    if (!eid || !read_txid(r, dis.txid)) return std::nullopt;
    const auto amount = r.u64le();
    const auto deadline = r.u64le();
    if (!amount || !deadline) return std::nullopt;
    dis.escrow_id = *eid;
    dis.amount = *amount;
    dis.deadline_ms = *deadline;
    img.open_disputes.push_back(std::move(dis));
  }

  const auto epoch = r.u64le();
  if (!epoch) return std::nullopt;
  img.epoch = *epoch;
  const auto n_hdr = r.varint();
  if (!n_hdr || *n_hdr > kMaxEntries) return std::nullopt;
  img.headers.reserve(static_cast<std::size_t>(*n_hdr));
  for (std::uint64_t i = 0; i < *n_hdr; ++i) {
    ByteArray<80> h{};
    const auto b = r.bytes(80);
    if (!b) return std::nullopt;
    std::copy(b->begin(), b->end(), h.begin());
    img.headers.push_back(h);
  }

  if (!r.at_end()) return std::nullopt;
  return img;
}

bool apply_record(StateImage& image, const StoreRecord& record, std::uint64_t seq) {
  switch (record.kind) {
    case RecordKind::kReserve: {
      for (const auto& r : image.reservations) {
        if (r.id == record.reservation_id) return false;  // double reserve
      }
      ReservationImage res;
      res.id = record.reservation_id;
      res.escrow_id = record.escrow_id;
      res.amount = record.amount;
      res.expires_at_ms = record.expires_at_ms;
      res.txid = record.txid;
      image.reservations.push_back(std::move(res));
      break;
    }
    case RecordKind::kRelease: {
      auto it = std::find_if(
          image.reservations.begin(), image.reservations.end(),
          [&](const ReservationImage& r) { return r.id == record.reservation_id; });
      if (it == image.reservations.end()) return false;  // release of unknown id
      image.reservations.erase(it);
      // An accepted binding whose reservation resolved is settled/judged
      // history; drop it from the live book image too.
      auto acc = std::find_if(
          image.accepted.begin(), image.accepted.end(),
          [&](const AcceptedImage& a) { return a.reservation_id == record.reservation_id; });
      if (acc != image.accepted.end()) image.accepted.erase(acc);
      ++image.released_count;
      break;
    }
    case RecordKind::kAcceptCommit: {
      for (const auto& a : image.accepted) {
        if (a.reservation_id == record.reservation_id) return false;  // double commit
      }
      AcceptedImage acc;
      acc.reservation_id = record.reservation_id;
      acc.accepted_at_ms = record.accepted_at_ms;
      acc.package = record.package;
      acc.invoice = record.invoice;
      image.accepted.push_back(std::move(acc));
      break;
    }
    case RecordKind::kDisputeOpen: {
      for (const auto& d : image.open_disputes) {
        if (d.escrow_id == record.escrow_id && d.txid == record.txid) return false;
      }
      DisputeImage dis;
      dis.escrow_id = record.escrow_id;
      dis.txid = record.txid;
      dis.amount = record.amount;
      dis.deadline_ms = record.expires_at_ms;
      image.open_disputes.push_back(std::move(dis));
      break;
    }
    case RecordKind::kDisputeResolve: {
      auto it = std::find_if(image.open_disputes.begin(), image.open_disputes.end(),
                             [&](const DisputeImage& d) {
                               return d.escrow_id == record.escrow_id && d.txid == record.txid;
                             });
      if (it == image.open_disputes.end()) return false;  // resolve of unopened dispute
      image.open_disputes.erase(it);
      ++image.resolved_disputes;
      break;
    }
    case RecordKind::kEpochChange: {
      // Epochs only move forward; a replayed change to an equal or older
      // epoch means a stale primary's log leaked past the fence.
      if (record.epoch <= image.epoch) return false;
      image.epoch = record.epoch;
      break;
    }
    case RecordKind::kHeaderAccept: {
      for (const auto& h : image.headers) {
        if (h == record.header) return false;  // double-accept of a header
      }
      image.headers.push_back(record.header);
      break;
    }
    default:
      return false;
  }
  image.last_seq = seq;
  return true;
}

Bytes encode_snapshot(const StateImage& image) {
  const Bytes body = image.serialize();
  Writer covered;  // version || body — the checksummed region
  covered.u32le(kSnapshotVersion);
  covered.bytes(body);
  Writer w;
  w.reserve(8 + covered.size());
  w.u32le(kSnapshotMagic);
  w.u32le(crc32c(covered.data()));
  w.bytes(covered.data());
  return std::move(w).take();
}

std::optional<StateImage> decode_snapshot(ByteSpan data) {
  Reader r(data);
  const auto magic = r.u32le();
  const auto crc = r.u32le();
  if (!magic || !crc || *magic != kSnapshotMagic) return std::nullopt;
  const ByteSpan covered{data.data() + 8, data.size() - 8};
  if (crc32c(covered) != *crc) return std::nullopt;
  Reader body(covered);
  const auto version = body.u32le();
  if (!version || *version != kSnapshotVersion) return std::nullopt;
  return StateImage::deserialize({covered.data() + 4, covered.size() - 4});
}

bool write_snapshot(const std::string& path, const StateImage& image) {
  const Bytes encoded = encode_snapshot(image);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(encoded.data(), 1, encoded.size(), f) == encoded.size();
  bool synced = false;
  if (wrote) {
    if (std::fflush(f) == 0) {
#if defined(_WIN32)
      synced = _commit(_fileno(f)) == 0;
#else
      synced = ::fsync(fileno(f)) == 0;
#endif
    }
  }
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<StateImage> read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return decode_snapshot(data);
}

}  // namespace btcfast::store
