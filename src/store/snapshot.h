// Snapshots: periodic compaction of the replayed state so recovery cost
// stays proportional to the WAL suffix, not the deployment's lifetime.
// On-disk format:
//
//   u32le magic "BFS1" | u32le crc32c(version || body) | u32le version | body
//
// The body is StateImage::serialize() — canonical (entries sorted by
// key), so two images with the same logical content are byte-identical.
// That property is what the acceptance test leans on: a recovered store
// must serialize to exactly the bytes of a never-crashed control.
// Snapshots are written to a temp file and renamed into place; a torn
// snapshot never appears under its final name.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "store/records.h"

namespace btcfast::store {

inline constexpr std::uint32_t kSnapshotMagic = 0x31534642;  // "BFS1" little-endian
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// A live gateway reservation (collateral held against an escrow).
struct ReservationImage {
  ReservationId id = 0;
  EscrowId escrow_id = 0;
  std::uint64_t amount = 0;
  std::uint64_t expires_at_ms = 0;
  ByteArray<32> txid{};

  [[nodiscard]] bool operator==(const ReservationImage& o) const = default;
};

/// An accepted binding the merchant committed to (commit queue drained).
struct AcceptedImage {
  ReservationId reservation_id = 0;
  std::uint64_t accepted_at_ms = 0;
  Bytes package;  ///< opaque core::FastPayPackage encoding
  Bytes invoice;  ///< opaque core::Invoice encoding

  [[nodiscard]] bool operator==(const AcceptedImage& o) const = default;
};

/// A dispute the watchtower observed open and not yet resolved.
struct DisputeImage {
  EscrowId escrow_id = 0;
  ByteArray<32> txid{};
  std::uint64_t amount = 0;
  std::uint64_t deadline_ms = 0;

  [[nodiscard]] bool operator==(const DisputeImage& o) const = default;
};

/// The full durable state at one WAL position. apply_record() is the
/// single replay function — the live store and recovery both use it, so
/// a recovered image can never diverge from the in-memory one.
struct StateImage {
  std::uint64_t last_seq = 0;  ///< seq of the last applied record
  std::vector<ReservationImage> reservations;
  std::vector<AcceptedImage> accepted;
  std::vector<DisputeImage> open_disputes;
  // Cumulative history counters, so "byte-identical to the control run"
  // covers not just live entries but how many came and went.
  std::uint64_t released_count = 0;
  std::uint64_t resolved_disputes = 0;
  /// Replication epoch the writer of this state runs under. 0 until the
  /// first promotion; bumped only by kEpochChange records.
  std::uint64_t epoch = 0;
  /// Connected BTC headers the watchtower's sync tree accepted, in
  /// connection order (parent-first — the order is part of the logical
  /// content: restore re-accepts them sequentially).
  std::vector<ByteArray<80>> headers;

  /// Canonical encoding: entries sorted by key, fixed field order.
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<StateImage> deserialize(ByteSpan data);

  [[nodiscard]] bool operator==(const StateImage& o) const = default;
};

/// Apply one WAL record (payload already decoded) at sequence `seq`.
/// Returns false on an impossible transition — double-reserve of an id,
/// release of an unknown reservation, resolve of an unopened dispute —
/// which recovery treats as corruption and fails closed on.
[[nodiscard]] bool apply_record(StateImage& image, const StoreRecord& record, std::uint64_t seq);

[[nodiscard]] Bytes encode_snapshot(const StateImage& image);
/// Total decoder: any single flipped or missing byte fails it.
[[nodiscard]] std::optional<StateImage> decode_snapshot(ByteSpan data);

/// Write atomically: temp file in the same directory, fsync, rename.
[[nodiscard]] bool write_snapshot(const std::string& path, const StateImage& image);
[[nodiscard]] std::optional<StateImage> read_snapshot(const std::string& path);

}  // namespace btcfast::store
