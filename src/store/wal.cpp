#include "store/wal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/serialize.h"
#include "store/crc32c.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace btcfast::store {
namespace {

/// Real file: buffered stdio appends + fflush/fsync on sync().
class PosixFile final : public AppendFile {
 public:
  explicit PosixFile(std::FILE* f, std::uint64_t size) : f_(f), size_(size) {}
  ~PosixFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  bool append(ByteSpan data) override {
    if (f_ == nullptr) return false;
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) return false;
    size_ += data.size();
    return true;
  }

  bool sync() override {
    if (f_ == nullptr) return false;
    if (std::fflush(f_) != 0) return false;
#if defined(_WIN32)
    return _commit(_fileno(f_)) == 0;
#else
    return ::fsync(fileno(f_)) == 0;
#endif
  }

  bool flush() override { return f_ != nullptr && std::fflush(f_) == 0; }

  [[nodiscard]] std::uint64_t size() const override { return size_; }

 private:
  std::FILE* f_;
  std::uint64_t size_;
};

std::uint32_t load_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t load_u64le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(load_u32le(p)) |
         static_cast<std::uint64_t>(load_u32le(p + 4)) << 32;
}

}  // namespace

std::uint32_t wal_record_crc(std::uint64_t seq, ByteSpan payload) noexcept {
  std::uint8_t seq_le[8];
  for (int i = 0; i < 8; ++i) seq_le[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  return crc32c(payload, crc32c({seq_le, 8}));
}

std::unique_ptr<AppendFile> open_append_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return nullptr;
  std::uint64_t size = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long pos = std::ftell(f);
    if (pos > 0) size = static_cast<std::uint64_t>(pos);
  }
  return std::make_unique<PosixFile>(f, size);
}

void append_wal_header(Bytes& out) {
  Writer w;
  w.u32le(kWalMagic);
  w.u32le(kWalVersion);
  append(out, w.data());
}

void append_wal_record(Bytes& out, std::uint64_t seq, ByteSpan payload) {
  Writer w;
  w.reserve(kWalRecordHeaderSize + payload.size());
  w.u32le(static_cast<std::uint32_t>(payload.size()));
  w.u32le(wal_record_crc(seq, payload));
  w.u64le(seq);
  w.bytes(payload);
  append(out, w.data());
}

Wal::Wal(std::unique_ptr<AppendFile> file, WalOptions options, std::uint64_t next_seq,
         bool write_header)
    : file_(std::move(file)), options_(options), next_seq_(next_seq) {
  if (write_header) {
    append_wal_header(buffer_);
    header_prefix_ = buffer_.size();
  }
}

std::uint64_t Wal::append(ByteSpan payload) {
  const std::uint64_t seq = next_seq_++;
  append_wal_record(buffer_, seq, payload);
  ++buffered_records_;
  ++appends_;
  return seq;
}

bool Wal::commit() {
  if (!buffer_.empty()) {
    if (file_ == nullptr || !file_->append(buffer_)) return false;
    bytes_written_ += buffer_.size();
    unsynced_records_ += buffered_records_;
    if (tap_ && buffered_records_ > 0) {
      // Hand the observer exactly the record bytes that just landed —
      // minus the file header a fresh segment's first commit carries.
      tap_(next_seq_ - buffered_records_, buffered_records_,
           ByteSpan{buffer_.data() + header_prefix_, buffer_.size() - header_prefix_});
    }
    buffer_.clear();
    header_prefix_ = 0;
    buffered_records_ = 0;
    ++commits_;
  }
  const bool want_sync =
      options_.policy == FsyncPolicy::kAlways ||
      (options_.policy == FsyncPolicy::kBatch && unsynced_records_ >= options_.batch_records);
  if (want_sync && unsynced_records_ > 0) {
    if (file_ == nullptr || !file_->sync()) return false;
    ++syncs_;
    unsynced_records_ = 0;
  }
  return true;
}

bool Wal::flush_os() { return file_ != nullptr && file_->flush(); }

bool Wal::sync() {
  if (!commit()) return false;
  if (unsynced_records_ > 0 || options_.policy == FsyncPolicy::kNone) {
    if (file_ == nullptr || !file_->sync()) return false;
    ++syncs_;
    unsynced_records_ = 0;
  }
  return true;
}

WalScan scan_wal(ByteSpan data, std::uint64_t expect_first_seq) {
  WalScan out;
  if (data.empty()) return out;  // never written: an empty log
  if (data.size() < kWalHeaderSize) {
    out.truncated_tail = true;  // crash mid-header
    return out;
  }
  if (load_u32le(data.data()) != kWalMagic || load_u32le(data.data() + 4) != kWalVersion) {
    out.error = "bad wal header";
    return out;
  }
  std::size_t pos = kWalHeaderSize;
  out.valid_bytes = pos;
  std::uint64_t expect_seq = expect_first_seq;
  while (pos < data.size()) {
    const std::size_t remaining = data.size() - pos;
    if (remaining < kWalRecordHeaderSize) {
      out.truncated_tail = true;  // torn record header
      return out;
    }
    const std::uint32_t len = load_u32le(data.data() + pos);
    const std::uint32_t crc = load_u32le(data.data() + pos + 4);
    const std::uint64_t seq = load_u64le(data.data() + pos + 8);
    if (remaining - kWalRecordHeaderSize < len) {
      out.truncated_tail = true;  // torn payload
      return out;
    }
    if (len > kMaxWalPayload) {
      // A length this absurd can't come from our writer; with the rest
      // of the record "present", this is corruption, not a crash.
      out.error = "oversize record length at offset " + std::to_string(pos);
      return out;
    }
    const ByteSpan payload{data.data() + pos + kWalRecordHeaderSize, len};
    const std::size_t end = pos + kWalRecordHeaderSize + len;
    if (wal_record_crc(seq, payload) != crc) {
      if (end == data.size()) {
        out.truncated_tail = true;  // torn final record (partial write)
        return out;
      }
      out.error = "checksum mismatch at offset " + std::to_string(pos) + " (mid-log)";
      return out;
    }
    if (expect_seq != 0 && seq != expect_seq) {
      std::ostringstream os;
      os << "sequence break at offset " << pos << ": got " << seq << ", want " << expect_seq;
      out.error = os.str();
      return out;
    }
    expect_seq = seq + 1;
    out.records.push_back(WalRecord{seq, Bytes(payload.begin(), payload.end())});
    pos = end;
    out.valid_bytes = pos;
  }
  return out;
}

WalScan scan_wal_file(const std::string& path, std::uint64_t expect_first_seq) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return WalScan{};  // missing file: empty log
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return scan_wal(data, expect_first_seq);
}

WalWindowScan scan_wal_file_window(const std::string& path, std::uint64_t offset,
                                   std::uint64_t expect_first_seq, std::size_t max_records) {
  WalWindowScan out;
  out.end_offset = offset;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.at_eof = true;  // missing file: empty log
    return out;
  }
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());

  if (offset == 0) {
    if (file_size < kWalHeaderSize) {
      out.at_eof = true;  // crash mid-header: nothing durable here
      return out;
    }
    std::uint8_t hdr[kWalHeaderSize];
    in.seekg(0);
    if (!in.read(reinterpret_cast<char*>(hdr), kWalHeaderSize)) {
      out.error = "cannot read wal header";
      return out;
    }
    if (load_u32le(hdr) != kWalMagic || load_u32le(hdr + 4) != kWalVersion) {
      out.error = "bad wal header";
      return out;
    }
    out.end_offset = kWalHeaderSize;
  } else {
    in.seekg(static_cast<std::streamoff>(offset));
  }

  std::uint64_t expect_seq = expect_first_seq;
  while (out.records.size() < max_records) {
    const std::uint64_t pos = out.end_offset;
    if (pos + kWalRecordHeaderSize > file_size) {
      out.at_eof = true;  // clean end, or a torn record header
      return out;
    }
    std::uint8_t rhdr[kWalRecordHeaderSize];
    if (!in.read(reinterpret_cast<char*>(rhdr), kWalRecordHeaderSize)) {
      out.error = "short read at offset " + std::to_string(pos);
      return out;
    }
    const std::uint32_t len = load_u32le(rhdr);
    const std::uint32_t crc = load_u32le(rhdr + 4);
    const std::uint64_t seq = load_u64le(rhdr + 8);
    if (len > kMaxWalPayload) {
      out.error = "oversize record length at offset " + std::to_string(pos);
      return out;
    }
    const std::uint64_t end = pos + kWalRecordHeaderSize + len;
    if (end > file_size) {
      out.at_eof = true;  // torn payload at the tail
      return out;
    }
    Bytes payload(len);
    if (len > 0 && !in.read(reinterpret_cast<char*>(payload.data()), len)) {
      out.error = "short read at offset " + std::to_string(pos);
      return out;
    }
    if (wal_record_crc(seq, ByteSpan{payload.data(), payload.size()}) != crc) {
      if (end == file_size) {
        out.at_eof = true;  // torn final record (partial write)
        return out;
      }
      out.error = "checksum mismatch at offset " + std::to_string(pos) + " (mid-log)";
      return out;
    }
    if (expect_seq != 0 && seq != expect_seq) {
      std::ostringstream os;
      os << "sequence break at offset " << pos << ": got " << seq << ", want " << expect_seq;
      out.error = os.str();
      return out;
    }
    expect_seq = seq + 1;
    out.records.push_back(WalRecord{seq, std::move(payload)});
    out.end_offset = end;
  }
  return out;
}

}  // namespace btcfast::store
