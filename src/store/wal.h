// Append-only write-ahead log. On-disk format:
//
//   file   := header record*
//   header := u32le magic "BFW1" | u32le version
//   record := u32le payload_len | u32le crc32c(seq_le || payload)
//           | u64le seq | payload
//
// Sequence numbers are assigned by the writer and must be contiguous —
// they are the cross-segment ordering and the duplicate/skip detector.
// Appends accumulate in a user-space buffer; commit() writes the batch
// in one syscall and fsyncs per FsyncPolicy (group commit). The reader
// distinguishes two corruption classes:
//
//   torn tail  — the file ends mid-record, or the final record's
//                checksum fails: the expected crash signature. The valid
//                prefix is returned and `truncated_tail` is set.
//   mid-log    — a checksum or sequence violation with more data after
//                it: silent corruption, never a crash artifact. The scan
//                fails closed (`error` nonempty) so recovery refuses to
//                build state from a log it cannot trust.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace btcfast::store {

inline constexpr std::uint32_t kWalMagic = 0x31574642;  // "BFW1" little-endian
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderSize = 8;
inline constexpr std::size_t kWalRecordHeaderSize = 16;
inline constexpr std::size_t kMaxWalPayload = 1u << 24;

/// Minimal append-only file abstraction so tests can substitute a
/// fault-injecting in-memory file (store::FaultFile) for the real thing.
class AppendFile {
 public:
  virtual ~AppendFile() = default;
  /// Append `data` at the end; false on IO error (or injected fault).
  virtual bool append(ByteSpan data) = 0;
  /// Flush to stable storage; false on IO error (or injected fault).
  virtual bool sync() = 0;
  /// Flush user-space buffers to the OS *without* forcing durability, so
  /// a concurrent reader of the same path sees every committed byte. The
  /// ship/catch-up read path needs this; in-memory test files are
  /// already "visible" and keep the no-op default.
  virtual bool flush() { return true; }
  [[nodiscard]] virtual std::uint64_t size() const = 0;
};

/// Open (create or append-to) a real file on disk.
[[nodiscard]] std::unique_ptr<AppendFile> open_append_file(const std::string& path);

enum class FsyncPolicy : std::uint8_t {
  kAlways,  ///< fsync on every commit() — strongest durability
  kBatch,   ///< fsync once at least `batch_records` appends accumulated
  kNone,    ///< never fsync (tests/benchmarks; OS decides when data lands)
};

struct WalOptions {
  FsyncPolicy policy = FsyncPolicy::kBatch;
  std::size_t batch_records = 32;  ///< kBatch: records per fsync
};

/// Low-level framing, shared with the scan path, tests and fuzzers.
void append_wal_header(Bytes& out);
void append_wal_record(Bytes& out, std::uint64_t seq, ByteSpan payload);

/// The framed-record CRC: crc32c(seq_le || payload). Exposed so the
/// replication layer can re-verify shipped frames without re-framing.
[[nodiscard]] std::uint32_t wal_record_crc(std::uint64_t seq, ByteSpan payload) noexcept;

/// Observer invoked inside commit() after the batch reached the file:
/// (first_seq, count, framed) where `framed` is the batch's record bytes
/// exactly as written (file header excluded). Runs under the owning
/// store's mutex — it must only copy/buffer, never call back into the
/// store. This is the primary-side shipping seam.
using CommitTap = std::function<void(std::uint64_t first_seq, std::size_t count, ByteSpan framed)>;

/// Writer half. Not thread-safe — the owning DurableStore serializes
/// access. `next_seq` seeds the sequence counter (recovery resumes past
/// the replayed suffix); pass `write_header` false only when appending
/// to an already-headered file.
class Wal {
 public:
  Wal(std::unique_ptr<AppendFile> file, WalOptions options, std::uint64_t next_seq,
      bool write_header = true);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Frame `payload` into the commit buffer and return its sequence
  /// number. Nothing reaches the file until commit().
  std::uint64_t append(ByteSpan payload);

  /// Write the buffered batch in one append and fsync per policy.
  /// Returns false on IO failure (buffer is kept for retry).
  bool commit();

  /// commit() then force an fsync regardless of policy.
  bool sync();

  /// Flush committed bytes from user-space to the OS (no fsync), so a
  /// separate read of the segment path observes them.
  bool flush_os();

  /// Install the commit observer (nullptr to clear).
  void set_commit_tap(CommitTap tap) { tap_ = std::move(tap); }

  /// Highest sequence number committed to the file; 0 when none.
  [[nodiscard]] std::uint64_t committed_seq() const noexcept {
    return next_seq_ - buffered_records_ - 1;
  }

  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] std::uint64_t appends() const noexcept { return appends_; }
  [[nodiscard]] std::uint64_t commits() const noexcept { return commits_; }
  [[nodiscard]] std::uint64_t syncs() const noexcept { return syncs_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  [[nodiscard]] std::size_t buffered_records() const noexcept { return buffered_records_; }

 private:
  std::unique_ptr<AppendFile> file_;
  WalOptions options_;
  std::uint64_t next_seq_;
  Bytes buffer_;
  std::size_t header_prefix_ = 0;  ///< file-header bytes at buffer_'s front
  CommitTap tap_;
  std::size_t buffered_records_ = 0;
  std::size_t unsynced_records_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t bytes_written_ = 0;
};

struct WalRecord {
  std::uint64_t seq = 0;
  Bytes payload;
};

struct WalScan {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;  ///< prefix length covering `records`
  bool truncated_tail = false;    ///< crash signature: tail dropped
  std::string error;              ///< nonempty: mid-log corruption, fail closed

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Scan an in-memory WAL image. `expect_first_seq` pins the first
/// record's sequence number (0 = accept any start); later records must
/// each be exactly prev+1 — duplicates and skips fail closed.
[[nodiscard]] WalScan scan_wal(ByteSpan data, std::uint64_t expect_first_seq = 0);

/// Scan a WAL file from disk. A missing file scans as empty (a store
/// that crashed before its first commit), a readable-but-corrupt one
/// reports through WalScan::error.
[[nodiscard]] WalScan scan_wal_file(const std::string& path, std::uint64_t expect_first_seq = 0);

/// One bounded step of a forward stream over a WAL file.
struct WalWindowScan {
  std::vector<WalRecord> records;
  std::uint64_t end_offset = 0;  ///< byte offset just past the last parsed record
  bool at_eof = false;           ///< no further complete record exists past end_offset
  std::string error;             ///< nonempty: mid-log corruption, fail closed

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Bounded, resumable file scan: parse at most `max_records` records
/// starting at byte `offset` and stop — unlike scan_wal_file, the cost
/// is the window, not the whole segment, which is what makes forward
/// streaming over a large log linear instead of quadratic. `offset`
/// must be a record boundary obtained from a prior scan's end_offset
/// (pass 0 to start at the front; the file header is then validated).
/// `expect_first_seq` pins the first record exactly like scan_wal. A
/// record torn at the file's end reports at_eof, not an error — the
/// caller's committed-sequence bound is what fences live tails.
[[nodiscard]] WalWindowScan scan_wal_file_window(const std::string& path, std::uint64_t offset,
                                                 std::uint64_t expect_first_seq,
                                                 std::size_t max_records);

}  // namespace btcfast::store
