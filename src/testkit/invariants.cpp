#include "testkit/invariants.h"

#include <utility>

namespace btcfast::testkit {

namespace {

const char* state_name(core::EscrowState s) {
  switch (s) {
    case core::EscrowState::kEmpty:
      return "EMPTY";
    case core::EscrowState::kActive:
      return "ACTIVE";
    case core::EscrowState::kDisputed:
      return "DISPUTED";
  }
  return "?";
}

/// Legal escrow state transitions. Every edge the contract can take:
/// deposit (EMPTY->ACTIVE), withdraw (ACTIVE->EMPTY), openDispute
/// (ACTIVE->DISPUTED), judge (DISPUTED->ACTIVE). Self-loops are always
/// legal (no transition between two observations).
bool legal_transition(core::EscrowState from, core::EscrowState to) {
  using S = core::EscrowState;
  if (from == to) return true;
  switch (from) {
    case S::kEmpty:
      return to == S::kActive;
    case S::kActive:
      return to == S::kDisputed || to == S::kEmpty;
    case S::kDisputed:
      return to == S::kActive || to == S::kEmpty;
  }
  return false;
}

}  // namespace

InvariantChecker::InvariantChecker(core::Deployment& deployment, std::string mutate)
    : dep_(deployment), mutate_(std::move(mutate)) {}

template <typename DetailFn>
void InvariantChecker::require(const char* name, bool ok, const char* context,
                               DetailFn&& detail) {
  if (mutate_ == name) ok = !ok;  // mutation-testing hook: negate one predicate
  if (ok || violation_.has_value()) return;
  Violation v;
  v.invariant = name;
  v.detail = detail();
  v.detail += " [at ";
  v.detail += context;
  v.detail += "]";
  v.at = dep_.simulator().now();
  v.check_index = checks_;
  violation_ = std::move(v);
}

std::pair<std::uint64_t, std::uint64_t> InvariantChecker::dispute_log_counts() const {
  std::uint64_t opened = 0;
  std::uint64_t judged = 0;
  for (const auto& log : dep_.psc().logs()) {
    if (log.topic == "DisputeOpened") ++opened;
    if (log.topic == "JudgedForMerchant" || log.topic == "JudgedForCustomer") ++judged;
  }
  return {opened, judged};
}

void InvariantChecker::check_conservation(const char* context) {
  // PSC value only moves between accounts (execution fees land in the
  // fee-sink account), so the sum of every balance equals all value ever
  // minted — always, after every transaction.
  const psc::Value total = dep_.psc().state().total_balance();
  const psc::Value minted = dep_.psc().total_minted();
  require("value-conservation", total == minted, context, [&] {
    return "sum(balances)=" + std::to_string(total) + " != minted=" + std::to_string(minted);
  });
}

void InvariantChecker::check_escrow_accounting(const char* context) {
  // The judger contract's balance is exactly the collateral it custodies
  // plus one dispute bond per open (unjudged) dispute. Any drift means
  // collateral was double-released or a bond vanished.
  const auto view = dep_.escrow_view();
  if (!view) return;
  const psc::Value held = dep_.psc().state().balance(dep_.judger_address());
  const auto [opened, judged] = dispute_log_counts();
  const psc::Value open_bonds = (opened - judged) * dep_.judger_config().dispute_bond;
  require("escrow-accounting", held == view->collateral + open_bonds, context, [&] {
    return "judger balance=" + std::to_string(held) + " != collateral=" +
           std::to_string(view->collateral) + " + open bonds=" + std::to_string(open_bonds) +
           " (" + std::to_string(opened) + " opened/" + std::to_string(judged) + " judged)";
  });
}

void InvariantChecker::check_exposure(const char* context) {
  // The contract must never promise more than it holds: on-chain
  // reservations fit inside the collateral, and a pending dispute's
  // compensation is payable from it.
  const auto view = dep_.escrow_view();
  if (!view) return;
  require("exposure-bounded", view->reserved <= view->collateral, context, [&] {
    return "reserved=" + std::to_string(view->reserved) + " > collateral=" +
           std::to_string(view->collateral);
  });
  if (view->state == core::EscrowState::kDisputed) {
    require("exposure-bounded",
            view->dispute_compensation <= view->collateral - view->reserved, context, [&] {
              return "disputed compensation=" + std::to_string(view->dispute_compensation) +
                     " exceeds free collateral=" +
                     std::to_string(view->collateral - view->reserved);
            });
  }
}

void InvariantChecker::check_state_machine(const char* context) {
  const auto view = dep_.escrow_view();
  if (!view) return;
  if (prev_view_) {
    require("dispute-state-machine", legal_transition(prev_view_->state, view->state), context,
            [&] {
              return std::string("illegal escrow transition ") + state_name(prev_view_->state) +
                     " -> " + state_name(view->state);
            });
    // Within one dispute instance (same deadline) the record is
    // append-only: work totals grow, a proof never un-proves, and the
    // deadline itself is immutable.
    if (prev_view_->state == core::EscrowState::kDisputed &&
        view->state == core::EscrowState::kDisputed &&
        prev_view_->dispute_deadline_ms == view->dispute_deadline_ms) {
      require("dispute-state-machine", !(prev_view_->customer_proved && !view->customer_proved),
              context, [&] { return std::string("customer_proved regressed true -> false"); });
      require("dispute-state-machine", view->merchant_work >= prev_view_->merchant_work, context,
              [&] { return std::string("merchant evidence work decreased"); });
      require("dispute-state-machine", view->customer_work >= prev_view_->customer_work, context,
              [&] { return std::string("customer evidence work decreased"); });
    }
  }
  prev_view_ = view;
}

void InvariantChecker::check_no_double_release(const char* context) {
  // Judgments consume disputes one-for-one; the contract can never emit
  // more JudgedFor* events than DisputeOpened events, and never more
  // than one judgment between two consecutive observations of a single
  // escrow (each dispute instance is judged exactly once).
  const auto [opened, judged] = dispute_log_counts();
  require("no-double-release", judged <= opened, context, [&] {
    return "judged=" + std::to_string(judged) + " > opened=" + std::to_string(opened);
  });
  require("no-double-release", judged >= prev_judged_, context,
          [&] { return "judgment log count regressed"; });
  prev_judged_ = judged;
}

const std::optional<Violation>& InvariantChecker::check(const char* context) {
  if (violation_.has_value()) return violation_;
  ++checks_;
  check_conservation(context);
  check_escrow_accounting(context);
  check_exposure(context);
  check_state_machine(context);
  check_no_double_release(context);
  return violation_;
}

bool InvariantChecker::beyond_security_bound() const {
  // The paper's guarantee is parameterized on k (required_depth): an
  // adversary that out-mines k blocks defeats any k-confirmation scheme
  // with its stated epsilon probability, so made-whole is only asserted
  // inside the bound.
  const auto* attacker = dep_.attacker();
  if (attacker != nullptr && attacker->outcome().has_value() &&
      attacker->outcome()->attack_released &&
      attacker->outcome()->secret_blocks > dep_.config().required_depth) {
    return true;
  }
  // Likewise a (possibly honest) partition that reorged deeper than the
  // merchant's settle depth — outside the model's synchrony assumption.
  return dep_.merchant_node().chain().max_reorg_depth() >= dep_.config().settle_confirmations;
}

const std::optional<Violation>& InvariantChecker::final_check() {
  check("final");
  if (violation_.has_value()) return violation_;
  ++checks_;

  const bool out_of_model = beyond_security_bound();
  const auto& merchant = dep_.merchant();
  const auto& chain = dep_.merchant_node().chain();

  for (std::size_t i = 0; i < merchant.pending().size(); ++i) {
    const auto& p = merchant.pending()[i];
    // Every accepted payment must have resolved by the horizon: either
    // the BTC leg settled or a dispute ran to judgment (which pays the
    // merchant compensation unless the customer proved inclusion — in
    // which case the BTC leg is the payment).
    require("merchant-made-whole", p.settled || p.judged, "final", [&] {
      return "payment #" + std::to_string(i) + " neither settled nor judged (dispute_opened=" +
             std::to_string(p.dispute_opened) +
             ", active_seen=" + std::to_string(p.dispute_active_seen) + ")";
    });
    // A settled payment must still be on the active chain, unless the
    // run left the security bound (deep adversarial or partition reorg).
    if (p.settled && !out_of_model) {
      const auto conf = chain.confirmations(p.package.binding.binding.btc_txid);
      require("merchant-made-whole", conf > 0, "final", [&] {
        return "payment #" + std::to_string(i) +
               " settled but no longer confirmed (conf=0) inside the security bound";
      });
    }
  }

  // No dispute may be left hanging: every DisputeOpened has a matching
  // judgment once the horizon passed every deadline.
  const auto [opened, judged] = dispute_log_counts();
  require("dispute-resolved", judged == opened, "final", [&] {
    return std::to_string(opened - judged) + " dispute(s) unjudged at horizon (opened=" +
           std::to_string(opened) + ", judged=" + std::to_string(judged) + ")";
  });
  return violation_;
}

}  // namespace btcfast::testkit
