// Global protocol invariants for a BTCFast deployment, evaluated after
// every simulated network event by the scenario fuzzer. Each invariant
// is a predicate over the whole world (PSC state, escrow view, merchant
// book-keeping, Bitcoin views); the first one that fails is recorded
// with enough context to triage from the one-line seed repro.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "btcfast/orchestrator.h"

namespace btcfast::testkit {

/// A recorded invariant failure.
struct Violation {
  std::string invariant;     ///< stable name, e.g. "value-conservation"
  std::string detail;        ///< human-readable numbers behind the failure
  SimTime at = 0;            ///< simulated time of detection
  std::uint64_t check_index = 0;  ///< ordinal of the check() call that fired
};

/// Evaluates the protocol invariants against one Deployment. Construct
/// once per scenario run; call check() on every event and final_check()
/// after the horizon. The first violation latches (later checks become
/// no-ops) so the recorded state is the earliest detectable breakage.
///
/// `mutate` names one invariant whose predicate is deliberately negated
/// — the mutation-testing hook: a healthy run under a flipped checker
/// must report a violation, proving the checker is live and that the
/// printed seed reproduces it.
class InvariantChecker {
 public:
  explicit InvariantChecker(core::Deployment& deployment, std::string mutate = {});

  /// Per-event invariants: value conservation, escrow accounting,
  /// exposure bounds, dispute state machine, no double release.
  /// `context` tags the violation with where it was observed.
  const std::optional<Violation>& check(const char* context);

  /// End-of-run invariants on top of check(): every accepted payment
  /// resolved (settled or judged), all opened disputes judged, and
  /// settled payments still confirmed — the latter asserted only while
  /// the run stayed inside the k-confirmation security bound.
  const std::optional<Violation>& final_check();

  [[nodiscard]] const std::optional<Violation>& violation() const noexcept { return violation_; }
  [[nodiscard]] std::uint64_t checks_run() const noexcept { return checks_; }
  /// True when the run left the protocol's threat model: the attacker
  /// out-mined the judgment depth or an honest partition reorged deeper
  /// than the settle depth. Made-whole is not asserted beyond the bound.
  [[nodiscard]] bool beyond_security_bound() const;

 private:
  template <typename DetailFn>
  void require(const char* name, bool ok, const char* context, DetailFn&& detail);

  void check_conservation(const char* context);
  void check_escrow_accounting(const char* context);
  void check_exposure(const char* context);
  void check_state_machine(const char* context);
  void check_no_double_release(const char* context);

  /// (DisputeOpened count, JudgedFor* count) over the full PSC log.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> dispute_log_counts() const;

  core::Deployment& dep_;
  std::string mutate_;
  std::optional<Violation> violation_;
  std::uint64_t checks_ = 0;

  // Previous escrow snapshot for the state-machine / monotonicity checks.
  std::optional<core::EscrowView> prev_view_;
  std::uint64_t prev_judged_ = 0;
};

}  // namespace btcfast::testkit
