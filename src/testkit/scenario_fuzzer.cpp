#include "testkit/scenario_fuzzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include <unistd.h>

#include "btc/header.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gateway/pipeline.h"
#include "gateway/wire.h"
#include "replication/failover.h"
#include "replication/follower.h"

namespace btcfast::testkit {

namespace {

std::string fmt_minutes(SimTime t) {
  std::ostringstream os;
  os << (t / kMinute) << "m" << (t % kMinute) / kSecond << "s";
  return os.str();
}

/// Map the schedule's abstract node index onto the deployment's ids:
/// [0, honest_miners) are miners, then the customer, then the merchant.
sim::NodeId resolve_node(core::Deployment& dep, int index) {
  const auto& miners = dep.miner_node_ids();
  if (index >= 0 && static_cast<std::size_t>(index) < miners.size()) {
    return miners[static_cast<std::size_t>(index)];
  }
  if (static_cast<std::size_t>(index) == miners.size()) return dep.customer_node_id();
  return dep.merchant_node_id();
}

/// Follower fleet behind the gateway's commit gate. Directories survive
/// replica-crash events (the process dies, the disk stays), so a
/// restart reopens the same directory through the follower's own
/// recovery path. A promoted slot's dir is cleared — it became the
/// primary's directory and must never be reopened as a follower.
struct ReplicationRig {
  std::unique_ptr<replication::ReplicationGroup> group;
  std::vector<std::unique_ptr<replication::Follower>> followers;
  std::vector<std::unique_ptr<replication::LocalFollowerLink>> links;
  std::vector<std::string> dirs;
};

void apply_event(core::Deployment& dep, gateway::Gateway* gw, ReplicationRig& rig,
                 const ScenarioEvent& ev, ScenarioOutcome& out, bool& watchtower_was_down) {
  using K = ScenarioEvent::Kind;
  switch (ev.kind) {
    case K::kFastPay: {
      ++out.payments_attempted;
      const auto result = dep.perform_fastpay(ev.amount);
      if (result.accepted) ++out.payments_accepted;
      break;
    }
    case K::kIsolateNode:
      dep.network().set_isolated(resolve_node(dep, ev.node), true);
      break;
    case K::kReleaseNode:
      dep.network().set_isolated(resolve_node(dep, ev.node), false);
      break;
    case K::kWatchtowerCrash:
      dep.set_watchtower_online(false);
      watchtower_was_down = true;
      break;
    case K::kWatchtowerRestart:
      if (dep.store() != nullptr && dep.watchtower() != nullptr) {
        // Real crash semantics: tower + store handle destroyed, state
        // recovered from the snapshot + WAL on disk. Non-exact recovery
        // (or a failed reopen) is latched and reported as a violation.
        // The shipper taps the dying store, so detach it around the swap.
        if (rig.group != nullptr) rig.group->detach_primary();
        if (!dep.restart_watchtower_from_store()) out.store_recovery_exact = false;
        out.store_recovered = true;
        // The gateway held a pointer into the old store instance.
        if (gw != nullptr) gw->attach_store(dep.store());
        if (rig.group != nullptr) rig.group->attach_primary(dep.store());
      } else {
        dep.set_watchtower_online(true);
      }
      if (watchtower_was_down) out.watchtower_cycled = true;
      break;
    case K::kRelayerCrash:
      dep.set_relayer_online(false);
      break;
    case K::kRelayerRestart:
      dep.set_relayer_online(true);
      break;
    case K::kCustomerCrash:
      dep.set_customer_online(false);
      break;
    case K::kCustomerRestart:
      dep.set_customer_online(true);
      break;
    case K::kSetLossRate:
      dep.network().set_loss_rate(ev.rate);
      break;
    case K::kSetDupRate:
      dep.network().set_dup_rate(ev.rate);
      break;
    case K::kReplicaCrash:
      if (ev.node >= 0 && static_cast<std::size_t>(ev.node) < rig.links.size()) {
        const auto i = static_cast<std::size_t>(ev.node);
        rig.links[i]->set_follower(nullptr);
        rig.followers[i].reset();  // process gone; the directory stays
      }
      break;
    case K::kReplicaRestart:
      if (ev.node >= 0 && static_cast<std::size_t>(ev.node) < rig.links.size()) {
        const auto i = static_cast<std::size_t>(ev.node);
        if (!rig.followers[i] && !rig.dirs[i].empty()) {
          replication::Follower::Options fopts;
          fopts.store.policy = store::FsyncPolicy::kNone;
          rig.followers[i] = replication::Follower::open(rig.dirs[i], fopts);
        }
        rig.links[i]->set_follower(rig.followers[i].get());
      }
      break;
    case K::kPrimaryFailover: {
      if (rig.group == nullptr) break;
      const auto plan = rig.group->plan_promotion();
      if (!plan.ok()) break;  // no reachable follower to promote
      const std::uint64_t acked_high = rig.group->acked_high();
      rig.group->detach_primary();
      auto promo = replication::promote_follower(*rig.followers[plan.index], plan.new_epoch);
      rig.followers[plan.index].reset();  // defunct either way
      rig.links[plan.index]->set_follower(nullptr);
      rig.dirs[plan.index].clear();  // dir is (or tried to become) the primary's
      if (!promo.ok()) {
        out.failover_ok = false;
        break;
      }
      // The promotion invariant: every sequence the old primary acked to
      // a client under the quorum rule must survive the switch.
      if (promo.promoted_seq < acked_high) out.failover_covered = false;
      dep.adopt_store(std::move(promo.store));
      if (gw != nullptr) gw->attach_store(dep.store());
      rig.group->attach_primary(dep.store());
      (void)rig.group->fence_followers(rig.group->epoch());
      ++out.failovers;
      break;
    }
  }
}

}  // namespace

std::string ScenarioEvent::describe() const {
  using K = Kind;
  std::ostringstream os;
  os << "t=" << fmt_minutes(at) << " ";
  switch (kind) {
    case K::kFastPay:
      os << "fastpay amount=" << amount << "sat";
      break;
    case K::kIsolateNode:
      os << "isolate node#" << node;
      break;
    case K::kReleaseNode:
      os << "release node#" << node;
      break;
    case K::kWatchtowerCrash:
      os << "watchtower crash";
      break;
    case K::kWatchtowerRestart:
      os << "watchtower restart";
      break;
    case K::kRelayerCrash:
      os << "relayer crash";
      break;
    case K::kRelayerRestart:
      os << "relayer restart";
      break;
    case K::kCustomerCrash:
      os << "customer crash";
      break;
    case K::kCustomerRestart:
      os << "customer restart";
      break;
    case K::kSetLossRate:
      os << "set loss_rate=" << rate;
      break;
    case K::kSetDupRate:
      os << "set dup_rate=" << rate;
      break;
    case K::kReplicaCrash:
      os << "replica crash #" << node;
      break;
    case K::kReplicaRestart:
      os << "replica restart #" << node;
      break;
    case K::kPrimaryFailover:
      os << "primary failover";
      break;
  }
  return os.str();
}

std::string ScenarioConfig::summary() const {
  std::ostringstream os;
  os << "seed=" << seed << " q=" << deployment.attacker_share
     << " k=" << deployment.required_depth << " settle=" << deployment.settle_confirmations
     << " window=" << deployment.evidence_window_ms / 60000 << "m"
     << " dispute_after=" << deployment.dispute_after_ms / 60000 << "m"
     << " loss=" << deployment.net.loss_rate << " dup=" << deployment.net.dup_rate
     << " watchtower=" << deployment.watchtower_enabled
     << " customer_online=" << deployment.customer_online
     << " reserve=" << deployment.reserve_payments << " gateway=" << use_gateway
     << " store=" << use_store << " shards=" << gateway_shards << " repl="
     << replication_followers << "/" << replication_quorum << " events=" << events.size()
     << " horizon=" << horizon / kMinute << "m";
  return os.str();
}

ScenarioConfig sample_scenario(std::uint64_t seed) {
  Rng rng(seed ^ 0xb7c5f0d1a3e89642ULL);
  ScenarioConfig cfg;
  cfg.seed = seed;

  core::DeploymentConfig& d = cfg.deployment;
  d.seed = seed;
  // Very low difficulty (~2^6 hashes/block): the fuzzer stands up a full
  // deployment per seed, so PoW must cost microseconds, not milliseconds.
  d.params.pow_limit = crypto::U256::one() << 250;
  d.params.genesis_bits = btc::target_to_bits(d.params.pow_limit);

  // Adversary strength in three buckets: honest, inside the security
  // bound (dispute-and-compensate territory), and past it (the epsilon
  // the paper concedes; made-whole is gated on the bound there).
  const auto bucket = rng.below(10);
  if (bucket < 4) {
    d.attacker_share = 0.0;
  } else if (bucket < 8) {
    d.attacker_share = 0.10 + rng.uniform() * 0.25;
  } else {
    d.attacker_share = 0.55 + rng.uniform() * 0.15;
  }
  d.attacker_release_confirmations = static_cast<std::uint32_t>(rng.below(3));
  d.attacker_give_up_deficit = 6 + static_cast<int>(rng.below(8));

  d.required_depth = 2 + static_cast<std::uint32_t>(rng.below(3));
  d.settle_confirmations = 2 + static_cast<std::uint32_t>(rng.below(3));
  d.dispute_after_ms = (8 + rng.below(18)) * 60 * 1000;
  d.evidence_window_ms = (15 + rng.below(16)) * 60 * 1000;
  d.poll_interval_ms = (20 + rng.below(41)) * 1000;
  d.psc_block_interval_ms = (5 + rng.below(11)) * 1000;

  d.customer_online = rng.chance(0.7);
  d.watchtower_enabled = rng.chance(0.6);
  d.reserve_payments = rng.chance(0.25);
  cfg.use_gateway = rng.chance(0.5);

  d.net.base_latency = static_cast<SimTime>(20 + rng.below(180));
  d.net.jitter = static_cast<SimTime>(rng.below(120));
  if (rng.chance(0.35)) d.net.loss_rate = 0.02 + rng.uniform() * 0.18;
  if (rng.chance(0.25)) d.net.dup_rate = 0.02 + rng.uniform() * 0.12;

  const std::size_t n_payments = 1 + rng.below(3);
  d.funded_coins = static_cast<btc::Amount>(n_payments);

  // --- the event schedule ---
  SimTime last_payment_at = 0;
  for (std::size_t i = 0; i < n_payments; ++i) {
    ScenarioEvent ev;
    ev.kind = ScenarioEvent::Kind::kFastPay;
    ev.at = static_cast<SimTime>(1 + rng.below(30)) * kMinute;
    ev.amount = static_cast<btc::Amount>(100'000 + rng.below(1'000'000));
    last_payment_at = std::max(last_payment_at, ev.at);
    cfg.events.push_back(ev);
  }

  if (rng.chance(0.45)) {
    // Eclipse one node for a bounded interval (a miner, the customer, or
    // the merchant — isolating the merchant stalls its confirmation view
    // and drives the dispute path).
    const int node = static_cast<int>(rng.below(d.honest_miners + 2));
    const SimTime from = static_cast<SimTime>(2 + rng.below(40)) * kMinute;
    const SimTime until = from + static_cast<SimTime>(1 + rng.below(18)) * kMinute;
    cfg.events.push_back({ScenarioEvent::Kind::kIsolateNode, from, node});
    cfg.events.push_back({ScenarioEvent::Kind::kReleaseNode, until, node});
  }

  if (d.watchtower_enabled && rng.chance(0.5)) {
    const SimTime from = static_cast<SimTime>(5 + rng.below(40)) * kMinute;
    const SimTime until = from + static_cast<SimTime>(3 + rng.below(25)) * kMinute;
    cfg.events.push_back({ScenarioEvent::Kind::kWatchtowerCrash, from});
    cfg.events.push_back({ScenarioEvent::Kind::kWatchtowerRestart, until});
  }

  if (rng.chance(0.4)) {
    const SimTime from = static_cast<SimTime>(5 + rng.below(40)) * kMinute;
    const SimTime until = from + static_cast<SimTime>(3 + rng.below(25)) * kMinute;
    cfg.events.push_back({ScenarioEvent::Kind::kRelayerCrash, from});
    cfg.events.push_back({ScenarioEvent::Kind::kRelayerRestart, until});
  }

  if (d.customer_online && rng.chance(0.3)) {
    const SimTime from = static_cast<SimTime>(5 + rng.below(40)) * kMinute;
    cfg.events.push_back({ScenarioEvent::Kind::kCustomerCrash, from});
    if (rng.chance(0.7)) {
      const SimTime until = from + static_cast<SimTime>(5 + rng.below(30)) * kMinute;
      cfg.events.push_back({ScenarioEvent::Kind::kCustomerRestart, until});
    }
  }

  if (rng.chance(0.5)) {
    // A lossy epoch starting mid-run; usually healed later.
    ScenarioEvent ev;
    ev.kind = ScenarioEvent::Kind::kSetLossRate;
    ev.at = static_cast<SimTime>(2 + rng.below(45)) * kMinute;
    ev.rate = 0.05 + rng.uniform() * 0.30;
    cfg.events.push_back(ev);
    if (rng.chance(0.7)) {
      ScenarioEvent heal;
      heal.kind = ScenarioEvent::Kind::kSetLossRate;
      heal.at = ev.at + static_cast<SimTime>(3 + rng.below(25)) * kMinute;
      heal.rate = 0.0;
      cfg.events.push_back(heal);
    }
  }
  if (rng.chance(0.35)) {
    ScenarioEvent ev;
    ev.kind = ScenarioEvent::Kind::kSetDupRate;
    ev.at = static_cast<SimTime>(2 + rng.below(45)) * kMinute;
    ev.rate = 0.05 + rng.uniform() * 0.15;
    cfg.events.push_back(ev);
  }

  std::stable_sort(cfg.events.begin(), cfg.events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) { return a.at < b.at; });

  // Horizon: disputes against one escrow resolve sequentially, so budget
  // a full dispute cycle per payment plus settling/poll slack.
  SimTime last_event = last_payment_at;
  for (const auto& ev : cfg.events) last_event = std::max(last_event, ev.at);
  const SimTime per_payment =
      static_cast<SimTime>(d.dispute_after_ms + d.evidence_window_ms) + 10 * kMinute;
  cfg.horizon = last_event + static_cast<SimTime>(n_payments) * per_payment + 45 * kMinute;

  // Drawn last so adding durability to the sampler left every earlier
  // draw — and therefore existing seed repros — unchanged.
  cfg.use_store = rng.chance(0.5);
  // Same trick again for the sharded gateway: the shard-count draw comes
  // after every pre-existing draw, so seeds sampled before it existed
  // still replay identically. 1/2/4/8 shards all must produce the same
  // decisions (responses are geometry-independent by design — this is
  // the fuzzer's standing check of that claim).
  cfg.gateway_shards = std::size_t{1} << rng.below(4);
  // Replication draws land after every earlier draw — the same
  // seed-stability trick once more. Only store+gateway runs have a
  // commit path a quorum gate can sit on.
  if (cfg.use_store && cfg.use_gateway && rng.chance(0.45)) {
    cfg.replication_followers = 1 + rng.below(2);
    cfg.replication_quorum = rng.below(cfg.replication_followers + 1);
    if (rng.chance(0.5)) {
      const int replica = static_cast<int>(rng.below(cfg.replication_followers));
      const SimTime from = static_cast<SimTime>(3 + rng.below(35)) * kMinute;
      const SimTime until = from + static_cast<SimTime>(2 + rng.below(20)) * kMinute;
      cfg.events.push_back({ScenarioEvent::Kind::kReplicaCrash, from, replica});
      cfg.events.push_back({ScenarioEvent::Kind::kReplicaRestart, until, replica});
    }
    if (rng.chance(0.4)) {
      ScenarioEvent ev;
      ev.kind = ScenarioEvent::Kind::kPrimaryFailover;
      ev.at = static_cast<SimTime>(5 + rng.below(40)) * kMinute;
      cfg.events.push_back(ev);
    }
    // Re-sort: a stable sort of the already-sorted prefix is the
    // identity, so non-replication seeds keep their exact event order.
    std::stable_sort(cfg.events.begin(), cfg.events.end(),
                     [](const ScenarioEvent& a, const ScenarioEvent& b) { return a.at < b.at; });
  }
  return cfg;
}

ScenarioOutcome run_scenario(const ScenarioConfig& config, const RunOptions& options) {
  // Durable mode runs against a per-seed scratch directory, wiped before
  // the deployment opens it (shrink replays reuse the same path) and
  // after the run. Simulated crashes never lose the page cache, so the
  // fuzzer skips real fsyncs to keep a batch of hundreds of seeds cheap.
  core::DeploymentConfig dcfg = config.deployment;
  std::filesystem::path store_dir;
  if (config.use_store) {
    store_dir = std::filesystem::temp_directory_path() /
                ("btcfast-fuzz-store-" + std::to_string(config.seed) + "-" +
                 std::to_string(static_cast<unsigned long>(::getpid())));
    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);
    dcfg.store_dir = store_dir.string();
    dcfg.store_options.policy = store::FsyncPolicy::kNone;
  }
  core::Deployment dep(dcfg);
  InvariantChecker checker(dep, options.mutate_invariant);
  dep.network().set_observer([&checker](const sim::NetEvent&) { checker.check("net-event"); });

  // Gateway-backed mode: every fast-pay goes over the wire protocol and
  // through the serving pipeline + reservation ledger, and the decision
  // comes back out of the decoded response frame — so the invariant
  // harness validates the concurrent path's plumbing end to end. The
  // simulator stays single-threaded, hence lazy escrow fetching is safe.
  std::shared_ptr<gateway::Gateway> gw;
  if (config.use_gateway) {
    gateway::GatewayConfig gwcfg;
    gwcfg.lazy_escrow_fetch = true;
    gwcfg.shards = config.gateway_shards == 0 ? 1 : config.gateway_shards;
    gw = std::make_shared<gateway::Gateway>(dep.merchant(), common::ThreadPool::global(), gwcfg);
    if (dep.store() != nullptr) gw->attach_store(dep.store());
    dep.set_accept_route(
        [gw](const core::FastPayPackage& pkg, const core::Invoice& invoice, std::uint64_t now_ms)
            -> std::pair<core::AcceptDecision, std::vector<psc::PscTx>> {
          gw->register_invoice(invoice);
          gw->reconcile(now_ms);  // sync ledger with contract + merchant book
          gateway::SubmitFastPayRequest req;
          req.invoice_id = invoice.invoice_id;
          req.package = pkg;
          const Bytes frame = gateway::make_frame(gateway::MsgType::kSubmitFastPay,
                                                  invoice.invoice_id, req.serialize());
          const Bytes resp_bytes = gw->serve(frame, now_ms);
          core::AcceptDecision decision;
          decision.accepted = false;
          decision.reason = "gateway: malformed response";
          decision.code = core::RejectReason::kMalformedFrame;
          if (const auto resp = gateway::Frame::deserialize(resp_bytes);
              resp && resp->type == gateway::MsgType::kFastPayResult) {
            if (const auto body = gateway::FastPayResultResponse::deserialize(resp->payload)) {
              decision.accepted = body->accepted;
              decision.reason = body->reason;
              decision.code = body->code;
            }
          }
          std::vector<psc::PscTx> txs;
          if (decision.accepted) txs = gw->flush_accepted();
          return {decision, txs};
        });
  }

  // Replication mode: stand up the follower fleet in per-seed scratch
  // directories and wire the group in as the gateway's commit gate —
  // every accept now waits on the configured quorum, and failover events
  // can depose the primary mid-run.
  ReplicationRig rig;
  std::vector<std::string> replica_dirs;
  if (gw != nullptr && dep.store() != nullptr && config.replication_followers > 0) {
    replication::ReplicationConfig rcfg;
    rcfg.quorum = config.replication_quorum;
    rig.group = std::make_unique<replication::ReplicationGroup>(rcfg);
    for (std::size_t i = 0; i < config.replication_followers; ++i) {
      const std::string dir = store_dir.string() + "-replica" + std::to_string(i);
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      replication::Follower::Options fopts;
      fopts.store.policy = store::FsyncPolicy::kNone;
      auto follower = replication::Follower::open(dir, fopts);
      auto link = std::make_unique<replication::LocalFollowerLink>(follower.get());
      rig.group->add_follower(link.get());
      rig.followers.push_back(std::move(follower));
      rig.links.push_back(std::move(link));
      rig.dirs.push_back(dir);
      replica_dirs.push_back(dir);
    }
    rig.group->attach_primary(dep.store());
    gw->attach_commit_gate(rig.group.get());
  }

  // Epoch-based loss needs the anti-entropy recovery path even when the
  // initial rate was 0 (the deployment only arms it for lossy configs).
  // Decided from the full schedule, not the mask, so shrinking never
  // changes the sync topology.
  const bool has_fault_epochs =
      std::any_of(config.events.begin(), config.events.end(), [](const ScenarioEvent& ev) {
        return ev.kind == ScenarioEvent::Kind::kSetLossRate ||
               ev.kind == ScenarioEvent::Kind::kSetDupRate;
      });
  if (has_fault_epochs && config.deployment.net.loss_rate <= 0) {
    dep.network().enable_sync(30 * kSecond);
  }

  ScenarioOutcome out;
  bool watchtower_was_down = false;
  for (std::size_t i = 0; i < config.events.size(); ++i) {
    if (options.event_mask != nullptr && !(*options.event_mask)[i]) continue;
    const auto& ev = config.events[i];
    if (ev.at > dep.simulator().now()) dep.run_for(ev.at - dep.simulator().now());
    if (checker.violation()) break;
    apply_event(dep, gw.get(), rig, ev, out, watchtower_was_down);
    checker.check("after-event");
    if (checker.violation()) break;
  }
  if (!checker.violation() && config.horizon > dep.simulator().now()) {
    dep.run_for(config.horizon - dep.simulator().now());
  }
  checker.final_check();

  const auto summary = dep.summarize();
  out.settled = summary.payments_settled;
  out.disputes_opened = summary.disputes_opened;
  out.judged_for_merchant = summary.judged_for_merchant;
  out.judged_for_customer = summary.judged_for_customer;
  out.net_drops = dep.network().drops();
  out.net_duplicates = dep.network().duplicates();
  out.merchant_max_reorg = dep.merchant_node().chain().max_reorg_depth();
  if (const auto* attacker = dep.attacker(); attacker != nullptr && attacker->outcome()) {
    out.attack_released = attacker->outcome()->attack_released;
    out.attacker_secret_blocks = attacker->outcome()->secret_blocks;
  }
  out.beyond_security_bound = checker.beyond_security_bound();
  out.invariant_checks = checker.checks_run();
  out.violation = checker.violation();
  if (!out.violation && out.store_recovered && !out.store_recovery_exact) {
    Violation v;
    v.invariant = "store-recovery-exact";
    v.detail = "post-crash recovery image differs from the pre-crash durable state";
    v.at = dep.simulator().now();
    v.check_index = checker.checks_run();
    out.violation = v;
  }
  if (!out.violation && !out.failover_ok) {
    Violation v;
    v.invariant = "replication-promotion-exact";
    v.detail = "promoting the best follower failed to produce a working store";
    v.at = dep.simulator().now();
    v.check_index = checker.checks_run();
    out.violation = v;
  }
  if (!out.violation && !out.failover_covered) {
    Violation v;
    v.invariant = "replication-acked-lost";
    v.detail = "promoted follower's durable position is below a quorum-acked sequence";
    v.at = dep.simulator().now();
    v.check_index = checker.checks_run();
    out.violation = v;
  }
  if (rig.group != nullptr) {
    // The tap closure captures the shipper; unhook it before the store
    // (inside dep) outlives the rig locals.
    if (gw != nullptr) gw->attach_commit_gate(nullptr);
    rig.group->detach_primary();
  }
  for (const auto& dir : replica_dirs) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  if (!store_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);
  }
  return out;
}

std::optional<FuzzReport> fuzz_one_seed(std::uint64_t seed, const std::string& mutate) {
  const ScenarioConfig config = sample_scenario(seed);
  RunOptions options;
  options.mutate_invariant = mutate;
  const ScenarioOutcome outcome = run_scenario(config, options);
  if (!outcome.violation) return std::nullopt;

  // Greedy delta-debugging: drop each event in turn and keep the drop
  // when the same invariant still fails. Linear, deterministic, and good
  // enough to cut schedules to the few events that matter.
  std::vector<bool> mask(config.events.size(), true);
  const std::string& invariant = outcome.violation->invariant;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = false;
    RunOptions trial_options;
    trial_options.event_mask = &mask;
    trial_options.mutate_invariant = mutate;
    const ScenarioOutcome trial = run_scenario(config, trial_options);
    if (!trial.violation || trial.violation->invariant != invariant) mask[i] = true;
  }

  FuzzReport report;
  report.seed = seed;
  report.mutate = mutate;
  report.violation = *outcome.violation;
  report.config_line = config.summary();
  for (std::size_t i = 0; i < config.events.size(); ++i) {
    if (mask[i]) report.trace.push_back(config.events[i].describe());
  }
  report.repro_line = "fuzz_scenario_test --replay " + std::to_string(seed) +
                      (mutate.empty() ? std::string{} : " --mutate " + mutate);
  return report;
}

std::string format_report(const FuzzReport& report) {
  std::ostringstream os;
  os << "INVARIANT VIOLATION: " << report.violation.invariant << "\n"
     << "  detail: " << report.violation.detail << "\n"
     << "  sim time: " << fmt_minutes(report.violation.at) << " (check #"
     << report.violation.check_index << ")\n"
     << "  config: " << report.config_line << "\n"
     << "  repro:  " << report.repro_line << "\n"
     << "  minimized trace (" << report.trace.size() << " events):\n";
  for (const auto& line : report.trace) os << "    " << line << "\n";
  return os.str();
}

bool write_report(const FuzzReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << format_report(report);
  return static_cast<bool>(out);
}

}  // namespace btcfast::testkit
