// Randomized adversarial scenario fuzzer: samples a full deployment
// configuration plus a timed event schedule (payments, double-spend
// races, node isolation, message loss/duplication epochs, crash-restart
// of watchtower/relayer/customer) from a single deterministic seed,
// runs it against the live stack, and evaluates the protocol invariants
// after every event. On a violation it greedily shrinks the schedule
// and emits a one-line seed repro — `fuzz_scenario_test --replay <seed>`
// replays the identical run on any platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "testkit/invariants.h"

namespace btcfast::testkit {

/// One externally injected event in a scenario schedule.
struct ScenarioEvent {
  enum class Kind {
    kFastPay,           ///< customer pays `amount` sat (starts the race if adversarial)
    kIsolateNode,       ///< eclipse abstract node index `node`
    kReleaseNode,       ///< release it
    kWatchtowerCrash,
    kWatchtowerRestart,
    kRelayerCrash,
    kRelayerRestart,
    kCustomerCrash,     ///< customer stops defending its disputes
    kCustomerRestart,
    kSetLossRate,       ///< failure-injection epoch boundary
    kSetDupRate,
    kReplicaCrash,      ///< follower `node` becomes unreachable (process killed)
    kReplicaRestart,    ///< follower `node` reopened from its own disk state
    kPrimaryFailover,   ///< depose the primary store, promote the best follower
  };
  Kind kind = Kind::kFastPay;
  SimTime at = 0;
  int node = -1;          ///< abstract index: [0,miners) then customer, merchant
  double rate = 0.0;      ///< loss/dup probability for kSet* events
  btc::Amount amount = 0; ///< satoshis for kFastPay

  [[nodiscard]] std::string describe() const;
};

/// Everything a run needs, derived purely from the seed.
struct ScenarioConfig {
  std::uint64_t seed = 0;
  core::DeploymentConfig deployment;
  std::vector<ScenarioEvent> events;  ///< sorted by `at`
  SimTime horizon = 0;                ///< run until here after the last event
  /// Route fast-pays through the gateway serving layer (wire encode ->
  /// pipeline -> reservation ledger -> commit) instead of calling the
  /// merchant directly, so the invariants also exercise that path.
  bool use_gateway = false;
  /// Back the run with a DurableStore in a scratch directory: every
  /// reservation/accept/dispute is WAL-logged, and watchtower restart
  /// events genuinely wipe in-memory state and recover from disk. A
  /// non-byte-exact recovery is reported as a violation.
  bool use_store = false;
  /// Escrow-affinity shard count for the gateway pipeline (sampled from
  /// {1, 2, 4, 8}); decisions must be identical for every value, so any
  /// seed doubles as a sharding-parity check.
  std::size_t gateway_shards = 1;
  /// WAL-shipping followers behind the store-backed gateway (0 =
  /// replication off). Sampled only for store+gateway runs; a
  /// ReplicationGroup gates every accept on the quorum below, and
  /// kReplicaCrash/kPrimaryFailover events exercise the failover path.
  std::size_t replication_followers = 0;
  /// Follower acks required before an accept is durable (≤ followers).
  std::size_t replication_quorum = 0;

  /// One-line summary for repro reports and logs.
  [[nodiscard]] std::string summary() const;
};

/// Sample a scenario from a seed. Identical seeds produce identical
/// configs and — because every RNG in the stack is seeded from them —
/// identical runs, on every platform.
[[nodiscard]] ScenarioConfig sample_scenario(std::uint64_t seed);

/// What one run did; `violation` is set iff an invariant failed.
struct ScenarioOutcome {
  std::size_t payments_attempted = 0;
  std::size_t payments_accepted = 0;
  std::size_t settled = 0;
  std::size_t disputes_opened = 0;
  std::size_t judged_for_merchant = 0;
  std::size_t judged_for_customer = 0;
  std::uint64_t net_drops = 0;
  std::uint64_t net_duplicates = 0;
  std::uint32_t merchant_max_reorg = 0;
  bool attack_released = false;
  std::uint32_t attacker_secret_blocks = 0;
  bool watchtower_cycled = false;  ///< crashed and later restarted
  bool store_recovered = false;       ///< at least one restart went through disk recovery
  bool store_recovery_exact = true;   ///< every recovery was byte-identical to pre-crash
  std::size_t failovers = 0;          ///< primary promotions performed
  bool failover_ok = true;            ///< every promotion produced a working store
  bool failover_covered = true;       ///< promoted seq ≥ every quorum-acked seq
  bool beyond_security_bound = false;
  std::uint64_t invariant_checks = 0;
  std::optional<Violation> violation;
};

struct RunOptions {
  /// When set, events whose index is false are skipped (the shrinker's
  /// delta-debugging handle). Must match config.events.size().
  const std::vector<bool>* event_mask = nullptr;
  /// Name of one invariant to negate (mutation testing). Empty = none.
  std::string mutate_invariant;
};

/// Execute a scenario: build the deployment, hook the invariant checker
/// onto the network observer, apply the schedule, run out the horizon,
/// run the final checks.
ScenarioOutcome run_scenario(const ScenarioConfig& config, const RunOptions& options = {});

/// A triaged violation: seed repro plus the minimized event trace.
struct FuzzReport {
  std::uint64_t seed = 0;
  std::string mutate;
  Violation violation;
  std::string config_line;
  std::vector<std::string> trace;  ///< events that survived shrinking
  std::string repro_line;          ///< paste-able reproduction command
};

/// Run one seed end to end; on violation, shrink the event schedule
/// (greedy single-event removal, keeping the same invariant failing)
/// and return the report. std::nullopt = the seed passed.
[[nodiscard]] std::optional<FuzzReport> fuzz_one_seed(std::uint64_t seed,
                                                      const std::string& mutate = {});

/// Render a report as the text block the harness prints and dumps.
[[nodiscard]] std::string format_report(const FuzzReport& report);

/// Write the rendered report to `path`; returns false on I/O failure.
bool write_report(const FuzzReport& report, const std::string& path);

}  // namespace btcfast::testkit
