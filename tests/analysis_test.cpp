// Tests for the security/economics analysis: closed forms against known
// values (Nakamoto's whitepaper table), Monte-Carlo cross-validation of
// Rosenfeld's formula against the race simulator, and the fee models.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/attack_cost.h"
#include "analysis/collateral.h"
#include "analysis/doublespend.h"
#include "analysis/economics.h"
#include "btcsim/race.h"

namespace btcfast::analysis {
namespace {

TEST(Nakamoto, WhitepaperTableQ10) {
  // Satoshi's table for q = 0.1 (whitepaper §11).
  EXPECT_NEAR(nakamoto_probability(0.1, 0), 1.0, 1e-7);
  EXPECT_NEAR(nakamoto_probability(0.1, 1), 0.2045873, 1e-6);
  EXPECT_NEAR(nakamoto_probability(0.1, 2), 0.0509779, 1e-6);
  EXPECT_NEAR(nakamoto_probability(0.1, 3), 0.0131722, 1e-6);
  EXPECT_NEAR(nakamoto_probability(0.1, 4), 0.0034552, 1e-6);
  EXPECT_NEAR(nakamoto_probability(0.1, 5), 0.0009137, 1e-6);
  EXPECT_NEAR(nakamoto_probability(0.1, 6), 0.0002428, 1e-6);
  EXPECT_NEAR(nakamoto_probability(0.1, 10), 0.0000012, 1e-7);
}

TEST(Nakamoto, WhitepaperTableQ30) {
  // Satoshi's table for q = 0.3.
  EXPECT_NEAR(nakamoto_probability(0.3, 5), 0.1773523, 1e-6);
  EXPECT_NEAR(nakamoto_probability(0.3, 10), 0.0416605, 1e-6);
  EXPECT_NEAR(nakamoto_probability(0.3, 15), 0.0101008, 1e-6);
  EXPECT_NEAR(nakamoto_probability(0.3, 20), 0.0024804, 1e-6);
}

TEST(Nakamoto, MajorityAlwaysWins) {
  EXPECT_EQ(nakamoto_probability(0.5, 6), 1.0);
  EXPECT_EQ(nakamoto_probability(0.7, 100), 1.0);
}

/// Independent evaluation of the race by dynamic programming over states
/// (honest, attacker): phase 1 runs until honest == z, then the gambler's
///-ruin closed form finishes the catch-up. Any attacker already more
/// than z ahead is a certain winner.
double race_probability_dp(double q, std::uint32_t z) {
  const double p = 1.0 - q;
  auto terminal = [&](std::uint32_t a) {
    if (a > z) return 1.0;
    return std::pow(q / p, static_cast<double>(z - a + 1));
  };
  // P(h, a) for h in [0, z), a in [0, z+1] (a == z+1 is absorbing-win).
  // Iterate h downward; at h == z use terminal().
  std::vector<double> next(z + 2);
  for (std::uint32_t a = 0; a <= z + 1; ++a) next[a] = terminal(a);
  for (std::int64_t h = static_cast<std::int64_t>(z) - 1; h >= 0; --h) {
    std::vector<double> cur(z + 2);
    cur[z + 1] = 1.0;
    for (std::int64_t a = z; a >= 0; --a) {
      cur[a] = q * cur[a + 1] + p * next[a];
    }
    next = std::move(cur);
  }
  return next[0];
}

TEST(Rosenfeld, MatchesDynamicProgramming) {
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.45}) {
    for (std::uint32_t z : {1u, 2u, 4u, 6u, 10u}) {
      EXPECT_NEAR(rosenfeld_probability(q, z), race_probability_dp(q, z), 1e-9)
          << "q=" << q << " z=" << z;
    }
  }
}

TEST(Rosenfeld, SpotValues) {
  // Hand-derived for q=0.1, z=1 (see race_probability_dp walk-through):
  // P = q*(q + q) + p*(q/p)^2 = 0.02 + 0.9/81 = 0.0311..
  EXPECT_NEAR(rosenfeld_probability(0.1, 1), 0.1 * 0.2 + 0.9 / 81.0, 1e-12);
}

TEST(Rosenfeld, ZeroConfIsOddsRatio) {
  EXPECT_NEAR(rosenfeld_probability(0.2, 0), 0.25, 1e-9);  // q/p
  EXPECT_NEAR(rosenfeld_probability(0.4, 0), 0.4 / 0.6, 1e-9);
}

TEST(Rosenfeld, MonotoneInZ) {
  for (double q : {0.05, 0.15, 0.3, 0.45}) {
    double prev = 1.1;
    for (std::uint32_t z = 0; z <= 12; ++z) {
      const double prob = rosenfeld_probability(q, z);
      EXPECT_LT(prob, prev) << "q=" << q << " z=" << z;
      prev = prob;
    }
  }
}

TEST(Rosenfeld, MonotoneInQ) {
  for (std::uint32_t z : {1u, 3u, 6u}) {
    double prev = -1;
    for (double q = 0.02; q < 0.5; q += 0.04) {
      const double prob = rosenfeld_probability(q, z);
      EXPECT_GT(prob, prev) << "q=" << q << " z=" << z;
      prev = prob;
    }
  }
}

TEST(Rosenfeld, TighterThanNakamotoAtLowZ) {
  // Rosenfeld's exact analysis yields lower success probability than the
  // Poisson approximation for small z (the approximation is conservative).
  for (double q : {0.1, 0.2}) {
    EXPECT_LT(rosenfeld_probability(q, 1), nakamoto_probability(q, 1));
  }
}

// E3's core claim: the closed form matches simulation. Cross-validate
// Rosenfeld against the Bernoulli race Monte Carlo at several (q, z).
class RosenfeldVsMonteCarlo
    : public ::testing::TestWithParam<std::pair<double, std::uint32_t>> {};

TEST_P(RosenfeldVsMonteCarlo, Agrees) {
  const auto [q, z] = GetParam();
  sim::RaceConfig cfg;
  cfg.q = q;
  cfg.z = z;
  cfg.give_up_deficit = 200;  // effectively "never give up"
  const auto mc = sim::estimate_double_spend_probability(
      cfg, /*trials=*/200'000, /*seed=*/q * 1000 + z);
  const double closed = rosenfeld_probability(q, z);
  EXPECT_NEAR(mc.success_rate, closed, 4 * mc.stderr_ + 1e-4)
      << "q=" << q << " z=" << z << " mc=" << mc.success_rate << " closed=" << closed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RosenfeldVsMonteCarlo,
    ::testing::Values(std::make_pair(0.1, 0u), std::make_pair(0.1, 1u),
                      std::make_pair(0.1, 2u), std::make_pair(0.1, 6u),
                      std::make_pair(0.2, 1u), std::make_pair(0.2, 4u),
                      std::make_pair(0.3, 2u), std::make_pair(0.3, 6u),
                      std::make_pair(0.45, 3u)));

TEST(ConfirmationsForRisk, MatchesTables) {
  // q = 0.1: 6 confirmations push the risk below 0.1%.
  EXPECT_LE(confirmations_for_risk(0.1, 0.001), 6u);
  // Stronger attackers need more confirmations.
  EXPECT_GT(confirmations_for_risk(0.3, 0.001), confirmations_for_risk(0.1, 0.001));
  // Majority attacker: unreachable.
  EXPECT_EQ(confirmations_for_risk(0.5, 0.001, 50), 51u);
}

TEST(OptimalConfirmations, GrowsWithValue) {
  const auto small = optimal_confirmations(10.0, 0.1, 1.0);
  const auto large = optimal_confirmations(1e6, 0.1, 1.0);
  EXPECT_LT(small, large);
  // The chosen z actually satisfies the loss bound.
  EXPECT_LE(rosenfeld_probability(0.1, large) * 1e6, 1.0);
  // Zero-value payments need no confirmations at all.
  EXPECT_EQ(optimal_confirmations(0.0, 0.1, 1.0), 0u);
}

TEST(DoubleSpendTable, CoversGrid) {
  const auto rows = double_spend_table({0, 1, 2}, {0.1, 0.2});
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].q, 0.1);
  EXPECT_EQ(rows[3].q, 0.2);
  for (const auto& row : rows) {
    EXPECT_GE(row.rosenfeld, 0.0);
    EXPECT_LE(row.rosenfeld, 1.0);
  }
}

TEST(AttackCost, LinearInDepth) {
  const auto ref = MainnetReference::late2020();
  EXPECT_NEAR(forgery_cost_usd(ref, 6), 6.0 * forgery_cost_usd(ref, 1), 1e-6);
  EXPECT_GT(forgery_cost_usd(ref, 1), 100'000.0);  // six figures per block
}

TEST(AttackCost, SafeDepthGrowsWithEscrow) {
  const auto ref = MainnetReference::late2020();
  const auto k_small = safe_depth_for_escrow(ref, 10'000.0);
  const auto k_large = safe_depth_for_escrow(ref, 10'000'000.0);
  EXPECT_LE(k_small, 1u);
  EXPECT_GT(k_large, k_small);
  // The returned depth is actually safe.
  EXPECT_GT(forgery_cost_usd(ref, k_large), 10'000'000.0);
}

TEST(AttackCost, TableWellFormed) {
  const auto rows = attack_cost_table(MainnetReference::late2020(), 12);
  ASSERT_EQ(rows.size(), 12u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].forgery_cost_usd, rows[i - 1].forgery_cost_usd);
  }
}

TEST(Economics, GasToUsd) {
  const auto ref = GasReference::late2020();
  // 100k gas at 50 gwei, ETH=$400: 100000 * 50e-9 * 400 = $2.
  EXPECT_NEAR(ref.gas_to_usd(100'000), 2.0, 1e-9);
}

TEST(Economics, AmortizationVanishes) {
  const auto ref = GasReference::late2020();
  const auto few = amortize(300'000, 10, ref);
  const auto many = amortize(300'000, 10'000, ref);
  EXPECT_NEAR(few.per_payment_usd, few.setup_usd / 10, 1e-12);
  EXPECT_LT(many.per_payment_usd, 0.001);  // sub-tenth-of-a-cent
}

TEST(Economics, BtcFeeReference) {
  const auto ref = BtcFeeReference::late2020();
  // 60 sat/vB * 226 vB = 13560 sat ≈ $1.76 at $13k.
  EXPECT_NEAR(ref.tx_fee_usd(), 1.763, 0.01);
}

TEST(Collateral, ScalesWithRateAndWindow) {
  const auto slow = size_collateral(1'000'000, 1.0, 6);
  const auto fast = size_collateral(1'000'000, 30.0, 6);
  EXPECT_EQ(slow.required_collateral, 1'000'000u);
  EXPECT_EQ(fast.required_collateral, 30'000'000u);
  const auto quick_settle = size_collateral(1'000'000, 30.0, 1);
  EXPECT_LT(quick_settle.required_collateral, fast.required_collateral);
}

TEST(Collateral, MinimumOnePayment) {
  const auto plan = size_collateral(500, 0.01, 1);
  EXPECT_EQ(plan.required_collateral, 500u);
}

}  // namespace
}  // namespace btcfast::analysis
