// Tests for the baseline schemes BTCFast is compared against.
#include <gtest/gtest.h>

#include "baselines/acceptance_policy.h"
#include "baselines/central_escrow.h"
#include "baselines/channel.h"
#include "btc/chain.h"
#include "btc/pow.h"

namespace btcfast::baselines {
namespace {

TEST(KConfPolicy, WaitScalesWithK) {
  EXPECT_EQ(KConfPolicy{0}.expected_wait_s(), 0.0);
  EXPECT_EQ(KConfPolicy{6}.expected_wait_s(), 3600.0);
  EXPECT_EQ(KConfPolicy{6}.expected_wait_s(300.0), 1800.0);
}

TEST(KConfPolicy, RiskDropsWithK) {
  const double r0 = KConfPolicy{0}.double_spend_risk(0.1);
  const double r6 = KConfPolicy{6}.double_spend_risk(0.1);
  EXPECT_GT(r0, 0.1);
  EXPECT_LT(r6, 2e-4);
}

TEST(KConfPolicy, Names) {
  EXPECT_EQ(KConfPolicy{0}.name(), "zero-conf");
  EXPECT_EQ(KConfPolicy{6}.name(), "6-conf");
}

struct ChannelFixture : ::testing::Test {
  ChannelFixture()
      : params(btc::ChainParams::regtest()),
        chain(params),
        customer(sim::Party::make(1)),
        merchant(sim::Party::make(2)) {
    for (const auto& b : sim::build_funding_chain(params, {customer.script}, 1)) {
      EXPECT_EQ(chain.submit_block(b), btc::SubmitResult::kActiveTip);
    }
    const auto coins = sim::find_spendable(chain, customer.script);
    EXPECT_FALSE(coins.empty());
    coin_op = coins.front().first;
    coin_value = coins.front().second.out.value;
  }

  btc::ChainParams params;
  btc::Chain chain;
  sim::Party customer;
  sim::Party merchant;
  btc::OutPoint coin_op;
  btc::Amount coin_value = 0;
};

TEST_F(ChannelFixture, OpenPayClose) {
  PaymentChannel ch(customer, merchant, coin_op, coin_value, 20 * btc::kCoin, 6);

  // Not usable until the funding tx confirms deep enough.
  EXPECT_FALSE(ch.is_usable(0));
  EXPECT_TRUE(ch.is_usable(6));

  // Three incremental payments.
  auto s1 = ch.pay(3 * btc::kCoin);
  ASSERT_TRUE(s1.has_value());
  EXPECT_TRUE(ch.accept(*s1));
  auto s2 = ch.pay(2 * btc::kCoin);
  ASSERT_TRUE(s2.has_value());
  EXPECT_TRUE(ch.accept(*s2));
  EXPECT_EQ(ch.paid_total(), 5 * btc::kCoin);
  EXPECT_EQ(ch.remaining(), 15 * btc::kCoin);

  // Close splits capacity per the latest state.
  const btc::Transaction close = ch.close();
  btc::Amount to_merchant = 0;
  for (const auto& out : close.outputs) {
    if (out.script_pubkey == merchant.script) to_merchant += out.value;
  }
  EXPECT_EQ(to_merchant, 5 * btc::kCoin);
}

TEST_F(ChannelFixture, RejectsOverCapacity) {
  PaymentChannel ch(customer, merchant, coin_op, coin_value, 5 * btc::kCoin, 6);
  EXPECT_TRUE(ch.pay(4 * btc::kCoin).has_value());
  EXPECT_FALSE(ch.pay(2 * btc::kCoin).has_value());
}

TEST_F(ChannelFixture, RejectsStaleAndTamperedStates) {
  PaymentChannel ch(customer, merchant, coin_op, coin_value, 10 * btc::kCoin, 6);
  auto s1 = ch.pay(2 * btc::kCoin);
  auto s2 = ch.pay(2 * btc::kCoin);
  ASSERT_TRUE(s1 && s2);
  ASSERT_TRUE(ch.accept(*s2));
  // Stale state (lower sequence/paid) refused.
  EXPECT_FALSE(ch.accept(*s1));
  // Tampered amount refused.
  auto forged = *s2;
  forged.sequence += 1;
  forged.paid += btc::kCoin;
  EXPECT_FALSE(ch.verify(forged));
}

TEST_F(ChannelFixture, FundingTxIsValidOnChain) {
  PaymentChannel ch(customer, merchant, coin_op, coin_value, 10 * btc::kCoin, 6);
  // The funding tx spends a real coin and verifies.
  EXPECT_TRUE(btc::verify_input(ch.funding_tx(), 0, customer.script));
}

TEST(CentralEscrow, InstantPaymentsUntilItAbsconds) {
  CentralEscrow custodian;
  const auto acct = custodian.open_account(10'000);
  EXPECT_TRUE(custodian.pay(acct, 4'000));
  EXPECT_EQ(custodian.balance(acct), 6'000);
  EXPECT_EQ(custodian.merchant_receivable(), 4'000);

  custodian.abscond();  // the trust failure BTCFast removes
  EXPECT_EQ(custodian.balance(acct), 0);
  EXPECT_EQ(custodian.merchant_receivable(), 0);
  EXPECT_FALSE(custodian.pay(acct, 1));
}

TEST(CentralEscrow, FreezeCensorsPayments) {
  CentralEscrow custodian;
  const auto acct = custodian.open_account(10'000);
  custodian.freeze();
  EXPECT_FALSE(custodian.pay(acct, 1));
  EXPECT_EQ(custodian.balance(acct), 10'000);  // funds intact, just censored
}

TEST(CentralEscrow, OverdraftRefused) {
  CentralEscrow custodian;
  const auto acct = custodian.open_account(100);
  EXPECT_FALSE(custodian.pay(acct, 101));
}

}  // namespace
}  // namespace btcfast::baselines
