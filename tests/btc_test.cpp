// Unit tests for the Bitcoin substrate: transactions, script, headers,
// PoW, blocks, UTXO, mempool conflict rules, chain reorgs and SPV proofs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "btc/chain.h"
#include "btc/mempool.h"
#include "btc/pow.h"
#include "btc/script.h"
#include "btc/spv.h"
#include "btc/transaction.h"
#include "common/rng.h"

namespace btcfast::btc {
namespace {

using crypto::PrivateKey;
using crypto::PublicKey;
using crypto::U256;

struct Wallet {
  PrivateKey key;
  PublicKey pub;
  ScriptPubKey script;

  static Wallet make(std::uint64_t seed) {
    auto key = PrivateKey::from_scalar(U256(seed));
    auto pub = PublicKey::derive(*key);
    return Wallet{*key, pub, ScriptPubKey{PubKeyHash::of(pub)}};
  }
};

/// Mines a block paying the coinbase to `dest` on top of `chain`'s tip.
Block make_block(const Chain& chain, const ScriptPubKey& dest,
                 std::vector<Transaction> txs = {}) {
  Block b;
  b.header.version = 1;
  b.header.prev_hash = chain.tip_hash();
  b.header.time = chain.tip_header().time + 600;
  b.header.bits = chain.params().genesis_bits;

  Transaction cb;
  TxIn in;
  in.prevout.index = 0xffffffff;
  // Salt the coinbase with the height so txids differ between chains.
  in.sequence = chain.height() + 1;
  cb.inputs.push_back(in);
  cb.outputs.push_back(TxOut{chain.params().subsidy, dest});
  b.txs.push_back(cb);
  for (auto& tx : txs) b.txs.push_back(std::move(tx));
  EXPECT_TRUE(mine_block(b, chain.params()));
  return b;
}

/// Extends the chain with `n` blocks to `dest`; returns the mined blocks.
std::vector<Block> mine_n(Chain& chain, const ScriptPubKey& dest, int n) {
  std::vector<Block> out;
  for (int i = 0; i < n; ++i) {
    Block b = make_block(chain, dest);
    EXPECT_EQ(chain.submit_block(b), SubmitResult::kActiveTip);
    out.push_back(std::move(b));
  }
  return out;
}

TEST(Script, AddressRoundTrip) {
  const Wallet w = Wallet::make(99);
  const std::string addr = encode_address(w.script.dest);
  const auto decoded = decode_address(addr);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, w.script.dest);
}

TEST(Script, AddressRejectsCorruption) {
  const Wallet w = Wallet::make(99);
  std::string addr = encode_address(w.script.dest);
  addr[8] = addr[8] == '2' ? '3' : '2';
  EXPECT_FALSE(decode_address(addr).has_value());
}

TEST(Transaction, SerializeRoundTrip) {
  const Wallet w = Wallet::make(5);
  Transaction tx;
  TxIn in;
  in.prevout.txid.bytes[0] = 0xaa;
  in.prevout.index = 3;
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{12345, w.script});
  tx.lock_time = 7;

  const Bytes ser = tx.serialize();
  const auto back = Transaction::deserialize(ser);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tx);
}

TEST(Transaction, SignedSerializeRoundTrip) {
  const Wallet w = Wallet::make(5);
  Transaction tx;
  TxIn in;
  in.prevout.txid.bytes[0] = 0xaa;
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{12345, w.script});
  sign_input(tx, 0, w.key, w.script);

  const auto back = Transaction::deserialize(tx.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tx);
  EXPECT_TRUE(verify_input(*back, 0, w.script));
}

TEST(Transaction, TxidChangesWithContent) {
  const Wallet w = Wallet::make(5);
  Transaction tx;
  TxIn in;
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{1000, w.script});
  const Txid id1 = tx.txid();
  tx.outputs[0].value = 1001;
  EXPECT_NE(tx.txid(), id1);
}

TEST(Transaction, SignatureCoversOutputs) {
  const Wallet w = Wallet::make(5);
  Transaction tx;
  TxIn in;
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{1000, w.script});
  sign_input(tx, 0, w.key, w.script);
  ASSERT_TRUE(verify_input(tx, 0, w.script));
  // Tampering with the output invalidates the signature.
  tx.outputs[0].value = 999;
  EXPECT_FALSE(verify_input(tx, 0, w.script));
}

TEST(Transaction, WrongKeyCannotSpend) {
  const Wallet owner = Wallet::make(5);
  const Wallet thief = Wallet::make(6);
  Transaction tx;
  tx.inputs.push_back(TxIn{});
  tx.outputs.push_back(TxOut{1000, thief.script});
  sign_input(tx, 0, thief.key, owner.script);
  EXPECT_FALSE(verify_input(tx, 0, owner.script));
}

TEST(Transaction, CoinbaseDetection) {
  Transaction cb = genesis_coinbase();
  EXPECT_TRUE(cb.is_coinbase());
  cb.inputs[0].prevout.index = 0;
  EXPECT_FALSE(cb.is_coinbase());
}

TEST(Header, SerializeIs80Bytes) {
  BlockHeader h;
  EXPECT_EQ(h.serialize().size(), 80u);
}

TEST(Header, SerializeRoundTrip) {
  BlockHeader h;
  h.version = 2;
  h.prev_hash.bytes[5] = 0xcd;
  h.merkle_root.bytes[31] = 0x11;
  h.time = 1234567;
  h.bits = 0x207fffff;
  h.nonce = 42;
  const auto back = BlockHeader::deserialize(h.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(Header, BitsTargetRoundTrip) {
  // Mainnet genesis bits.
  const auto target = bits_to_target(0x1d00ffff);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->to_hex(),
            "00000000ffff0000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(target_to_bits(*target), 0x1d00ffffu);
}

TEST(Header, BitsRejectsNegative) {
  EXPECT_FALSE(bits_to_target(0x1d800000).has_value());
}

TEST(Header, BitsRejectsZeroMantissa) {
  EXPECT_FALSE(bits_to_target(0x1d000000).has_value());
}

TEST(Header, WorkIsInverseOfTarget) {
  // Halving the target doubles the work (within integer truncation).
  const ChainParams params = ChainParams::regtest();
  const auto t1 = params.pow_limit;
  const auto t2 = t1 >> 1;
  const auto w1 = header_work(target_to_bits(t1));
  const auto w2 = header_work(target_to_bits(t2));
  EXPECT_GE(w2, w1 + w1 - U256(2));
  EXPECT_LE(w2, w1 + w1 + U256(2));
}

TEST(Header, MainnetWorkValue) {
  // For bits 0x1d00ffff, work = 2^256 / (target+1) = 0x100010001... ≈ 2^32.
  const auto work = header_work(0x1d00ffff);
  EXPECT_EQ(work.to_hex(),
            "0000000000000000000000000000000000000000000000000000000100010001");
}

TEST(Pow, MineAndCheck) {
  const ChainParams params = ChainParams::regtest();
  BlockHeader h;
  h.bits = params.genesis_bits;
  ASSERT_TRUE(mine_header(h, params.pow_limit));
  EXPECT_TRUE(check_proof_of_work(h, params.pow_limit));
}

TEST(Pow, RejectsInsufficientWork) {
  const ChainParams params = ChainParams::regtest();
  BlockHeader h;
  h.bits = params.genesis_bits;
  ASSERT_TRUE(mine_header(h, params.pow_limit));
  // A stricter limit (lower) must reject the same header's bits.
  EXPECT_FALSE(check_proof_of_work(h, params.pow_limit >> 8));
}

TEST(Pow, NonceActuallyMatters) {
  const ChainParams params = ChainParams::regtest();
  BlockHeader h;
  h.bits = params.genesis_bits;
  ASSERT_TRUE(mine_header(h, params.pow_limit));
  h.nonce += 1;
  // Overwhelmingly likely to fail after perturbing the nonce.
  EXPECT_FALSE(check_proof_of_work(h, params.pow_limit));
}

TEST(Block, StructureChecks) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  Block good = make_block(chain, miner.script);
  EXPECT_TRUE(check_block_structure(good).ok());

  Block no_cb = good;
  no_cb.txs.clear();
  EXPECT_EQ(check_block_structure(no_cb).error().code, "bad-blk-empty");

  Block bad_root = good;
  bad_root.header.merkle_root.bytes[0] ^= 1;
  EXPECT_EQ(check_block_structure(bad_root).error().code, "bad-merkle-root");

  Block dup = good;
  dup.txs.push_back(dup.txs[0]);
  // Duplicate coinbase triggers the multiple-coinbase rule first.
  EXPECT_FALSE(check_block_structure(dup).ok());
}

TEST(Utxo, AddSpendLifecycle) {
  UtxoSet utxo;
  OutPoint op;
  op.txid.bytes[0] = 1;
  utxo.add(op, Coin{TxOut{500, {}}, 3, false});
  EXPECT_TRUE(utxo.contains(op));
  const auto coin = utxo.spend(op);
  ASSERT_TRUE(coin.has_value());
  EXPECT_EQ(coin->out.value, 500);
  EXPECT_FALSE(utxo.contains(op));
  EXPECT_FALSE(utxo.spend(op).has_value());
}

TEST(Chain, GenesisState) {
  Chain chain(ChainParams::regtest());
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.stored_blocks(), 1u);
  EXPECT_EQ(chain.utxo().size(), 1u);  // genesis coinbase burn output
}

TEST(Chain, ExtendsWithMinedBlocks) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  mine_n(chain, miner.script, 3);
  EXPECT_EQ(chain.height(), 3u);
  EXPECT_EQ(chain.utxo().size(), 4u);
}

TEST(Chain, RejectsBadPow) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  Block b = make_block(chain, miner.script);
  b.header.nonce ^= 0xffffffff;  // break PoW (keep structure valid)
  std::string why;
  EXPECT_EQ(chain.submit_block(b, &why), SubmitResult::kInvalid);
  EXPECT_NE(why.find("high-hash"), std::string::npos);
}

TEST(Chain, RejectsOrphans) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  Block b = make_block(chain, miner.script);
  b.header.prev_hash.bytes[0] ^= 0x55;
  ASSERT_TRUE(mine_header(b.header, chain.params().pow_limit));
  EXPECT_EQ(chain.submit_block(b), SubmitResult::kOrphan);
}

TEST(Chain, DuplicateDetected) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  Block b = make_block(chain, miner.script);
  EXPECT_EQ(chain.submit_block(b), SubmitResult::kActiveTip);
  EXPECT_EQ(chain.submit_block(b), SubmitResult::kDuplicate);
}

TEST(Chain, SpendConfirmedCoin) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const Wallet alice = Wallet::make(2);
  const auto blocks = mine_n(chain, miner.script, 1);
  // Mature the coinbase.
  mine_n(chain, miner.script, chain.params().coinbase_maturity);

  Transaction spend;
  spend.inputs.push_back(TxIn{{blocks[0].txs[0].txid(), 0}, {}, 0xffffffff});
  spend.outputs.push_back(TxOut{chain.params().subsidy - 1000, alice.script});
  sign_input(spend, 0, miner.key, miner.script);

  Block b = make_block(chain, miner.script, {spend});
  std::string why;
  EXPECT_EQ(chain.submit_block(b, &why), SubmitResult::kActiveTip) << why;
  EXPECT_EQ(chain.confirmations(spend.txid()), 1u);
}

TEST(Chain, RejectsPrematureCoinbaseSpend) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const auto blocks = mine_n(chain, miner.script, 1);

  Transaction spend;
  spend.inputs.push_back(TxIn{{blocks[0].txs[0].txid(), 0}, {}, 0xffffffff});
  spend.outputs.push_back(TxOut{chain.params().subsidy, miner.script});
  sign_input(spend, 0, miner.key, miner.script);

  Block b = make_block(chain, miner.script, {spend});
  std::string why;
  EXPECT_EQ(chain.submit_block(b, &why), SubmitResult::kInvalid);
  EXPECT_NE(why.find("premature"), std::string::npos);
}

TEST(Chain, RejectsValueInflation) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const auto blocks = mine_n(chain, miner.script, 1);
  mine_n(chain, miner.script, chain.params().coinbase_maturity);

  Transaction spend;
  spend.inputs.push_back(TxIn{{blocks[0].txs[0].txid(), 0}, {}, 0xffffffff});
  spend.outputs.push_back(TxOut{chain.params().subsidy + 1, miner.script});
  sign_input(spend, 0, miner.key, miner.script);

  Block b = make_block(chain, miner.script, {spend});
  std::string why;
  EXPECT_EQ(chain.submit_block(b, &why), SubmitResult::kInvalid);
  EXPECT_NE(why.find("belowout"), std::string::npos);
}

TEST(Chain, SideChainThenReorg) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const Wallet rival = Wallet::make(2);

  // Main chain: 2 blocks.
  mine_n(chain, miner.script, 2);
  const BlockHash old_tip = chain.tip_hash();

  // Rival fork from genesis on a second Chain instance, 3 blocks.
  Chain fork(ChainParams::regtest());
  const auto rival_blocks = mine_n(fork, rival.script, 3);

  // Feed the rival blocks to the main chain: first two are side-chain,
  // third triggers a reorg.
  EXPECT_EQ(chain.submit_block(rival_blocks[0]), SubmitResult::kSideChain);
  EXPECT_EQ(chain.submit_block(rival_blocks[1]), SubmitResult::kSideChain);
  EXPECT_EQ(chain.submit_block(rival_blocks[2]), SubmitResult::kActiveTip);

  EXPECT_EQ(chain.height(), 3u);
  EXPECT_NE(chain.tip_hash(), old_tip);
  EXPECT_EQ(chain.tip_hash(), fork.tip_hash());
  EXPECT_FALSE(chain.is_on_active_chain(old_tip));
}

TEST(Chain, ReorgUpdatesUtxoAndTxIndex) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const Wallet rival = Wallet::make(2);

  const auto main_blocks = mine_n(chain, miner.script, 1);
  const Txid main_cb = main_blocks[0].txs[0].txid();
  EXPECT_EQ(chain.confirmations(main_cb), 1u);

  Chain fork(ChainParams::regtest());
  const auto rival_blocks = mine_n(fork, rival.script, 2);
  EXPECT_EQ(chain.submit_block(rival_blocks[0]), SubmitResult::kSideChain);
  EXPECT_EQ(chain.submit_block(rival_blocks[1]), SubmitResult::kActiveTip);

  // The displaced coinbase is no longer confirmed nor in the UTXO set.
  EXPECT_EQ(chain.confirmations(main_cb), 0u);
  EXPECT_FALSE(chain.utxo().contains({main_cb, 0}));
  EXPECT_TRUE(chain.utxo().contains({rival_blocks[0].txs[0].txid(), 0}));
}

TEST(Chain, ReorgDisconnectsNonCoinbaseTxsForMempool) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const Wallet alice = Wallet::make(2);

  const auto blocks = mine_n(chain, miner.script, 1);
  mine_n(chain, miner.script, chain.params().coinbase_maturity);

  Transaction spend;
  spend.inputs.push_back(TxIn{{blocks[0].txs[0].txid(), 0}, {}, 0xffffffff});
  spend.outputs.push_back(TxOut{chain.params().subsidy - 500, alice.script});
  sign_input(spend, 0, miner.key, miner.script);
  Block with_spend = make_block(chain, miner.script, {spend});
  ASSERT_EQ(chain.submit_block(with_spend), SubmitResult::kActiveTip);

  // Build a heavier rival branch from the parent of with_spend.
  Chain shadow(ChainParams::regtest());
  const Wallet rival = Wallet::make(3);
  // Replay the shared prefix onto the shadow chain.
  for (std::uint32_t h = 1; h <= chain.height() - 1; ++h) {
    ASSERT_EQ(shadow.submit_block(*chain.block_at_height(h)), SubmitResult::kActiveTip);
  }
  const auto rb = mine_n(shadow, rival.script, 2);
  EXPECT_EQ(chain.submit_block(rb[0]), SubmitResult::kSideChain);
  EXPECT_EQ(chain.submit_block(rb[1]), SubmitResult::kActiveTip);

  const auto disconnected = chain.take_disconnected_txs();
  ASSERT_EQ(disconnected.size(), 1u);
  EXPECT_EQ(disconnected[0].txid(), spend.txid());
}

TEST(Chain, HeaderRangeReturnsActiveHeaders) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  mine_n(chain, miner.script, 5);
  const auto headers = chain.header_range(2, 3);
  ASSERT_EQ(headers.size(), 3u);
  EXPECT_EQ(headers[0].hash(), *chain.hash_at_height(2));
  EXPECT_EQ(headers[1].prev_hash, headers[0].hash());
  EXPECT_EQ(headers[2].prev_hash, headers[1].hash());
}

TEST(Mempool, AcceptsValidSpend) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const Wallet alice = Wallet::make(2);
  const auto blocks = mine_n(chain, miner.script, 1);
  mine_n(chain, miner.script, chain.params().coinbase_maturity);

  Transaction spend;
  spend.inputs.push_back(TxIn{{blocks[0].txs[0].txid(), 0}, {}, 0xffffffff});
  spend.outputs.push_back(TxOut{chain.params().subsidy - 100, alice.script});
  sign_input(spend, 0, miner.key, miner.script);

  Mempool pool;
  EXPECT_TRUE(pool.accept(spend, chain.utxo(), chain.height(), chain.params().coinbase_maturity).ok());
  EXPECT_TRUE(pool.contains(spend.txid()));
}

TEST(Mempool, RejectsDoubleSpendConflict) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const Wallet alice = Wallet::make(2);
  const Wallet mallory = Wallet::make(3);
  const auto blocks = mine_n(chain, miner.script, 1);
  mine_n(chain, miner.script, chain.params().coinbase_maturity);

  const OutPoint coin{blocks[0].txs[0].txid(), 0};

  Transaction pay_alice;
  pay_alice.inputs.push_back(TxIn{coin, {}, 0xffffffff});
  pay_alice.outputs.push_back(TxOut{chain.params().subsidy - 100, alice.script});
  sign_input(pay_alice, 0, miner.key, miner.script);

  Transaction pay_self;
  pay_self.inputs.push_back(TxIn{coin, {}, 0xffffffff});
  pay_self.outputs.push_back(TxOut{chain.params().subsidy - 100, mallory.script});
  sign_input(pay_self, 0, miner.key, miner.script);

  Mempool pool;
  ASSERT_TRUE(pool.accept(pay_alice, chain.utxo(), chain.height(), 10).ok());
  const Status conflict = pool.accept(pay_self, chain.utxo(), chain.height(), 10);
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.error().code, "txn-mempool-conflict");
  EXPECT_EQ(pool.spender_of(coin).value(), pay_alice.txid());
}

TEST(Mempool, RejectsMissingInputsAndBadSig) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const Wallet alice = Wallet::make(2);
  mine_n(chain, miner.script, 1);

  Transaction ghost;
  TxIn in;
  in.prevout.txid.bytes[0] = 0x77;
  ghost.inputs.push_back(in);
  ghost.outputs.push_back(TxOut{100, alice.script});
  Mempool pool;
  EXPECT_EQ(pool.accept(ghost, chain.utxo(), chain.height(), 10).error().code,
            "bad-txns-inputs-missingorspent");
}

TEST(Mempool, RemoveForBlockEvictsConfirmedAndConflicts) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const Wallet alice = Wallet::make(2);
  const Wallet mallory = Wallet::make(3);
  const auto blocks = mine_n(chain, miner.script, 1);
  mine_n(chain, miner.script, chain.params().coinbase_maturity);

  const OutPoint coin{blocks[0].txs[0].txid(), 0};
  Transaction pay_alice;
  pay_alice.inputs.push_back(TxIn{coin, {}, 0xffffffff});
  pay_alice.outputs.push_back(TxOut{chain.params().subsidy - 100, alice.script});
  sign_input(pay_alice, 0, miner.key, miner.script);

  Mempool pool;
  ASSERT_TRUE(pool.accept(pay_alice, chain.utxo(), chain.height(), 10).ok());

  // A *different* tx spending the same coin confirms (the double spend).
  Transaction pay_mallory;
  pay_mallory.inputs.push_back(TxIn{coin, {}, 0xffffffff});
  pay_mallory.outputs.push_back(TxOut{chain.params().subsidy - 100, mallory.script});
  sign_input(pay_mallory, 0, miner.key, miner.script);
  Block b = make_block(chain, miner.script, {pay_mallory});

  pool.remove_for_block(b);
  EXPECT_FALSE(pool.contains(pay_alice.txid()));
  EXPECT_EQ(pool.size(), 0u);
}

TEST(Spv, InclusionProofRoundTrip) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  const Wallet alice = Wallet::make(2);
  const auto blocks = mine_n(chain, miner.script, 1);
  mine_n(chain, miner.script, chain.params().coinbase_maturity);

  Transaction spend;
  spend.inputs.push_back(TxIn{{blocks[0].txs[0].txid(), 0}, {}, 0xffffffff});
  spend.outputs.push_back(TxOut{chain.params().subsidy - 100, alice.script});
  sign_input(spend, 0, miner.key, miner.script);
  Block b = make_block(chain, miner.script, {spend});
  ASSERT_EQ(chain.submit_block(b), SubmitResult::kActiveTip);

  const auto proof = make_inclusion_proof(b, spend.txid());
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(verify_inclusion_proof(*proof));

  // Serialization round-trips.
  const auto back = TxInclusionProof::deserialize(proof->serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(verify_inclusion_proof(*back));

  // Wrong txid produces no proof.
  Txid bogus;
  bogus.bytes[0] = 0xee;
  EXPECT_FALSE(make_inclusion_proof(b, bogus).has_value());
}

TEST(Spv, InclusionProofRejectsTamper) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  Block b = make_block(chain, miner.script);
  auto proof = make_inclusion_proof(b, b.txs[0].txid());
  ASSERT_TRUE(proof.has_value());
  proof->txid.bytes[4] ^= 1;
  EXPECT_FALSE(verify_inclusion_proof(*proof));
}

TEST(Spv, HeaderChainVerifies) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  mine_n(chain, miner.script, 6);

  const auto headers = chain.header_range(1, 6);
  const auto anchor = *chain.hash_at_height(0);
  const auto summary = verify_header_chain(anchor, headers, chain.params().pow_limit);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().length, 6u);
  EXPECT_EQ(summary.value().tip_hash, chain.tip_hash());
  // Total work == 6 * per-header work at static difficulty.
  const auto unit = header_work(chain.params().genesis_bits);
  EXPECT_EQ(summary.value().total_work, unit * U256(6));
}

TEST(Spv, HeaderChainRejectsBrokenLink) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  mine_n(chain, miner.script, 4);
  auto headers = chain.header_range(1, 4);
  headers[2].prev_hash.bytes[0] ^= 1;
  const auto anchor = *chain.hash_at_height(0);
  const auto r = verify_header_chain(anchor, headers, chain.params().pow_limit);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "evidence-broken-link");
}

TEST(Spv, HeaderChainRejectsFakePow) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  mine_n(chain, miner.script, 3);
  auto headers = chain.header_range(1, 3);
  headers[1].nonce ^= 0x5555;
  // Re-link the successor so only the PoW is broken.
  headers[2].prev_hash = headers[1].hash();
  const auto anchor = *chain.hash_at_height(0);
  const auto r = verify_header_chain(anchor, headers, chain.params().pow_limit);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "evidence-bad-pow");
}

TEST(Spv, HeaderChainRejectsWrongAnchor) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  mine_n(chain, miner.script, 2);
  const auto headers = chain.header_range(1, 2);
  BlockHash wrong;
  wrong.bytes[3] = 9;
  EXPECT_EQ(verify_header_chain(wrong, headers, chain.params().pow_limit).error().code,
            "evidence-broken-link");
}

TEST(Spv, HeadersSerializeRoundTrip) {
  Chain chain(ChainParams::regtest());
  const Wallet miner = Wallet::make(1);
  mine_n(chain, miner.script, 3);
  const auto headers = chain.header_range(0, 4);
  const auto back = deserialize_headers(serialize_headers(headers));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, headers);
}

/// The memoized txid must match a from-scratch sha256d of the
/// serialization, before and after every kind of field mutation.
TEST(TxidMemo, InvalidatesOnMutation) {
  Transaction tx;
  tx.inputs.push_back(TxIn{});
  tx.outputs.push_back(TxOut{5 * kCoin, ScriptPubKey{}});

  const auto fresh_txid = [](const Transaction& t) {
    return Txid::from_digest(crypto::sha256d(t.serialize()));
  };
  EXPECT_EQ(tx.txid(), fresh_txid(tx));
  const Txid original = tx.txid();
  EXPECT_EQ(tx.txid(), original);  // memo hit, same answer

  tx.outputs[0].value += 1;  // direct field mutation, no API involved
  EXPECT_NE(tx.txid(), original);
  EXPECT_EQ(tx.txid(), fresh_txid(tx));

  tx.version = 2;
  EXPECT_EQ(tx.txid(), fresh_txid(tx));
  tx.lock_time = 99;
  EXPECT_EQ(tx.txid(), fresh_txid(tx));
  tx.inputs[0].sequence = 7;
  EXPECT_EQ(tx.txid(), fresh_txid(tx));
  tx.inputs.push_back(TxIn{});
  EXPECT_EQ(tx.txid(), fresh_txid(tx));
  tx.inputs[1].script_sig.pubkey[0] = 0x02;
  EXPECT_EQ(tx.txid(), fresh_txid(tx));
}

TEST(TxidMemo, SignInputInvalidates) {
  const Wallet w = Wallet::make(77);
  Transaction tx;
  TxIn in;
  in.prevout.txid.bytes[0] = 1;
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{kCoin, w.script});
  const Txid unsigned_id = tx.txid();
  sign_input(tx, 0, w.key, w.script);
  EXPECT_NE(tx.txid(), unsigned_id);
  EXPECT_EQ(tx.txid(), Txid::from_digest(crypto::sha256d(tx.serialize())));
}

TEST(TxidMemo, CopiesCarryAndRevalidate) {
  Transaction tx;
  tx.inputs.push_back(TxIn{});
  tx.outputs.push_back(TxOut{kCoin, ScriptPubKey{}});
  const Txid id = tx.txid();  // warm the memo

  Transaction copy = tx;  // memo travels with the copy
  EXPECT_EQ(copy.txid(), id);
  EXPECT_EQ(copy, tx);  // equality ignores memo state

  copy.outputs[0].value = 2 * kCoin;  // mutate the copy only
  EXPECT_NE(copy.txid(), id);
  EXPECT_EQ(tx.txid(), id);  // original memo unaffected
  EXPECT_NE(copy, tx);
}

TEST(TxidMemo, ConcurrentReadsAreSafe) {
  Transaction tx;
  tx.inputs.push_back(TxIn{});
  tx.outputs.push_back(TxOut{3 * kCoin, ScriptPubKey{}});
  const Txid want = Txid::from_digest(crypto::sha256d(tx.serialize()));

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (tx.txid() != want) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

/// mine_header's midstate loop must land on the same (nonce, hash) the
/// per-attempt serialize-and-stream path would find.
TEST(Pow, MidstateMiningMatchesReference) {
  const auto params = ChainParams::regtest();
  for (std::uint32_t salt = 0; salt < 3; ++salt) {
    BlockHeader h;
    h.bits = params.genesis_bits;
    h.time = salt;
    h.merkle_root.bytes[0] = static_cast<std::uint8_t>(salt + 1);
    BlockHeader reference = h;

    ASSERT_TRUE(mine_header(h, params.pow_limit));

    // Seed-style reference grind: re-serialize and stream-hash per nonce.
    const auto target = bits_to_target(reference.bits);
    ASSERT_TRUE(target.has_value());
    for (std::uint32_t nonce = 0;; ++nonce) {
      reference.nonce = nonce;
      Bytes ser = reference.serialize();
      crypto::Sha256 s;
      s.update(ser);
      const auto first = s.finalize();
      s.update({first.data(), first.size()});
      const auto digest = s.finalize();
      const auto value = crypto::U256::from_le_bytes({digest.data(), digest.size()});
      if (value <= *target) break;
      ASSERT_LT(nonce, 1u << 24) << "reference grind ran away";
    }
    EXPECT_EQ(h.nonce, reference.nonce);
    EXPECT_EQ(h.hash(), reference.hash());
    EXPECT_TRUE(check_proof_of_work(h, params.pow_limit));
  }
}

}  // namespace
}  // namespace btcfast::btc
