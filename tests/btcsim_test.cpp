// Tests for the discrete-event Bitcoin network simulator: event ordering,
// block propagation, chain convergence, mining rates, the double-spend
// race model, and the end-to-end attack experiment.
#include <gtest/gtest.h>

#include "btcsim/attacker.h"
#include "btcsim/miner.h"
#include "btcsim/network.h"
#include "btcsim/race.h"
#include "btcsim/scenario.h"

namespace btcfast::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, FifoTieBreakAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(10, chain);
  };
  sim.schedule_in(10, chain);
  sim.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run_all();
  bool fired = false;
  sim.schedule_at(10, [&] { fired = true; });  // in the past
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Network, BlockPropagatesToAllNodes) {
  Simulator sim;
  Network net(sim, btc::ChainParams::regtest(), {}, 42);
  for (int i = 0; i < 4; ++i) net.add_node();

  const Party miner = Party::make(1);
  btc::Block b = net.node(0).assemble_block(miner.script, 1);
  ASSERT_TRUE(btc::mine_block(b, net.params()));
  net.submit_block(0, b);
  sim.run_all();

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(net.node(i).chain().height(), 1u) << "node " << i;
    EXPECT_EQ(net.node(i).chain().tip_hash(), b.hash());
  }
}

TEST(Network, TxPropagatesAndEntersMempools) {
  Simulator sim;
  Network net(sim, btc::ChainParams::regtest(), {}, 43);
  for (int i = 0; i < 3; ++i) net.add_node();

  const Party owner = Party::make(2);
  const Party payee = Party::make(3);
  const auto funding = build_funding_chain(net.params(), {owner.script}, 1);
  for (int i = 0; i < 3; ++i) seed_node(net.node(i), funding);
  sim.run_all();

  const auto coins = find_spendable(net.node(0).chain(), owner.script);
  ASSERT_FALSE(coins.empty());
  const auto tx = build_payment(owner, coins[0].first, coins[0].second.out.value,
                                payee.script, 10 * btc::kCoin);
  net.submit_tx(0, tx);
  sim.run_all();

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(net.node(i).mempool().contains(tx.txid())) << "node " << i;
  }
}

TEST(Network, OrphanBlocksConnectWhenParentArrives) {
  Simulator sim;
  Network net(sim, btc::ChainParams::regtest(), {}, 44);
  net.add_node();

  // Build two blocks on a scratch chain, deliver child first.
  btc::Chain scratch(net.params());
  const Party miner = Party::make(4);
  std::vector<btc::Block> blocks;
  for (int i = 0; i < 2; ++i) {
    btc::Block b;
    b.header.prev_hash = scratch.tip_hash();
    b.header.time = scratch.tip_header().time + 1;
    b.header.bits = net.params().genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = scratch.height() + 1;
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{net.params().subsidy, miner.script});
    b.txs.push_back(cb);
    ASSERT_TRUE(btc::mine_block(b, net.params()));
    EXPECT_EQ(scratch.submit_block(b), btc::SubmitResult::kActiveTip);
    blocks.push_back(b);
  }

  net.node(0).receive_block(blocks[1]);  // orphan
  EXPECT_EQ(net.node(0).chain().height(), 0u);
  net.node(0).receive_block(blocks[0]);  // parent arrives
  EXPECT_EQ(net.node(0).chain().height(), 2u);
}

TEST(Miner, ProducesBlocksAtConfiguredRate) {
  Simulator sim;
  btc::ChainParams params = btc::ChainParams::regtest();
  Network net(sim, params, {}, 45);
  const NodeId n0 = net.add_node();
  const Party miner = Party::make(5);

  MinerProcess proc(net, n0, 1.0, miner.script, 46);
  proc.start();
  // 50 block intervals of simulated time.
  sim.run_until(static_cast<SimTime>(params.block_interval_s) * 1000 * 50);
  proc.stop();

  // Poisson(50): expect within a generous band.
  EXPECT_GT(net.node(n0).chain().height(), 25u);
  EXPECT_LT(net.node(n0).chain().height(), 85u);
}

TEST(Miner, NetworkOfMinersConverges) {
  Simulator sim;
  btc::ChainParams params = btc::ChainParams::regtest();
  Network net(sim, params, {}, 47);
  std::vector<NodeId> ids;
  std::vector<std::unique_ptr<MinerProcess>> procs;
  const Party miner = Party::make(6);
  for (int i = 0; i < 3; ++i) {
    ids.push_back(net.add_node());
    procs.push_back(std::make_unique<MinerProcess>(net, ids.back(), 1.0 / 3, miner.script,
                                                   100 + static_cast<std::uint64_t>(i)));
    procs.back()->start();
  }
  sim.run_until(static_cast<SimTime>(params.block_interval_s) * 1000 * 30);
  for (auto& p : procs) p->stop();
  sim.run_all();

  // All nodes agree on the tip (propagation latency << block interval).
  const auto tip = net.node(ids[0]).chain().tip_hash();
  for (auto id : ids) EXPECT_EQ(net.node(id).chain().tip_hash(), tip);
  EXPECT_GT(net.node(ids[0]).chain().height(), 10u);
}

TEST(Race, ZeroShareNeverWins) {
  RaceConfig cfg;
  cfg.q = 0.001;
  cfg.z = 6;
  const auto r = estimate_double_spend_probability(cfg, 2000, 7);
  EXPECT_LT(r.success_rate, 0.001);
}

TEST(Race, MajorityAttackerAlwaysWins) {
  RaceConfig cfg;
  cfg.q = 0.7;
  cfg.z = 3;
  cfg.give_up_deficit = 200;
  const auto r = estimate_double_spend_probability(cfg, 500, 8);
  EXPECT_GT(r.success_rate, 0.99);
}

TEST(Race, MoreConfirmationsLowerSuccess) {
  RaceConfig a, b;
  a.q = b.q = 0.2;
  a.z = 1;
  b.z = 6;
  const auto ra = estimate_double_spend_probability(a, 20000, 9);
  const auto rb = estimate_double_spend_probability(b, 20000, 9);
  EXPECT_GT(ra.success_rate, rb.success_rate * 2);
}

TEST(Race, ZeroConfIsNearCertainLoss) {
  // z = 0: merchant accepts instantly; attacker with q=0.1 still must
  // out-race from even — success = q/p ≈ 0.111.
  RaceConfig cfg;
  cfg.q = 0.1;
  cfg.z = 0;
  const auto r = estimate_double_spend_probability(cfg, 50000, 10);
  EXPECT_NEAR(r.success_rate, 0.1 / 0.9, 0.01);
}

TEST(Race, DeterministicForSeed) {
  RaceConfig cfg;
  cfg.q = 0.25;
  cfg.z = 4;
  const auto a = estimate_double_spend_probability(cfg, 5000, 11);
  const auto b = estimate_double_spend_probability(cfg, 5000, 11);
  EXPECT_EQ(a.success_rate, b.success_rate);
}

TEST(Experiment, StrongAttackerUsuallyDoubleSpends) {
  DoubleSpendExperimentConfig cfg;
  cfg.attacker_share = 0.45;
  cfg.merchant_confirmations = 1;
  cfg.honest_miners = 2;
  cfg.seed = 3;
  cfg.max_sim_time = 600 * kMinute;

  int wins = 0, accepted = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    cfg.seed = 50 + s;
    const auto r = run_double_spend_experiment(cfg);
    accepted += r.merchant_accepted;
    wins += r.double_spend_succeeded;
  }
  EXPECT_GT(accepted, 0);
  // With q=0.45 and z=1 the success probability is ~0.8; expect at least
  // one success across 5 trials (P[none] < 1e-3).
  EXPECT_GT(wins, 0);
}

TEST(Experiment, WeakAttackerUsuallyFails) {
  DoubleSpendExperimentConfig cfg;
  cfg.attacker_share = 0.05;
  cfg.merchant_confirmations = 3;
  cfg.honest_miners = 2;
  cfg.give_up_deficit = 6;
  cfg.max_sim_time = 300 * kMinute;

  int wins = 0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    cfg.seed = 90 + s;
    const auto r = run_double_spend_experiment(cfg);
    wins += r.double_spend_succeeded;
  }
  EXPECT_EQ(wins, 0);
}

TEST(Experiment, PaymentSurvivesWhenAttackFails) {
  DoubleSpendExperimentConfig cfg;
  cfg.attacker_share = 0.05;
  cfg.merchant_confirmations = 2;
  cfg.honest_miners = 2;
  cfg.give_up_deficit = 5;
  cfg.seed = 123;
  cfg.max_sim_time = 300 * kMinute;
  const auto r = run_double_spend_experiment(cfg);
  if (r.merchant_accepted && !r.double_spend_succeeded) {
    EXPECT_TRUE(r.payment_survives);
  }
}

}  // namespace
}  // namespace btcfast::sim
