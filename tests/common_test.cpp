// Unit tests for the common kernel: hex, serialization, RNG, clock, result.
#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/hex.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/serialize.h"

namespace btcfast {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff7f");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, UpperCaseAccepted) {
  auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHex) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex({}), "");
  auto v = from_hex("");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

TEST(Hex, ReversedMatchesBitcoinDisplayConvention) {
  const Bytes data{0x01, 0x02, 0x03};
  EXPECT_EQ(to_hex_reversed(data), "030201");
}

TEST(Serialize, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16le(0x1234);
  w.u32le(0xdeadbeef);
  w.u64le(0x0123456789abcdefULL);
  w.u32be(0xcafebabe);
  w.u64be(0x1122334455667788ULL);
  w.i64le(-42);

  Reader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16le().value(), 0x1234);
  EXPECT_EQ(r.u32le().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64le().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.u32be().value(), 0xcafebabeu);
  EXPECT_EQ(r.u64be().value(), 0x1122334455667788ULL);
  EXPECT_EQ(r.i64le().value(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, VarintBoundaries) {
  const std::uint64_t cases[] = {0,      1,          0xfc,        0xfd,
                                 0xffff, 0x10000,    0xffffffff,  0x100000000ULL,
                                 0xffffffffffffffffULL};
  for (std::uint64_t v : cases) {
    Writer w;
    w.varint(v);
    Reader r({w.data().data(), w.data().size()});
    EXPECT_EQ(r.varint().value(), v) << v;
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Serialize, VarintCompactSizes) {
  auto encoded_size = [](std::uint64_t v) {
    Writer w;
    w.varint(v);
    return w.size();
  };
  EXPECT_EQ(encoded_size(0xfc), 1u);
  EXPECT_EQ(encoded_size(0xfd), 3u);
  EXPECT_EQ(encoded_size(0xffff), 3u);
  EXPECT_EQ(encoded_size(0x10000), 5u);
  EXPECT_EQ(encoded_size(0xffffffff), 5u);
  EXPECT_EQ(encoded_size(0x100000000ULL), 9u);
}

TEST(Serialize, BytesWithLenRoundTrip) {
  Writer w;
  const Bytes payload{1, 2, 3, 4, 5};
  w.bytes_with_len(payload);
  Reader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.bytes_with_len().value(), payload);
}

TEST(Serialize, ReaderFailsOnTruncation) {
  Writer w;
  w.u32le(42);
  Reader r({w.data().data(), 2});
  EXPECT_FALSE(r.u32le().has_value());
  EXPECT_FALSE(r.ok());
  // Stays failed.
  EXPECT_FALSE(r.u8().has_value());
}

TEST(Serialize, BytesWithLenRejectsAbsurdLength) {
  Writer w;
  w.varint(1ULL << 40);
  Reader r({w.data().data(), w.data().size()});
  EXPECT_FALSE(r.bytes_with_len().has_value());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, StringRoundTrip) {
  Writer w;
  w.str_with_len("hello");
  Reader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.str_with_len().value(), "hello");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(600.0);
  EXPECT_NEAR(sum / n, 600.0, 15.0);
}

TEST(Rng, FillCoversBuffer) {
  Rng rng(3);
  Bytes buf(100, 0);
  rng.fill({buf.data(), buf.size()});
  int nonzero = 0;
  for (auto b : buf) nonzero += (b != 0);
  EXPECT_GT(nonzero, 80);
}

TEST(Clock, MonotoneAdvance) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance_to(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(50);  // never goes backwards
  EXPECT_EQ(clock.now(), 100);
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err = make_error("bad-input", "details");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, "bad-input");
  EXPECT_EQ(err.value_or(-1), -1);
  EXPECT_THROW((void)err.value(), std::logic_error);
}

TEST(Result, StatusBehaviour) {
  Status good;
  EXPECT_TRUE(good.ok());
  Status bad = make_error("fail");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "fail");
}

}  // namespace
}  // namespace btcfast
