// Edge-case unit tests across components: relayer behaviour, mempool
// drain/reorg paths, chain descendant invalidation, compact-bits
// boundaries and PSC host details not covered elsewhere.
#include <gtest/gtest.h>

#include "btc/chain.h"
#include "btc/mempool.h"
#include "btc/pow.h"
#include "btcfast/orchestrator.h"
#include "btcsim/scenario.h"

namespace btcfast {
namespace {

using core::Deployment;
using core::DeploymentConfig;

TEST(RelayerUnit, NoUpdateWhenWithinLag) {
  DeploymentConfig cfg;
  cfg.seed = 61;
  cfg.relayer_lag_blocks = 1000;  // can never catch up within the run
  Deployment dep(cfg);
  dep.run_for(2 * kHour);
  EXPECT_FALSE(dep.relayer().make_update_tx().has_value());
  // Checkpoint still reads as the initial one.
  const auto cp = dep.relayer().read_checkpoint();
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->second, 0u);
}

TEST(RelayerUnit, BatchesAreCapped) {
  DeploymentConfig cfg;
  cfg.seed = 62;
  cfg.relayer_lag_blocks = 1000;  // keep the built-in relayer idle
  Deployment dep(cfg);
  dep.run_for(3 * kHour);  // ~18 blocks

  // Cap at 5 headers per update.
  core::Relayer::Config rcfg;
  rcfg.judger = dep.judger_address();
  rcfg.self_psc = psc::Address::from_label("capped-relayer");
  rcfg.lag_blocks = 0;
  rcfg.max_batch = 5;
  dep.psc().mint(rcfg.self_psc, 100'000'000);
  core::Relayer capped(dep.merchant_node(), dep.psc(), rcfg);
  const auto tx = capped.make_update_tx();
  ASSERT_TRUE(tx.has_value());
  // 5 headers = varint(len) + varint(5) + 400 bytes, length-prefixed.
  Reader r({tx->args.data(), tx->args.size()});
  const auto blob = r.bytes_with_len(1 << 20);
  ASSERT_TRUE(blob.has_value());
  const auto headers = btc::deserialize_headers(*blob);
  ASSERT_TRUE(headers.has_value());
  EXPECT_EQ(headers->size(), 5u);
}

TEST(MempoolEdge, DrainEmptiesEverything) {
  btc::ChainParams params = btc::ChainParams::regtest();
  btc::Chain chain(params);
  const auto owner = sim::Party::make(1);
  const auto payee = sim::Party::make(2);
  for (const auto& b : sim::build_funding_chain(params, {owner.script}, 2)) {
    ASSERT_EQ(chain.submit_block(b), btc::SubmitResult::kActiveTip);
  }
  btc::Mempool pool;
  const auto coins = sim::find_spendable(chain, owner.script);
  ASSERT_GE(coins.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    const auto tx = sim::build_payment(owner, coins[static_cast<std::size_t>(i)].first,
                                       coins[static_cast<std::size_t>(i)].second.out.value,
                                       payee.script, btc::kCoin);
    ASSERT_TRUE(pool.accept(tx, chain.utxo(), chain.height(), 10).ok());
  }
  EXPECT_EQ(pool.size(), 2u);
  const auto drained = pool.drain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(pool.size(), 0u);
  // Spender index cleared too.
  EXPECT_FALSE(pool.spender_of(coins[0].first).has_value());
}

TEST(MempoolEdge, RejectsCoinbaseAndDuplicates) {
  btc::ChainParams params = btc::ChainParams::regtest();
  btc::Chain chain(params);
  const auto owner = sim::Party::make(1);
  for (const auto& b : sim::build_funding_chain(params, {owner.script}, 1)) {
    ASSERT_EQ(chain.submit_block(b), btc::SubmitResult::kActiveTip);
  }
  btc::Mempool pool;
  EXPECT_EQ(pool.accept(btc::genesis_coinbase(), chain.utxo(), chain.height(), 10)
                .error()
                .code,
            "coinbase");
  const auto coins = sim::find_spendable(chain, owner.script);
  const auto tx = sim::build_payment(owner, coins[0].first, coins[0].second.out.value,
                                     owner.script, btc::kCoin);
  ASSERT_TRUE(pool.accept(tx, chain.utxo(), chain.height(), 10).ok());
  EXPECT_EQ(pool.accept(tx, chain.utxo(), chain.height(), 10).error().code,
            "txn-already-in-mempool");
}

TEST(ChainEdge, ChildOfInvalidBlockRejected) {
  btc::ChainParams params = btc::ChainParams::regtest();
  btc::Chain chain(params);
  const auto miner = sim::Party::make(1);

  // An invalid block: coinbase overpays.
  btc::Block bad;
  bad.header.prev_hash = chain.tip_hash();
  bad.header.time = chain.tip_header().time + 1;
  bad.header.bits = params.genesis_bits;
  btc::Transaction cb;
  btc::TxIn in;
  in.prevout.index = 0xffffffff;
  cb.inputs.push_back(in);
  cb.outputs.push_back(btc::TxOut{params.subsidy * 2, miner.script});  // inflation!
  bad.txs.push_back(cb);
  ASSERT_TRUE(btc::mine_block(bad, params));
  std::string why;
  EXPECT_EQ(chain.submit_block(bad, &why), btc::SubmitResult::kInvalid);
  EXPECT_NE(why.find("bad-cb-amount"), std::string::npos);

  // A child of the invalid block is rejected outright.
  btc::Block child;
  child.header.prev_hash = bad.hash();
  child.header.time = bad.header.time + 1;
  child.header.bits = params.genesis_bits;
  btc::Transaction cb2;
  btc::TxIn in2;
  in2.prevout.index = 0xffffffff;
  in2.sequence = 2;
  cb2.inputs.push_back(in2);
  cb2.outputs.push_back(btc::TxOut{params.subsidy, miner.script});
  child.txs.push_back(cb2);
  ASSERT_TRUE(btc::mine_block(child, params));
  EXPECT_EQ(chain.submit_block(child, &why), btc::SubmitResult::kInvalid);
  EXPECT_NE(why.find("bad-prevblk"), std::string::npos);
}

TEST(ChainEdge, TipWorkAccumulatesMonotonically) {
  btc::ChainParams params = btc::ChainParams::regtest();
  btc::Chain chain(params);
  const auto miner = sim::Party::make(1);
  crypto::U256 prev_work = chain.tip_work();
  for (const auto& b : sim::build_funding_chain(params, {miner.script}, 1)) {
    ASSERT_EQ(chain.submit_block(b), btc::SubmitResult::kActiveTip);
    EXPECT_GT(chain.tip_work(), prev_work);
    prev_work = chain.tip_work();
  }
}

TEST(BitsEdge, CompactEncodingBoundaries) {
  using btc::bits_to_target;
  using btc::target_to_bits;
  // Smallest targets.
  for (std::uint64_t t : {1ULL, 2ULL, 255ULL, 256ULL, 0x7fffffULL, 0x800000ULL}) {
    const crypto::U256 target(t);
    const auto round = bits_to_target(target_to_bits(target));
    ASSERT_TRUE(round.has_value()) << t;
    EXPECT_EQ(*round, target) << t;
  }
  // Large targets round-trip through the mantissa truncation consistently.
  const crypto::U256 big = crypto::U256::one() << 250;
  const auto round = bits_to_target(target_to_bits(big));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, big);
}

TEST(PscHostEdge, TransferOutFailsGracefully) {
  psc::WorldState state;
  psc::GasMeter meter(1'000'000, psc::GasSchedule::istanbul());
  std::vector<psc::LogEvent> logs;
  const auto self = psc::Address::from_label("c");
  psc::HostContext host(state, meter, self, psc::Address::from_label("x"), 0, 1, 1, logs);
  // Contract balance is zero: transfer must fail without mutating state.
  EXPECT_FALSE(host.transfer_out(psc::Address::from_label("y"), 100));
  EXPECT_EQ(state.balance(psc::Address::from_label("y")), 0u);
  // Gas was still charged for the attempt (EVM CALL semantics).
  EXPECT_GE(meter.used(), psc::GasSchedule::istanbul().value_transfer);
}

TEST(PscHostEdge, SstorePricingByTransition) {
  psc::WorldState state;
  psc::GasMeter meter(1'000'000, psc::GasSchedule::istanbul());
  std::vector<psc::LogEvent> logs;
  const auto self = psc::Address::from_label("c");
  psc::HostContext host(state, meter, self, self, 0, 1, 1, logs);
  const auto& sched = psc::GasSchedule::istanbul();

  const psc::Gas before_set = meter.used();
  host.sstore(crypto::U256(1), crypto::U256(5));  // zero -> nonzero
  EXPECT_EQ(meter.used() - before_set, sched.sstore_set);

  const psc::Gas before_update = meter.used();
  host.sstore(crypto::U256(1), crypto::U256(6));  // update
  EXPECT_EQ(meter.used() - before_update, sched.sstore_reset);
}

TEST(DeploymentEdge, OutOfCoinsReportedCleanly) {
  DeploymentConfig cfg;
  cfg.seed = 63;
  cfg.funded_coins = 1;
  Deployment dep(cfg);
  ASSERT_TRUE(dep.perform_fastpay(btc::kCoin).accepted);
  const auto r = dep.perform_fastpay(btc::kCoin);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reject_reason, "customer out of coins");
}

}  // namespace
}  // namespace btcfast
