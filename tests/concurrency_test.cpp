// Thread-safety hammer tests for the two shared read-mostly structures
// on the hot verification path: Transaction::txid() memoization (striped
// mutexes over a process-global memo) and the 64-shard signature cache.
// These are the tests the TSan preset exists for — each spins N threads
// against one shared object and asserts the results stay consistent.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "btc/transaction.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"
#include "crypto/sigcache.h"

namespace btcfast {
namespace {

constexpr unsigned kThreads = 8;
constexpr int kItersPerThread = 400;

btc::Transaction make_tx(std::uint64_t salt) {
  btc::Transaction tx;
  btc::TxIn in;
  in.prevout.index = static_cast<std::uint32_t>(salt);
  in.sequence = static_cast<std::uint32_t>(salt * 2654435761u);
  tx.inputs.push_back(in);
  btc::TxOut out;
  out.value = static_cast<btc::Amount>(1000 + salt);
  tx.outputs.push_back(out);
  return tx;
}

// N threads calling txid() on the SAME const transaction: every result
// must be identical and the memo must not race (TSan validates the
// striped-mutex protocol; the assertions validate the value).
TEST(ConcurrencyTest, SharedTxidMemoization) {
  const btc::Transaction tx = make_tx(42);
  const btc::Txid expected = tx.txid();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        if (tx.txid() != expected) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// N threads each computing txids of their own distinct transactions —
// exercises concurrent memo *insertion* (different stripes and same
// stripe) rather than concurrent hits.
TEST(ConcurrencyTest, DistinctTxidMemoization) {
  std::vector<std::vector<btc::Transaction>> per_thread(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kItersPerThread; ++i) {
      per_thread[t].push_back(make_tx(t * 100'000ULL + static_cast<std::uint64_t>(i)));
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (auto& tx : per_thread[t]) {
        const btc::Txid first = tx.txid();
        const btc::Txid second = tx.txid();  // memo hit
        if (first != second || first.is_zero()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Concurrent insert + contains + clear on one SigCache: shards must not
// race, a contained key must never appear that was not inserted, and
// stats counters must add up.
TEST(ConcurrencyTest, SigCacheHammer) {
  // Cap well above the insert volume: 1<<16 over 64 shards = 1024 per
  // shard vs ~50 expected occupancy, so eviction never fires and every
  // inserted key must remain resident.
  crypto::SigCache cache(1 << 16);

  auto key_for = [](unsigned thread, int i) {
    crypto::Sha256Digest digest{};
    digest[0] = static_cast<std::uint8_t>(thread);
    digest[1] = static_cast<std::uint8_t>(i & 0xff);
    digest[2] = static_cast<std::uint8_t>((i >> 8) & 0xff);
    const ByteArray<33> pubkey{};
    const ByteArray<64> sig{};
    return crypto::SigCache::make_key(digest, {pubkey.data(), pubkey.size()},
                                      {sig.data(), sig.size()});
  };

  std::atomic<int> false_negatives{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const auto key = key_for(t, i);
        cache.insert(key);
        // Immediately after our own insert the key must be resident
        // (eviction picks entries of the same shard, but the cap is far
        // above what this test inserts).
        if (!cache.contains(key)) false_negatives.fetch_add(1, std::memory_order_relaxed);
        // Probe other threads' keys: either answer is fine; must not race.
        (void)cache.contains(key_for((t + 1) % kThreads, i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(false_negatives.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kThreads) * kItersPerThread);
}

// ecdsa_verify_cached from many threads over a mix of valid and invalid
// signatures: cached answers must agree with cold verification.
TEST(ConcurrencyTest, CachedVerifyConsistency) {
  const auto key = crypto::PrivateKey::from_scalar(crypto::U256{0x5eed});
  ASSERT_TRUE(key.has_value());
  const auto pub = crypto::PublicKey::derive(*key);
  const auto pub_bytes = pub.serialize();

  constexpr int kMessages = 32;
  std::vector<crypto::Sha256Digest> digests;
  std::vector<ByteArray<64>> sigs;
  for (int i = 0; i < kMessages; ++i) {
    crypto::Sha256Digest d{};
    d[0] = static_cast<std::uint8_t>(i);
    digests.push_back(d);
    auto sig = crypto::ecdsa_sign(*key, d).serialize();
    if (i % 4 == 3) sig[10] ^= 0x01;  // corrupt every 4th signature
    sigs.push_back(sig);
  }

  crypto::SigCache cache(1 << 12);
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < kMessages; ++i) {
          const bool ok = crypto::ecdsa_verify_cached(
              &cache, {pub_bytes.data(), pub_bytes.size()}, digests[static_cast<std::size_t>(i)],
              {sigs[static_cast<std::size_t>(i)].data(), 64});
          const bool expected = (i % 4 != 3);
          if (ok != expected) wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  // The valid triples should be serving from the cache by now.
  EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace btcfast
