// Thread-safety hammer tests for the shared structures on the hot
// serving path: Transaction::txid() memoization (striped mutexes over a
// process-global memo), the 64-shard signature cache, the gateway's
// sharded reservation ledger, and the TCP front end under real loopback
// client churn. These are the tests the TSan preset exists for — each
// spins N threads against one shared object and asserts the results stay
// consistent.

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "btc/transaction.h"
#include "btcfast/customer.h"
#include "btcfast/orchestrator.h"
#include "common/thread_pool.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"
#include "crypto/sigcache.h"
#include "gateway/pipeline.h"
#include "gateway/reservation_ledger.h"
#include "gateway/verify_batcher.h"
#include "gateway/wire.h"
#include "net/frame_assembler.h"
#include "net/server.h"
#include "replication/failover.h"
#include "replication/follower.h"

namespace btcfast {
namespace {

constexpr unsigned kThreads = 8;
constexpr int kItersPerThread = 400;

btc::Transaction make_tx(std::uint64_t salt) {
  btc::Transaction tx;
  btc::TxIn in;
  in.prevout.index = static_cast<std::uint32_t>(salt);
  in.sequence = static_cast<std::uint32_t>(salt * 2654435761u);
  tx.inputs.push_back(in);
  btc::TxOut out;
  out.value = static_cast<btc::Amount>(1000 + salt);
  tx.outputs.push_back(out);
  return tx;
}

// N threads calling txid() on the SAME const transaction: every result
// must be identical and the memo must not race (TSan validates the
// striped-mutex protocol; the assertions validate the value).
TEST(ConcurrencyTest, SharedTxidMemoization) {
  const btc::Transaction tx = make_tx(42);
  const btc::Txid expected = tx.txid();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        if (tx.txid() != expected) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// N threads each computing txids of their own distinct transactions —
// exercises concurrent memo *insertion* (different stripes and same
// stripe) rather than concurrent hits.
TEST(ConcurrencyTest, DistinctTxidMemoization) {
  std::vector<std::vector<btc::Transaction>> per_thread(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kItersPerThread; ++i) {
      per_thread[t].push_back(make_tx(t * 100'000ULL + static_cast<std::uint64_t>(i)));
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (auto& tx : per_thread[t]) {
        const btc::Txid first = tx.txid();
        const btc::Txid second = tx.txid();  // memo hit
        if (first != second || first.is_zero()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Concurrent insert + contains + clear on one SigCache: shards must not
// race, a contained key must never appear that was not inserted, and
// stats counters must add up.
TEST(ConcurrencyTest, SigCacheHammer) {
  // Cap well above the insert volume: 1<<16 over 64 shards = 1024 per
  // shard vs ~50 expected occupancy, so eviction never fires and every
  // inserted key must remain resident.
  crypto::SigCache cache(1 << 16);

  auto key_for = [](unsigned thread, int i) {
    crypto::Sha256Digest digest{};
    digest[0] = static_cast<std::uint8_t>(thread);
    digest[1] = static_cast<std::uint8_t>(i & 0xff);
    digest[2] = static_cast<std::uint8_t>((i >> 8) & 0xff);
    const ByteArray<33> pubkey{};
    const ByteArray<64> sig{};
    return crypto::SigCache::make_key(digest, {pubkey.data(), pubkey.size()},
                                      {sig.data(), sig.size()});
  };

  std::atomic<int> false_negatives{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const auto key = key_for(t, i);
        cache.insert(key);
        // Immediately after our own insert the key must be resident
        // (eviction picks entries of the same shard, but the cap is far
        // above what this test inserts).
        if (!cache.contains(key)) false_negatives.fetch_add(1, std::memory_order_relaxed);
        // Probe other threads' keys: either answer is fine; must not race.
        (void)cache.contains(key_for((t + 1) % kThreads, i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(false_negatives.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kThreads) * kItersPerThread);
}

// ecdsa_verify_cached from many threads over a mix of valid and invalid
// signatures: cached answers must agree with cold verification.
TEST(ConcurrencyTest, CachedVerifyConsistency) {
  const auto key = crypto::PrivateKey::from_scalar(crypto::U256{0x5eed});
  ASSERT_TRUE(key.has_value());
  const auto pub = crypto::PublicKey::derive(*key);
  const auto pub_bytes = pub.serialize();

  constexpr int kMessages = 32;
  std::vector<crypto::Sha256Digest> digests;
  std::vector<ByteArray<64>> sigs;
  for (int i = 0; i < kMessages; ++i) {
    crypto::Sha256Digest d{};
    d[0] = static_cast<std::uint8_t>(i);
    digests.push_back(d);
    auto sig = crypto::ecdsa_sign(*key, d).serialize();
    if (i % 4 == 3) sig[10] ^= 0x01;  // corrupt every 4th signature
    sigs.push_back(sig);
  }

  crypto::SigCache cache(1 << 12);
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < kMessages; ++i) {
          const bool ok = crypto::ecdsa_verify_cached(
              &cache, {pub_bytes.data(), pub_bytes.size()}, digests[static_cast<std::size_t>(i)],
              {sigs[static_cast<std::size_t>(i)].data(), 64});
          const bool expected = (i % 4 != 3);
          if (ok != expected) wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  // The valid triples should be serving from the cache by now.
  EXPECT_GT(cache.stats().hits, 0u);
}

// PubkeyPrecompCache under concurrent note_verified/lookup/evict churn:
// many threads verify signatures from a shared pool of keys through a
// deliberately tiny cache, so markers, table builds (outside the shard
// lock), publishes, hits, and evictions all interleave. TSan validates
// the shard protocol; the assertions validate that warm answers always
// match cold verification.
TEST(ConcurrencyTest, PubkeyPrecompCacheHammer) {
  constexpr int kKeys = 12;
  constexpr int kMessagesPerKey = 4;
  std::vector<ByteArray<33>> pubkeys;
  std::vector<std::vector<crypto::Sha256Digest>> digests(kKeys);
  std::vector<std::vector<ByteArray<64>>> sigs(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    const auto key = *crypto::PrivateKey::from_scalar(crypto::U256(0xbeef + k));
    pubkeys.push_back(crypto::PublicKey::derive(key).serialize());
    for (int m = 0; m < kMessagesPerKey; ++m) {
      crypto::Sha256Digest d{};
      d[0] = static_cast<std::uint8_t>(k);
      d[1] = static_cast<std::uint8_t>(m);
      digests[static_cast<std::size_t>(k)].push_back(d);
      auto sig = crypto::ecdsa_sign(key, d).serialize();
      if (m == kMessagesPerKey - 1) sig[11] ^= 0x02;  // one bad sig per key
      sigs[static_cast<std::size_t>(k)].push_back(sig);
    }
  }

  // Capacity far below the key count (4 entries over 16 shards): builds
  // and evictions race with lookups for the whole run. No SigCache, so
  // every call does a real verify through whichever kernel is resident.
  crypto::PubkeyPrecompCache pre(4);
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 60; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          const int m = static_cast<int>((t + static_cast<unsigned>(round + k)) %
                                         kMessagesPerKey);
          const auto& pk = pubkeys[static_cast<std::size_t>(k)];
          const bool ok = crypto::ecdsa_verify_cached(
              nullptr, {pk.data(), pk.size()},
              digests[static_cast<std::size_t>(k)][static_cast<std::size_t>(m)],
              {sigs[static_cast<std::size_t>(k)][static_cast<std::size_t>(m)].data(), 64}, &pre);
          const bool expected = (m != kMessagesPerKey - 1);
          if (ok != expected) wrong.fetch_add(1, std::memory_order_relaxed);
        }
        if (t == 0 && round == 30) pre.set_capacity(8);  // resize mid-flight
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  const auto stats = pre.stats();
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

gateway::ReservationLedger::EscrowSnapshot ledger_snapshot(const gateway::ReservationLedger& l,
                                                           core::EscrowId id) {
  const auto snap = l.snapshot(id);
  EXPECT_TRUE(snap.has_value());
  return snap.value_or(gateway::ReservationLedger::EscrowSnapshot{});
}

// THE overcommit race the reservation ledger exists to prevent: an escrow
// whose collateral covers exactly K payments, hammered by N threads each
// trying far more than K times. Exactly K grants must win — the sum of
// reservations must never exceed the collateral, no matter how the
// threads interleave. TSan validates the stripe-lock protocol; the
// counters validate the invariant.
TEST(ConcurrencyTest, LedgerConcurrentOvercommit) {
  constexpr psc::Value kAmount = 10;
  constexpr std::uint64_t kFits = 16;  // collateral covers exactly 16 grants
  gateway::ReservationLedger ledger(4);

  core::EscrowView view;
  view.state = core::EscrowState::kActive;
  view.collateral = kAmount * kFits;
  view.unlock_time_ms = 1'000'000;
  ledger.upsert_escrow(1, view);

  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        if (ledger.try_reserve(1, kAmount, 500).has_value()) {
          wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wins.load(), kFits);
  EXPECT_EQ(ledger.total_granted(), kFits);
  EXPECT_EQ(ledger.total_denied(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread - kFits);
  const auto snap = ledger_snapshot(ledger, 1);
  EXPECT_EQ(snap.local_reserved, view.collateral);
  EXPECT_EQ(snap.live_reservations, kFits);
}

// Reserve/release churn across many escrows and threads: every grant is
// released exactly once, releases can race with grants on the same
// stripe, and the ledger must drain back to zero.
TEST(ConcurrencyTest, LedgerReserveReleaseChurn) {
  constexpr std::uint64_t kEscrows = 6;
  gateway::ReservationLedger ledger(4);
  core::EscrowView view;
  view.state = core::EscrowState::kActive;
  view.collateral = 1'000'000;
  view.unlock_time_ms = 1'000'000;
  for (std::uint64_t e = 1; e <= kEscrows; ++e) ledger.upsert_escrow(e, view);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const core::EscrowId id = 1 + (t + static_cast<unsigned>(i)) % kEscrows;
        const auto rid = ledger.try_reserve(id, 7, 500);
        if (!rid.has_value() || !ledger.release(*rid)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        // A second release of the same id must stay a loud no-op even
        // while other threads mutate the stripe.
        if (rid.has_value() && ledger.release(*rid)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ledger.total_granted(), ledger.total_released());
  for (std::uint64_t e = 1; e <= kEscrows; ++e) {
    const auto snap = ledger_snapshot(ledger, e);
    EXPECT_EQ(snap.local_reserved, 0u);
    EXPECT_EQ(snap.live_reservations, 0u);
  }
}

// The gateway's hot-path verify micro-batcher under contention: N
// threads submit small job batches (mixed valid/invalid signatures)
// with the coalescing window open. Whoever leads, every caller must get
// back the correct verdict for ITS jobs in ITS order, and exactly the
// valid triples must land in the cache.
TEST(ConcurrencyTest, VerifyBatcherHammer) {
  const auto key = crypto::PrivateKey::from_scalar(crypto::U256{0xba7c4});
  ASSERT_TRUE(key.has_value());
  const auto pub = crypto::PublicKey::derive(*key);
  const auto pub_bytes = pub.serialize();

  constexpr int kMessages = 24;
  std::vector<crypto::SigCheckJob> jobs(kMessages);
  for (int i = 0; i < kMessages; ++i) {
    crypto::Sha256Digest d{};
    d[0] = static_cast<std::uint8_t>(i);
    d[1] = 0x77;
    jobs[static_cast<std::size_t>(i)].digest = d;
    jobs[static_cast<std::size_t>(i)].pubkey = pub_bytes;
    auto sig = crypto::ecdsa_sign(*key, d).serialize();
    if (i % 3 == 2) sig[11] ^= 0x01;  // corrupt every 3rd signature
    jobs[static_cast<std::size_t>(i)].sig = sig;
  }

  common::ThreadPool pool(2);
  crypto::SigCache cache(1 << 12);
  gateway::VerifyBatcher batcher(pool, &cache, {/*max_batch=*/16, /*max_wait_us=*/200});

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 30; ++round) {
        // Each call submits a 3-job slice starting at a thread-dependent
        // offset, so concurrent batches interleave different job mixes.
        const int base = (static_cast<int>(t) + round) % (kMessages - 3);
        std::vector<crypto::SigCheckJob> slice(jobs.begin() + base, jobs.begin() + base + 3);
        const auto verdicts = batcher.verify(std::move(slice), /*allow_wait=*/true);
        if (verdicts.size() != 3) {
          wrong.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (int j = 0; j < 3; ++j) {
          const bool expected = ((base + j) % 3 != 2);
          if ((verdicts[static_cast<std::size_t>(j)] != 0) != expected) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);

  // Exactly the valid triples are cache residents; not one corrupt one.
  for (int i = 0; i < kMessages; ++i) {
    const auto& job = jobs[static_cast<std::size_t>(i)];
    const auto k = crypto::SigCache::make_key(job.digest, {job.pubkey.data(), job.pubkey.size()},
                                              {job.sig.data(), job.sig.size()});
    EXPECT_EQ(cache.contains(k), i % 3 != 2) << "job " << i;
  }
  EXPECT_GT(batcher.batches(), 0u);
  EXPECT_EQ(batcher.jobs_verified(), static_cast<std::uint64_t>(kThreads) * 30 * 3);
}

// Multiple per-shard ledgers drawing from ONE shared id counter — the
// sharded gateway's setup. Grants must stay globally unique across the
// ledgers, every id must route back to its own ledger for release, and
// the affinity byte must match the escrow that granted it.
TEST(ConcurrencyTest, ShardedLedgersShareOneIdSpace) {
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kEscrows = 12;
  std::atomic<gateway::ReservationId> ids{1};
  std::vector<std::unique_ptr<gateway::ReservationLedger>> shards;
  for (std::size_t i = 0; i < kShards; ++i) {
    shards.push_back(std::make_unique<gateway::ReservationLedger>(4, &ids));
  }
  auto shard_of = [&](core::EscrowId id) -> gateway::ReservationLedger& {
    return *shards[gateway::ReservationLedger::affinity(id) % kShards];
  };

  core::EscrowView view;
  view.state = core::EscrowState::kActive;
  view.collateral = 1'000'000;
  view.unlock_time_ms = 1'000'000;
  for (std::uint64_t e = 1; e <= kEscrows; ++e) shard_of(e).upsert_escrow(e, view);

  std::vector<std::vector<gateway::ReservationId>> granted(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const core::EscrowId id = 1 + (t + static_cast<unsigned>(i)) % kEscrows;
        auto& ledger = shard_of(id);
        const auto rid = ledger.try_reserve(id, 5, 500);
        if (!rid.has_value() ||
            (*rid & 0xff) != gateway::ReservationLedger::affinity(id)) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        granted[t].push_back(*rid);
        if (i % 2 == 0 && !ledger.release(*rid)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Global uniqueness across every shard's grants.
  std::set<gateway::ReservationId> seen;
  for (const auto& per_thread : granted) {
    for (const auto rid : per_thread) {
      EXPECT_TRUE(seen.insert(rid).second) << "duplicate reservation id " << rid;
    }
  }
  std::uint64_t total_granted = 0;
  for (const auto& shard : shards) total_granted += shard->total_granted();
  EXPECT_EQ(total_granted, seen.size());
}

// The TCP front end against real concurrency: the server loop on its own
// thread (gateway verify behind a real pool), N loopback client threads
// each submitting its own distinct fast-pay packages with connection
// churn — one connection per package, opened, pipelined, drained,
// closed. Afterwards the client-side view must reconcile exactly with
// the gateway's ledger: every package accepted once, every reservation
// id unique, nothing lost to a dropped connection and nothing
// double-acked.
TEST(ConcurrencyTest, NetworkLoopbackChurnHammer) {
  constexpr unsigned kClients = 6;
  constexpr std::size_t kPkgsPerClient = 4;
  constexpr std::size_t kPkgs = kClients * kPkgsPerClient;

  core::DeploymentConfig dcfg;
  dcfg.seed = 77;
  dcfg.funded_coins = kPkgs;
  dcfg.collateral = dcfg.compensation * (kPkgs + 4);  // covers every accept
  core::Deployment dep(dcfg);
  const auto now = static_cast<std::uint64_t>(dep.simulator().now());
  const auto coins = sim::find_spendable(dep.customer_node().chain(),
                                         dep.customer().btc_identity().script);
  ASSERT_GE(coins.size(), kPkgs);

  std::vector<core::Invoice> invoices;
  std::vector<core::FastPayPackage> pkgs;
  for (std::size_t i = 0; i < kPkgs; ++i) {
    invoices.push_back(dep.merchant().make_invoice(btc::kCoin, dep.config().compensation, now,
                                                   60ULL * 60 * 1000));
    pkgs.push_back(dep.customer().create_fastpay(invoices.back(), coins[i].first,
                                                 coins[i].second.out.value, now,
                                                 dep.config().binding_ttl_ms));
  }

  common::ThreadPool pool(2);  // real parallelism behind serve_batch
  gateway::Gateway gw(dep.merchant(), pool, {});
  for (const auto& inv : invoices) gw.register_invoice(inv);
  gw.track_escrow(dep.customer().escrow_id());

  net::GatewayHandler handler(gw);
  handler.pin_time(now);  // sim time for request semantics; real clock for sockets
  net::ServerConfig scfg;
  scfg.conn.idle_timeout_ms = 60'000;  // TSan is slow; keep timeouts out of the way
  scfg.conn.frame_timeout_ms = 30'000;
  net::TcpServer server(handler, scfg);
  ASSERT_TRUE(server.start());
  std::thread loop([&] { server.run(); });

  const auto connect_client = [&]() -> int {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{/*tv_sec=*/10, /*tv_usec=*/0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };

  // Per-client tallies, merged after join (no cross-thread sharing).
  std::vector<std::vector<std::uint64_t>> rids(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPkgsPerClient; ++i) {
        const std::size_t p = c * kPkgsPerClient + i;
        const int fd = connect_client();
        if (fd < 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Pipeline a submit and a query on the fresh connection, then
        // drain both responses before the churn close.
        gateway::SubmitFastPayRequest req;
        req.invoice_id = invoices[p].invoice_id;
        req.package = pkgs[p];
        Bytes out = gateway::make_frame(gateway::MsgType::kSubmitFastPay, p + 1, req.serialize());
        append(out, gateway::make_frame(
                        gateway::MsgType::kQueryEscrow, 100'000 + p,
                        gateway::QueryEscrowRequest{dep.customer().escrow_id()}.serialize()));
        std::size_t off = 0;
        while (off < out.size()) {
          const ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
          if (n <= 0) break;
          off += static_cast<std::size_t>(n);
        }

        net::FrameAssembler rx;
        std::vector<Bytes> got;
        std::uint8_t buf[4096];
        while (got.size() < 2) {
          const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
          if (n <= 0) break;  // timeout or server-side close: counted below
          (void)rx.feed({buf, static_cast<std::size_t>(n)});
          while (auto f = rx.next_frame()) got.push_back(std::move(*f));
        }
        ::close(fd);

        if (got.size() != 2) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const auto frame = gateway::Frame::deserialize(got[0]);
        if (!frame || frame->type != gateway::MsgType::kFastPayResult ||
            frame->request_id != p + 1) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const auto resp = gateway::FastPayResultResponse::deserialize(frame->payload);
        if (!resp || !resp->accepted || resp->reservation_id == 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        rids[c].push_back(resp->reservation_id);
      }
    });
  }
  for (auto& th : clients) th.join();
  server.stop();
  loop.join();

  EXPECT_EQ(failures.load(), 0);

  // No double-acks: every reservation id the clients saw is unique.
  std::set<std::uint64_t> unique;
  std::size_t acked = 0;
  for (const auto& per_client : rids) {
    for (const auto rid : per_client) {
      ++acked;
      EXPECT_TRUE(unique.insert(rid).second) << "duplicate reservation id " << rid;
    }
  }
  EXPECT_EQ(acked, kPkgs);

  // No lost reservations: the ledger carries exactly what was acked.
  EXPECT_EQ(gw.stats().accepts(), kPkgs);
  const auto snap = gw.escrow_snapshot(dep.customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->live_reservations, kPkgs);
  EXPECT_EQ(snap->local_reserved, dcfg.compensation * kPkgs);

  // The server saw one connection and two frames per package. stop() can
  // land before the last EOFs were polled, so drain those first.
  for (int i = 0; i < 100 && server.stats().conns_active > 0; ++i) (void)server.poll_once(0);
  const auto st = server.stats();
  EXPECT_EQ(st.conns_accepted, kPkgs);
  EXPECT_EQ(st.frames_in, 2 * kPkgs);
  EXPECT_EQ(st.conns_active, 0u);
}

// Replication gate under concurrent committers: N threads append to one
// primary store and call quorum_commit() for their own sequence while
// the commit tap feeds the shipper from inside the store's commit path.
// Every acked sequence must end up durably on the follower, and the
// follower must finish byte-identical to the primary.
TEST(ConcurrencyTest, ReplicationShipAckHammer) {
  const std::string primary_dir =
      "/tmp/btcfast-conc-repl-primary-" + std::to_string(::getpid());
  const std::string follower_dir =
      "/tmp/btcfast-conc-repl-follower-" + std::to_string(::getpid());
  std::filesystem::remove_all(primary_dir);
  std::filesystem::remove_all(follower_dir);

  store::StoreOptions opts;
  opts.policy = store::FsyncPolicy::kNone;
  auto primary = store::DurableStore::open(primary_dir, opts);
  ASSERT_NE(primary, nullptr);
  replication::Follower::Options fopts;
  fopts.store = opts;
  auto follower = replication::Follower::open(follower_dir, fopts);
  ASSERT_NE(follower, nullptr);
  replication::LocalFollowerLink link(follower.get());

  replication::ReplicationConfig rcfg;
  rcfg.quorum = 1;
  replication::ReplicationGroup group(rcfg);
  group.attach_primary(primary.get());
  group.add_follower(&link);

  constexpr unsigned kWriters = 6;
  constexpr unsigned kPerThread = 50;
  std::atomic<unsigned> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        store::StoreRecord rec;
        rec.kind = store::RecordKind::kReserve;
        rec.reservation_id = t * kPerThread + i + 1;
        rec.escrow_id = t;
        rec.amount = 100 + i;
        rec.expires_at_ms = 1'000'000;
        const auto seq = primary->append(rec);
        if (!seq || !primary->commit() || !group.quorum_commit(*seq, t * kPerThread + i)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(primary->last_committed_seq(), kWriters * kPerThread);
  EXPECT_EQ(group.acked_high(), kWriters * kPerThread);
  EXPECT_EQ(follower->cursor().last_seq, kWriters * kPerThread);
  EXPECT_EQ(follower->store()->image_copy().serialize(), primary->image_copy().serialize());

  group.detach_primary();
  std::filesystem::remove_all(primary_dir);
  std::filesystem::remove_all(follower_dir);
}

}  // namespace
}  // namespace btcfast
