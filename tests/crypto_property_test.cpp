// Property-style parameterized tests over the crypto layer: algebraic
// invariants checked across many random inputs (seeded, deterministic).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/ecdsa.h"
#include "crypto/merkle.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "crypto/uint256.h"

namespace btcfast::crypto {
namespace {

U256 random_u256(Rng& rng) {
  const auto raw = rng.bytes<32>();
  return U256::from_be_bytes({raw.data(), raw.size()});
}

U256 random_scalar(Rng& rng) {
  // Rejection sample below n (gap to 2^256 is tiny).
  for (;;) {
    const U256 v = random_u256(rng);
    if (!v.is_zero() && v < secp::order_n()) return v;
  }
}

class U256Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U256Property, AdditionCommutesAndAssociates) {
  Rng rng(GetParam());
  const U256 a = random_u256(rng), b = random_u256(rng), c = random_u256(rng);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST_P(U256Property, SubtractionInvertsAddition) {
  Rng rng(GetParam());
  const U256 a = random_u256(rng), b = random_u256(rng);
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ(a - a, U256::zero());
}

TEST_P(U256Property, MulWideMatchesShiftAddForSmallMultipliers) {
  Rng rng(GetParam());
  const U256 a = random_u256(rng);
  // a * 8 == a << 3 in wrapping arithmetic, and wide product high part
  // captures the shifted-out bits.
  EXPECT_EQ(a * U256(8), a << 3);
}

TEST_P(U256Property, DivModIdentity) {
  Rng rng(GetParam());
  const U256 a = random_u256(rng);
  U256 d = random_u256(rng) >> (static_cast<unsigned>(rng.below(200)));
  if (d.is_zero()) d = U256(3);
  const U256 q = a / d;
  const U256 r = a % d;
  EXPECT_LT(r, d);
  // q*d + r == a (q*d cannot overflow since q = floor(a/d)).
  EXPECT_EQ(q * d + r, a);
}

TEST_P(U256Property, ShiftRoundTrips) {
  Rng rng(GetParam());
  const U256 a = random_u256(rng);
  const unsigned n = static_cast<unsigned>(rng.below(255)) + 1;
  EXPECT_EQ(((a >> n) << n) | (a & ((U256::one() << n) - U256(1))), a);
}

TEST_P(U256Property, ByteRoundTrips) {
  Rng rng(GetParam());
  const U256 a = random_u256(rng);
  const auto be = a.to_be_bytes();
  const auto le = a.to_le_bytes();
  EXPECT_EQ(U256::from_be_bytes({be.data(), be.size()}), a);
  EXPECT_EQ(U256::from_le_bytes({le.data(), le.size()}), a);
}

TEST_P(U256Property, ModularInverseOnSecpPrimes) {
  Rng rng(GetParam());
  const U256 a = random_scalar(rng);
  const U256 inv_n = invmod_prime(a, secp::order_n());
  EXPECT_EQ(mulmod(a, inv_n, secp::order_n()), U256::one());
  const U256 b = random_u256(rng) % secp::field_p();
  if (!b.is_zero()) {
    EXPECT_EQ(secp::fmul(b, secp::finv(b)), U256::one());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256Property, ::testing::Range<std::uint64_t>(1, 21));

class CurveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CurveProperty, ScalarMulLandsOnCurve) {
  Rng rng(GetParam());
  const U256 k = random_scalar(rng);
  const auto p = secp::to_affine(secp::scalar_mul_base(k));
  EXPECT_TRUE(secp::on_curve(p));
}

TEST_P(CurveProperty, ScalarDistributesOverAddition) {
  Rng rng(GetParam());
  // (k1 + k2) G == k1 G + k2 G  (scalars mod n)
  const U256 k1 = random_scalar(rng);
  const U256 k2 = random_scalar(rng);
  const U256 ksum = addmod(k1, k2, secp::order_n());
  const auto lhs = secp::to_affine(secp::scalar_mul_base(ksum));
  const auto rhs = secp::to_affine(
      secp::jadd(secp::scalar_mul_base(k1), secp::scalar_mul_base(k2)));
  EXPECT_EQ(lhs, rhs);
}

TEST_P(CurveProperty, DoubleScalarMulMatchesNaive) {
  Rng rng(GetParam());
  const U256 u1 = random_scalar(rng);
  const U256 u2 = random_scalar(rng);
  const auto p = secp::to_affine(secp::scalar_mul_base(random_scalar(rng)));
  const auto fast = secp::to_affine(secp::double_scalar_mul(u1, u2, p));
  const auto naive = secp::to_affine(
      secp::jadd(secp::scalar_mul_base(u1), secp::scalar_mul(u2, p)));
  EXPECT_EQ(fast, naive);
}

TEST_P(CurveProperty, CompressedRoundTrip) {
  Rng rng(GetParam());
  const auto p = secp::to_affine(secp::scalar_mul_base(random_scalar(rng)));
  const auto enc = secp::compress(p);
  const auto dec = secp::decompress({enc.data(), enc.size()});
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveProperty, ::testing::Range<std::uint64_t>(100, 112));

// --- fast-kernel equivalence: the windowed/wNAF/Shamir implementations
// must be bit-identical to the naive double-and-add reference. ---

class FastKernelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastKernelEquivalence, WnafScalarMulMatchesNaive) {
  Rng rng(GetParam());
  const auto p = secp::to_affine(secp::scalar_mul_base(random_scalar(rng)));
  for (int i = 0; i < 50; ++i) {
    const U256 k = random_scalar(rng);
    EXPECT_EQ(secp::to_affine(secp::scalar_mul(k, p)),
              secp::to_affine(secp::scalar_mul_naive(k, p)));
  }
}

TEST_P(FastKernelEquivalence, CombBaseMulMatchesNaive) {
  Rng rng(GetParam() * 131 + 17);
  for (int i = 0; i < 50; ++i) {
    const U256 k = random_scalar(rng);
    EXPECT_EQ(secp::to_affine(secp::scalar_mul_base(k)),
              secp::to_affine(secp::scalar_mul_naive(k, secp::generator())));
  }
}

TEST_P(FastKernelEquivalence, ShamirMatchesNaiveComposition) {
  Rng rng(GetParam() * 977 + 3);
  const auto p = secp::to_affine(secp::scalar_mul_base(random_scalar(rng)));
  const U256 u1 = random_scalar(rng);
  const U256 u2 = random_scalar(rng);
  const auto fast = secp::to_affine(secp::double_scalar_mul(u1, u2, p));
  const auto naive = secp::to_affine(secp::jadd(secp::scalar_mul_naive(u1, secp::generator()),
                                                secp::scalar_mul_naive(u2, p)));
  EXPECT_EQ(fast, naive);
}

TEST_P(FastKernelEquivalence, BinaryGcdInverseMatchesFermat) {
  Rng rng(GetParam() * 59 + 29);
  const U256 a = random_scalar(rng);
  EXPECT_EQ(invmod_odd(a, secp::order_n()), invmod_prime(a, secp::order_n()));
  const U256 b = random_u256(rng) % secp::field_p();
  if (!b.is_zero()) {
    EXPECT_EQ(invmod_odd(b, secp::field_p()), invmod_prime(b, secp::field_p()));
  }
}

TEST_P(FastKernelEquivalence, DivstepsInverseMatchesBinaryGcd) {
  Rng rng(GetParam() * 6151 + 11);
  for (int i = 0; i < 40; ++i) {
    const U256 a = random_scalar(rng);
    EXPECT_EQ(invmod_odd_var(a, secp::order_n()), invmod_odd(a, secp::order_n()));
    const U256 b = random_u256(rng) % secp::field_p();
    if (!b.is_zero()) {
      EXPECT_EQ(invmod_odd_var(b, secp::field_p()), invmod_odd(b, secp::field_p()));
    }
  }
}

TEST(FastKernelEdgeCases, DivstepsInverseEdges) {
  const U256& n = secp::order_n();
  const U256& p = secp::field_p();
  for (const U256* m : {&n, &p}) {
    // 1, m-1, tiny, sparse high-bit, and near-half patterns.
    const U256 cases[] = {U256::one(),           *m - U256::one(),     U256(2),
                          U256(3),               U256::one() << 255,   (U256::one() << 255) | U256::one(),
                          *m >> 1,               (*m >> 1) + U256::one()};
    for (const U256& a : cases) {
      const U256 r = invmod_odd_var(a, *m);
      EXPECT_EQ(r, invmod_odd(a, *m)) << a.to_hex();
      // Round-trip: a * a^-1 == 1 (mod m). mulmod via 512-bit divmod.
      EXPECT_EQ(divmod(a.mul_wide(r), *m).remainder, U256::one()) << a.to_hex();
    }
  }
  // a == 0 and a >= m are handled like the hot-path callers expect.
  EXPECT_TRUE(invmod_odd_var(U256::zero(), n).is_zero());
  EXPECT_EQ(invmod_odd_var(n + U256(5), n), invmod_odd(U256(5), n));
  // Non-coprime input to an odd composite modulus: no inverse, returns 0.
  EXPECT_TRUE(invmod_odd_var(U256(3), U256(9)).is_zero());
}

TEST_P(FastKernelEquivalence, SquareMatchesSelfMultiply) {
  Rng rng(GetParam() * 7919 + 1);
  const U256 a = random_u256(rng) % secp::field_p();
  EXPECT_EQ(secp::fsqr(a), secp::fmul(a, a));
}

// 20 seeds x 50 iterations = 1000 random scalars through each kernel.
INSTANTIATE_TEST_SUITE_P(Seeds, FastKernelEquivalence, ::testing::Range<std::uint64_t>(300, 320));

TEST(FastKernelEdgeCases, EdgeScalars) {
  Rng rng(424242);
  const auto p = secp::to_affine(secp::scalar_mul_base(random_scalar(rng)));
  const U256 n_minus_1 = secp::order_n() - U256::one();

  // k = 0 -> identity everywhere.
  EXPECT_TRUE(secp::scalar_mul(U256::zero(), p).is_infinity());
  EXPECT_TRUE(secp::scalar_mul_base(U256::zero()).is_infinity());
  EXPECT_TRUE(secp::scalar_mul_naive(U256::zero(), p).is_infinity());

  // k = 1 -> the point itself.
  EXPECT_EQ(secp::to_affine(secp::scalar_mul(U256::one(), p)), p);
  EXPECT_EQ(secp::to_affine(secp::scalar_mul_base(U256::one())), secp::generator());

  // k = n-1 -> -P (negation), and fast == naive.
  const auto neg_fast = secp::to_affine(secp::scalar_mul(n_minus_1, p));
  const auto neg_naive = secp::to_affine(secp::scalar_mul_naive(n_minus_1, p));
  EXPECT_EQ(neg_fast, neg_naive);
  EXPECT_EQ(neg_fast.x, p.x);
  EXPECT_EQ(neg_fast.y, secp::fneg(p.y));

  // Point at infinity inputs.
  const auto inf = secp::AffinePoint::identity();
  EXPECT_TRUE(secp::scalar_mul(U256(7), inf).is_infinity());
  EXPECT_TRUE(secp::scalar_mul_naive(U256(7), inf).is_infinity());
  EXPECT_EQ(secp::to_affine(secp::double_scalar_mul(U256(5), U256(9), inf)),
            secp::to_affine(secp::scalar_mul_base(U256(5))));

  // Degenerate Shamir operands fall back to single-scalar paths.
  EXPECT_EQ(secp::to_affine(secp::double_scalar_mul(U256::zero(), U256(9), p)),
            secp::to_affine(secp::scalar_mul(U256(9), p)));
  EXPECT_EQ(secp::to_affine(secp::double_scalar_mul(U256(5), U256::zero(), p)),
            secp::to_affine(secp::scalar_mul_base(U256(5))));
  EXPECT_EQ(secp::to_affine(secp::double_scalar_mul(n_minus_1, n_minus_1, p)),
            secp::to_affine(secp::jadd(secp::scalar_mul_naive(n_minus_1, secp::generator()),
                                       secp::scalar_mul_naive(n_minus_1, p))));
}

// --- GLV endomorphism: decomposition identities and the four-stream
// multi-scalar kernels (per-call shared-frame tables and the cached
// wide-precomp variant) pinned against the naive reference. ---

class GlvProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlvProperty, SplitRecombinesWithSignsAndBounds) {
  Rng rng(GetParam() * 6151 + 11);
  const U256& n = secp::order_n();
  for (int i = 0; i < 50; ++i) {
    const U256 k = random_scalar(rng);
    const auto s = secp::glv_split(k);
    // Magnitudes stay half-length: the lattice bound is < 2^129.
    if (!s.k1.is_zero()) { EXPECT_LE(s.k1.top_bit(), 129); }
    if (!s.k2.is_zero()) { EXPECT_LE(s.k2.top_bit(), 129); }
    // A negated magnitude is never zero (zero never exceeds n/2).
    if (s.neg1) { EXPECT_FALSE(s.k1.is_zero()); }
    if (s.neg2) { EXPECT_FALSE(s.k2.is_zero()); }
    // k ≡ (±k1) + λ·(±k2) (mod n).
    const U256 t1 = s.neg1 ? n - s.k1 : s.k1;
    const U256 t2 = s.neg2 ? n - s.k2 : s.k2;
    EXPECT_EQ(secp::nadd(t1, secp::nmul(secp::glv_lambda(), t2)), k);
  }
}

TEST_P(GlvProperty, EndomorphismIsLambdaMultiplication) {
  Rng rng(GetParam() * 271 + 5);
  // φ(P) = (β·x, y) must equal λ·P for arbitrary P.
  const auto p = secp::to_affine(secp::scalar_mul_base(random_scalar(rng)));
  const secp::AffinePoint phi{secp::fmul(secp::glv_beta(), p.x), p.y, false};
  EXPECT_TRUE(secp::on_curve(phi));
  EXPECT_EQ(phi, secp::to_affine(secp::scalar_mul_naive(secp::glv_lambda(), p)));
}

TEST_P(GlvProperty, MultiScalarMatchesNaiveComposition) {
  Rng rng(GetParam() * 389 + 7);
  const auto p = secp::to_affine(secp::scalar_mul_base(random_scalar(rng)));
  for (int i = 0; i < 10; ++i) {
    const U256 u1 = random_scalar(rng);
    const U256 u2 = random_scalar(rng);
    const auto naive = secp::to_affine(secp::jadd(secp::scalar_mul_naive(u1, secp::generator()),
                                                  secp::scalar_mul_naive(u2, p)));
    // GLV with per-call shared-frame tables (the cold verify path).
    EXPECT_EQ(secp::to_affine(secp::double_scalar_mul(u1, u2, p)), naive);
    // Legacy Shamir baseline stays equivalent too.
    EXPECT_EQ(secp::to_affine(secp::double_scalar_mul_shamir(u1, u2, p)), naive);
  }
}

TEST_P(GlvProperty, PrecompKernelMatchesPerCallKernel) {
  Rng rng(GetParam() * 911 + 13);
  const auto p = secp::to_affine(secp::scalar_mul_base(random_scalar(rng)));
  const auto pre = secp::build_pubkey_precomp(p);
  secp::PointTables tables;
  secp::build_point_tables(p, tables);
  for (int i = 0; i < 10; ++i) {
    const U256 u1 = random_scalar(rng);
    const U256 u2 = random_scalar(rng);
    const auto cold = secp::to_affine(secp::double_scalar_mul_tables(u1, u2, tables));
    const auto warm = secp::to_affine(secp::double_scalar_mul_precomp(u1, u2, pre));
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(warm, secp::to_affine(secp::double_scalar_mul_shamir(u1, u2, p)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlvProperty, ::testing::Range<std::uint64_t>(500, 510));

TEST(GlvEdgeCases, EdgeScalarSplitsAndKernels) {
  Rng rng(987654);
  const U256& n = secp::order_n();
  const auto p = secp::to_affine(secp::scalar_mul_base(random_scalar(rng)));
  const auto pre = secp::build_pubkey_precomp(p);

  const U256 edges[] = {U256::zero(),          U256::one(),
                        n - U256::one(),       secp::half_order(),
                        secp::half_order() + U256::one(), secp::glv_lambda(),
                        n - secp::glv_lambda()};
  for (const U256& k : edges) {
    // Split recombines even at the extremes (0 splits to (0, 0)).
    const auto s = secp::glv_split(k);
    const U256 t1 = s.neg1 ? n - s.k1 : s.k1;
    const U256 t2 = s.neg2 ? n - s.k2 : s.k2;
    EXPECT_EQ(secp::nadd(t1, secp::nmul(secp::glv_lambda(), t2)), k);
    // Every (edge, edge) pair through both GLV kernels vs the reference.
    for (const U256& u2 : edges) {
      if (u2.is_zero()) continue;  // precomp kernel requires u2 != 0 upstream
      const auto naive = secp::to_affine(secp::jadd(
          secp::scalar_mul_naive(k, secp::generator()), secp::scalar_mul_naive(u2, p)));
      EXPECT_EQ(secp::to_affine(secp::double_scalar_mul(k, u2, p)), naive);
      EXPECT_EQ(secp::to_affine(secp::double_scalar_mul_precomp(k, u2, pre)), naive);
    }
  }
}

class EcdsaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdsaProperty, SignVerifyHolds) {
  Rng rng(GetParam());
  const auto key = PrivateKey::from_scalar(random_scalar(rng));
  ASSERT_TRUE(key.has_value());
  const auto pub = PublicKey::derive(*key);
  const auto msg = rng.bytes<48>();
  const auto digest = sha256({msg.data(), msg.size()});
  const Signature sig = ecdsa_sign(*key, digest);
  EXPECT_TRUE(ecdsa_verify(pub, digest, sig));
}

TEST_P(EcdsaProperty, TamperedSignatureFails) {
  Rng rng(GetParam());
  const auto key = PrivateKey::from_scalar(random_scalar(rng));
  const auto pub = PublicKey::derive(*key);
  const auto msg = rng.bytes<48>();
  const auto digest = sha256({msg.data(), msg.size()});
  Signature sig = ecdsa_sign(*key, digest);
  // Flip a random bit of r or s.
  const unsigned bitpos = static_cast<unsigned>(rng.below(256));
  if (rng.chance(0.5)) {
    sig.r = sig.r + (U256::one() << bitpos);
    sig.r = sig.r % secp::order_n();
  } else {
    sig.s = sig.s + (U256::one() << bitpos);
    sig.s = sig.s % secp::order_n();
  }
  if (sig.r.is_zero() || sig.s.is_zero()) return;  // degenerate flip; skip
  EXPECT_FALSE(ecdsa_verify(pub, digest, sig));
}

TEST_P(EcdsaProperty, DeterministicSignatures) {
  Rng rng(GetParam());
  const auto key = PrivateKey::from_scalar(random_scalar(rng));
  const auto msg = rng.bytes<32>();
  const auto digest = sha256({msg.data(), msg.size()});
  EXPECT_EQ(ecdsa_sign(*key, digest), ecdsa_sign(*key, digest));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdsaProperty, ::testing::Range<std::uint64_t>(200, 210));

class MerkleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProperty, AllBranchesVerifyAtThisSize) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Hash32> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(rng.bytes<32>());
  const Hash32 root = merkle_root(leaves);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto branch = merkle_branch(leaves, i);
    EXPECT_TRUE(merkle_verify(leaves[i], branch, root)) << "leaf " << i << " of " << n;
    // And the branch depth is ceil(log2(n)) for n > 1.
    if (n > 1) {
      std::size_t depth = 0;
      std::size_t m = n;
      while (m > 1) {
        m = (m + 1) / 2;
        ++depth;
      }
      EXPECT_EQ(branch.siblings.size(), depth);
    }
  }
}

TEST_P(MerkleProperty, ForeignLeafNeverVerifies) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 7);
  std::vector<Hash32> leaves;
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(rng.bytes<32>());
  const Hash32 root = merkle_root(leaves);
  const Hash32 foreign = rng.bytes<32>();
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_FALSE(merkle_verify(foreign, merkle_branch(leaves, i), root));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProperty,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 64, 100));

}  // namespace
}  // namespace btcfast::crypto
