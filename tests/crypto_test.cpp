// Unit tests for the crypto library against published test vectors:
// FIPS 180-4 (SHA-256), the RIPEMD-160 reference vectors, RFC 4231
// (HMAC-SHA256), SEC2/RFC-6979 (secp256k1/ECDSA) and Bitcoin's base58.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/base58.h"
#include "crypto/ecdsa.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/ripemd160.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "crypto/uint256.h"

namespace btcfast::crypto {
namespace {

std::string digest_hex(ByteSpan d) { return to_hex(d); }

Bytes hx(const std::string& s) { return *from_hex(s); }

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  const std::string msg = "abc";
  EXPECT_EQ(digest_hex(sha256(as_bytes(msg))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const std::string msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(digest_hex(sha256(as_bytes(msg))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update({reinterpret_cast<const std::uint8_t*>(&c), 1});
  EXPECT_EQ(h.finalize(), sha256(as_bytes(msg)));
}

TEST(Sha256, PaddingBoundaries) {
  // Messages straddling the 55/56/64-byte padding edges.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(as_bytes(msg));
    EXPECT_EQ(a.finalize(), sha256(as_bytes(msg))) << len;
  }
}

TEST(Sha256, DoubleShaKnownValue) {
  // sha256d("hello") — the inner digest of "hello" rehashed.
  const std::string msg = "hello";
  const auto once = sha256(as_bytes(msg));
  EXPECT_EQ(sha256d(as_bytes(msg)), sha256({once.data(), once.size()}));
}

TEST(Ripemd160, EmptyString) {
  EXPECT_EQ(digest_hex(ripemd160({})), "9c1185a5c5e9fc54612808977ee8f548b2258d31");
}

TEST(Ripemd160, Abc) {
  const std::string msg = "abc";
  EXPECT_EQ(digest_hex(ripemd160(as_bytes(msg))),
            "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
}

TEST(Ripemd160, MessageDigest) {
  const std::string msg = "message digest";
  EXPECT_EQ(digest_hex(ripemd160(as_bytes(msg))),
            "5d0689ef49d2fae572b881b123a85ffa21595f36");
}

TEST(Ripemd160, Alphabet) {
  const std::string msg = "abcdefghijklmnopqrstuvwxyz";
  EXPECT_EQ(digest_hex(ripemd160(as_bytes(msg))),
            "f71c27109c692c1b56bbdceb5b9d2865b3708dbc");
}

TEST(Ripemd160, LongVector) {
  const std::string msg =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  EXPECT_EQ(digest_hex(ripemd160(as_bytes(msg))),
            "b0e20b6e3116640286ed3a87a5713079b21f5189");
}

TEST(Ripemd160, Hash160OfGeneratorPubkey) {
  // Compressed pubkey of private key 1 — the classic test address.
  const Bytes pub = hx("0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  EXPECT_EQ(digest_hex(hash160(pub)), "751e76e8199196d454941c45d1b3a323f1433bd6");
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string data = "Hi There";
  EXPECT_EQ(digest_hex(hmac_sha256(key, as_bytes(data))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  EXPECT_EQ(digest_hex(hmac_sha256(as_bytes(key), as_bytes(data))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(digest_hex(hmac_sha256(key, as_bytes(data))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(U256, HexRoundTrip) {
  const auto v = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->to_hex(), "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
}

TEST(U256, ShortHexIsZeroPadded) {
  const auto v = U256::from_hex("ff");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->low64(), 0xffu);
}

TEST(U256, ByteOrderConversions) {
  const auto v = *U256::from_hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
  const auto be = v.to_be_bytes();
  EXPECT_EQ(be[0], 0x01);
  EXPECT_EQ(be[31], 0x20);
  const auto le = v.to_le_bytes();
  EXPECT_EQ(le[0], 0x20);
  EXPECT_EQ(le[31], 0x01);
  EXPECT_EQ(U256::from_be_bytes({be.data(), be.size()}), v);
  EXPECT_EQ(U256::from_le_bytes({le.data(), le.size()}), v);
}

TEST(U256, AdditionCarriesAcrossLimbs) {
  U256 a;
  a.w[0] = ~0ULL;
  const U256 sum = a + U256(1);
  EXPECT_EQ(sum.w[0], 0u);
  EXPECT_EQ(sum.w[1], 1u);
}

TEST(U256, SubtractionBorrows) {
  U256 a;
  a.w[1] = 1;
  const U256 diff = a - U256(1);
  EXPECT_EQ(diff.w[0], ~0ULL);
  EXPECT_EQ(diff.w[1], 0u);
}

TEST(U256, WrappingOverflow) {
  bool carry = false;
  const U256 r = add_carry(U256::max(), U256(1), carry);
  EXPECT_TRUE(carry);
  EXPECT_TRUE(r.is_zero());
}

TEST(U256, Comparison) {
  EXPECT_LT(U256(1), U256(2));
  U256 high;
  high.w[3] = 1;
  EXPECT_GT(high, U256(~0ULL));
}

TEST(U256, Shifts) {
  const U256 one = U256::one();
  const U256 shifted = one << 200;
  EXPECT_TRUE(shifted.bit(200));
  EXPECT_EQ(shifted >> 200, one);
  EXPECT_TRUE((one << 256).is_zero());
}

TEST(U256, MulWide) {
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1
  U256 a;
  a.w[0] = ~0ULL;
  a.w[1] = ~0ULL;
  const U512 p = a.mul_wide(a);
  EXPECT_EQ(p.low256(), (U256::zero() - (U256(1) << 129)) + U256(1));
  EXPECT_EQ(p.high256(), U256::zero());
}

TEST(U256, DivModBasic) {
  const U256 a(1000);
  EXPECT_EQ(a / U256(7), U256(142));
  EXPECT_EQ(a % U256(7), U256(6));
}

TEST(U256, DivModLarge) {
  const auto a = *U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  const auto b = *U256::from_hex("100000000000000000000000000000000");  // 2^128
  EXPECT_EQ((a / b).to_hex(),
            "00000000000000000000000000000000ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((a % b).to_hex(),
            "00000000000000000000000000000000ffffffffffffffffffffffffffffffff");
}

TEST(U256, DivMod512RecomposesExactly) {
  // dividend = q*d + r with r < d, reconstructed via mul_wide.
  const auto d = *U256::from_hex("fedcba9876543210fedcba9876543210");
  const auto x = *U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  const U512 dividend = x.mul_wide(x);
  const auto dm = divmod(dividend, d);
  EXPECT_LT(dm.remainder, d);
  // Recompose: q*d (q fits in 512 but q.high256()*d must vanish).
  const U512 q_low_d = dm.quotient.low256().mul_wide(d);
  const U512 q_high_d = dm.quotient.high256().mul_wide(d);
  U512 recomposed = q_low_d + (q_high_d << 256) + U512::from_u256(dm.remainder);
  EXPECT_EQ(recomposed, dividend);
}

TEST(U256, ModularHelpers) {
  const U256 m(97);
  EXPECT_EQ(addmod(U256(90), U256(10), m), U256(3));
  EXPECT_EQ(submod(U256(3), U256(10), m), U256(90));
  EXPECT_EQ(mulmod(U256(13), U256(15), m), U256(195 % 97));
  EXPECT_EQ(powmod(U256(2), U256(10), m), U256(1024 % 97));
}

TEST(U256, FermatInverse) {
  const U256 m(101);  // prime
  for (std::uint64_t a = 1; a < 20; ++a) {
    const U256 inv = invmod_prime(U256(a), m);
    EXPECT_EQ(mulmod(U256(a), inv, m), U256(1)) << a;
  }
}

TEST(Secp256k1, GeneratorOnCurve) { EXPECT_TRUE(secp::on_curve(secp::generator())); }

TEST(Secp256k1, KnownMultiplesOfG) {
  // 2G from SEC test data.
  const auto p2 = secp::to_affine(secp::scalar_mul_base(U256(2)));
  EXPECT_EQ(p2.x.to_hex(), "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(p2.y.to_hex(), "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Secp256k1, NTimesGIsInfinity) {
  EXPECT_TRUE(secp::scalar_mul_base(secp::order_n()).is_infinity());
}

TEST(Secp256k1, AdditionMatchesScalarArithmetic) {
  // 3G + 5G == 8G
  const auto p3 = secp::scalar_mul_base(U256(3));
  const auto p5 = secp::scalar_mul_base(U256(5));
  const auto sum = secp::to_affine(secp::jadd(p3, p5));
  const auto p8 = secp::to_affine(secp::scalar_mul_base(U256(8)));
  EXPECT_EQ(sum, p8);
}

TEST(Secp256k1, DoubleEqualsAddSelf) {
  const auto p = secp::scalar_mul_base(U256(7));
  EXPECT_EQ(secp::to_affine(secp::jdouble(p)), secp::to_affine(secp::scalar_mul_base(U256(14))));
}

TEST(Secp256k1, AddInverseGivesInfinity) {
  const auto p = secp::to_affine(secp::scalar_mul_base(U256(9)));
  secp::AffinePoint neg = p;
  neg.y = secp::fneg(neg.y);
  EXPECT_TRUE(secp::jadd(secp::to_jacobian(p), secp::to_jacobian(neg)).is_infinity());
}

TEST(Secp256k1, CompressDecompressRoundTrip) {
  for (std::uint64_t k = 1; k <= 10; ++k) {
    const auto p = secp::to_affine(secp::scalar_mul_base(U256(k)));
    const auto enc = secp::compress(p);
    const auto dec = secp::decompress({enc.data(), enc.size()});
    ASSERT_TRUE(dec.has_value()) << k;
    EXPECT_EQ(*dec, p) << k;
  }
}

TEST(Secp256k1, DecompressRejectsNonCurvePoints) {
  ByteArray<33> bogus{};
  bogus[0] = 0x02;
  bogus[1] = 0x05;  // x = small value whose rhs is a non-residue (5^3+7=132)
  // Either decompress fails or the y found satisfies the curve; just assert
  // no crash and consistency:
  const auto dec = secp::decompress({bogus.data(), bogus.size()});
  if (dec) {
    EXPECT_TRUE(secp::on_curve(*dec));
  }
}

TEST(Secp256k1, DecompressRejectsBadPrefix) {
  ByteArray<33> enc = secp::compress(secp::generator());
  enc[0] = 0x05;
  EXPECT_FALSE(secp::decompress({enc.data(), enc.size()}).has_value());
}

TEST(Secp256k1, FieldSqrtOfSquare) {
  const U256 v(123456789);
  const U256 sq = secp::fsqr(v);
  const auto root = secp::fsqrt(sq);
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(*root == v || *root == secp::fneg(v));
}

TEST(Ecdsa, PubkeyOfPrivkeyOneIsGenerator) {
  const auto key = PrivateKey::from_scalar(U256(1));
  ASSERT_TRUE(key.has_value());
  const auto pub = PublicKey::derive(*key);
  EXPECT_EQ(to_hex(pub.serialize()),
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
}

TEST(Ecdsa, Rfc6979KnownSignature) {
  // Bitcoin Core's RFC6979 test: key=1, message "Satoshi Nakamoto".
  const auto key = PrivateKey::from_scalar(U256(1));
  ASSERT_TRUE(key.has_value());
  const std::string msg = "Satoshi Nakamoto";
  const auto digest = sha256(as_bytes(msg));
  const Signature sig = ecdsa_sign(*key, digest);
  EXPECT_EQ(sig.r.to_hex(), "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8");
  EXPECT_EQ(sig.s.to_hex(), "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5");
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  const auto key = PrivateKey::from_scalar(U256(0xdeadbeef));
  ASSERT_TRUE(key.has_value());
  const auto pub = PublicKey::derive(*key);
  const auto digest = sha256(as_bytes(std::string("payment binding")));
  const Signature sig = ecdsa_sign(*key, digest);
  EXPECT_TRUE(ecdsa_verify(pub, digest, sig));
}

TEST(Ecdsa, RejectsWrongMessage) {
  const auto key = PrivateKey::from_scalar(U256(0xdeadbeef));
  const auto pub = PublicKey::derive(*key);
  const auto digest = sha256(as_bytes(std::string("payment binding")));
  const Signature sig = ecdsa_sign(*key, digest);
  const auto other = sha256(as_bytes(std::string("different message")));
  EXPECT_FALSE(ecdsa_verify(pub, other, sig));
}

TEST(Ecdsa, RejectsWrongKey) {
  const auto key = PrivateKey::from_scalar(U256(0xdeadbeef));
  const auto other_pub = PublicKey::derive(*PrivateKey::from_scalar(U256(0xcafe)));
  const auto digest = sha256(as_bytes(std::string("payment binding")));
  const Signature sig = ecdsa_sign(*key, digest);
  EXPECT_FALSE(ecdsa_verify(other_pub, digest, sig));
}

TEST(Ecdsa, SignaturesAreLowS) {
  const auto key = PrivateKey::from_scalar(U256(7777));
  for (int i = 0; i < 8; ++i) {
    const auto digest = sha256(as_bytes(std::string("msg") + std::to_string(i)));
    const Signature sig = ecdsa_sign(*key, digest);
    EXPECT_LE(sig.s, secp::half_order());
  }
}

TEST(Ecdsa, CompactSerializationRoundTrip) {
  const auto key = PrivateKey::from_scalar(U256(31337));
  const auto digest = sha256(as_bytes(std::string("x")));
  const Signature sig = ecdsa_sign(*key, digest);
  const auto ser = sig.serialize();
  const auto parsed = Signature::parse({ser.data(), ser.size()});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sig);
}

TEST(Ecdsa, ParseRejectsOutOfRange) {
  ByteArray<64> bad{};  // r = s = 0
  EXPECT_FALSE(Signature::parse({bad.data(), bad.size()}).has_value());
}

TEST(Ecdsa, PrivateKeyRangeChecks) {
  EXPECT_FALSE(PrivateKey::from_scalar(U256::zero()).has_value());
  EXPECT_FALSE(PrivateKey::from_scalar(secp::order_n()).has_value());
  EXPECT_TRUE(PrivateKey::from_scalar(secp::order_n() - U256(1)).has_value());
}

TEST(Merkle, SingleLeafIsItsOwnRoot) {
  const Hash32 leaf = sha256(as_bytes(std::string("tx0")));
  EXPECT_EQ(merkle_root({leaf}), leaf);
}

TEST(Merkle, TwoLeavesMatchManualPairHash) {
  const Hash32 a = sha256(as_bytes(std::string("a")));
  const Hash32 b = sha256(as_bytes(std::string("b")));
  ByteArray<64> cat{};
  for (int i = 0; i < 32; ++i) {
    cat[i] = a[i];
    cat[32 + i] = b[i];
  }
  EXPECT_EQ(merkle_root({a, b}), sha256d({cat.data(), cat.size()}));
}

TEST(Merkle, OddLeafCountDuplicatesLast) {
  const Hash32 a = sha256(as_bytes(std::string("a")));
  const Hash32 b = sha256(as_bytes(std::string("b")));
  const Hash32 c = sha256(as_bytes(std::string("c")));
  EXPECT_EQ(merkle_root({a, b, c}), merkle_root({a, b, c, c}));
}

TEST(Merkle, BranchVerifiesForEveryLeaf) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < 7; ++i) leaves.push_back(sha256(as_bytes(std::string("tx") + std::to_string(i))));
  const Hash32 root = merkle_root(leaves);
  for (std::uint32_t i = 0; i < leaves.size(); ++i) {
    const auto branch = merkle_branch(leaves, i);
    EXPECT_TRUE(merkle_verify(leaves[i], branch, root)) << i;
  }
}

TEST(Merkle, BranchRejectsWrongLeaf) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < 4; ++i) leaves.push_back(sha256(as_bytes(std::string("tx") + std::to_string(i))));
  const Hash32 root = merkle_root(leaves);
  const auto branch = merkle_branch(leaves, 1);
  EXPECT_FALSE(merkle_verify(leaves[2], branch, root));
}

TEST(Merkle, BranchRejectsTamperedSibling) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(sha256(as_bytes(std::string("tx") + std::to_string(i))));
  const Hash32 root = merkle_root(leaves);
  auto branch = merkle_branch(leaves, 3);
  branch.siblings[1][0] ^= 1;
  EXPECT_FALSE(merkle_verify(leaves[3], branch, root));
}

TEST(Base58, EncodeHelloWorld) {
  const std::string msg = "Hello World!";
  EXPECT_EQ(base58_encode(as_bytes(msg)), "2NEpo7TZRRrLZSi2U");
}

TEST(Base58, LeadingZerosBecomeOnes) {
  const Bytes data{0x00, 0x00, 0x01};
  const std::string enc = base58_encode(data);
  EXPECT_EQ(enc.substr(0, 2), "11");
  EXPECT_EQ(base58_decode(enc).value(), data);
}

TEST(Base58, DecodeRejectsInvalidChars) {
  EXPECT_FALSE(base58_decode("0OIl").has_value());
}

TEST(Base58, CheckRoundTrip) {
  const Bytes payload = hx("751e76e8199196d454941c45d1b3a323f1433bd6");
  const std::string addr = base58check_encode(0x00, payload);
  EXPECT_EQ(addr, "1BgGZ9tcN4rm9KBzDn7KprQz87SZ26SAMH");
  const auto dec = base58check_decode(addr);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->version, 0x00);
  EXPECT_EQ(dec->payload, payload);
}

TEST(Base58, CheckRejectsCorruption) {
  const Bytes payload = hx("751e76e8199196d454941c45d1b3a323f1433bd6");
  std::string addr = base58check_encode(0x00, payload);
  addr[10] = addr[10] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(base58check_decode(addr).has_value());
}

}  // namespace
}  // namespace btcfast::crypto
