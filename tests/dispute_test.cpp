// The dispute subsystem: shared header index, storm engine, and
// reorg-aware header sync.
//
// The load-bearing suite here is StormParity: the storm engine's entire
// contract is "byte-identical to one-at-a-time execution, just faster",
// so we build seeded randomized dispute storms (shared anchors, mixed
// valid/corrupt evidence) and compare receipts, escrow views, balances
// and gas between batch and sequential execution — at 0/4/8 pool
// threads and across batch splits.
#include <gtest/gtest.h>

#include <filesystem>
#include <random>

#include <unistd.h>

#include "btc/pow.h"
#include "btcfast/customer.h"
#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcfast/watchtower.h"
#include "btcsim/node.h"
#include "btcsim/scenario.h"
#include "common/thread_pool.h"
#include "dispute/header_index.h"
#include "dispute/header_sync.h"
#include "dispute/storm_engine.h"
#include "store/recovery.h"
#include "store/snapshot.h"

namespace btcfast::dispute {
namespace {

using sim::Party;

constexpr std::uint64_t kHour = 60ULL * 60 * 1000;

/// Very low difficulty (~2^6 hashes/block) so worlds are cheap to mine.
btc::ChainParams easy_params() {
  auto params = btc::ChainParams::regtest();
  params.pow_limit = crypto::U256::one() << 250;
  params.genesis_bits = btc::target_to_bits(params.pow_limit);
  return params;
}

btc::BlockHeader random_header(std::mt19937_64& rng) {
  btc::BlockHeader h;
  h.version = static_cast<std::int32_t>(rng());
  for (auto& b : h.prev_hash.bytes) b = static_cast<std::uint8_t>(rng());
  for (auto& b : h.merkle_root.bytes) b = static_cast<std::uint8_t>(rng());
  h.time = static_cast<std::uint32_t>(rng());
  h.bits = static_cast<std::uint32_t>(rng());
  h.nonce = static_cast<std::uint32_t>(rng());
  return h;
}

crypto::Sha256Digest reference_digest(const btc::BlockHeader& h) {
  std::uint8_t ser[80];
  h.serialize_into(ser);
  return crypto::sha256d_80(ser);
}

// ---------------------------------------------------------------------------
// HeaderIndex

TEST(HeaderIndexTest, DigestMatchesSha256d) {
  std::mt19937_64 rng(1);
  HeaderIndex index;
  for (int i = 0; i < 20; ++i) {
    const auto h = random_header(rng);
    EXPECT_EQ(index.digest(h), reference_digest(h));
    EXPECT_EQ(index.digest(h), reference_digest(h));  // cached path
  }
  EXPECT_EQ(index.stats().misses, 20u);
  EXPECT_EQ(index.stats().hits, 20u);
}

TEST(HeaderIndexTest, BatchDedupsWithinBatchAndAgainstIndex) {
  std::mt19937_64 rng(2);
  HeaderIndex index;
  std::vector<btc::BlockHeader> unique;
  for (int i = 0; i < 8; ++i) unique.push_back(random_header(rng));

  // Batch with every header appearing 3x: a cold index must hash each
  // unique header exactly once.
  std::vector<btc::BlockHeader> batch;
  for (int rep = 0; rep < 3; ++rep) batch.insert(batch.end(), unique.begin(), unique.end());
  std::vector<crypto::Sha256Digest> out(batch.size());
  index.batch_digests(batch, out.data());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out[i], reference_digest(batch[i]));
  }
  EXPECT_EQ(index.stats().misses, 8u);
  EXPECT_EQ(index.stats().hits, 16u);

  // Second sweep: all hits.
  index.batch_digests(batch, out.data());
  EXPECT_EQ(index.stats().misses, 8u);
  EXPECT_EQ(index.stats().hits, 40u);
  EXPECT_DOUBLE_EQ(index.stats().hit_rate(), 40.0 / 48.0);
}

TEST(HeaderIndexTest, EvictionKeepsBoundAndStaysCorrect) {
  std::mt19937_64 rng(3);
  HeaderIndex::Config cfg;
  cfg.capacity = 4;
  HeaderIndex index(cfg);
  std::vector<btc::BlockHeader> headers;
  for (int i = 0; i < 10; ++i) headers.push_back(random_header(rng));
  for (const auto& h : headers) (void)index.digest(h);
  EXPECT_LE(index.size(), 4u);
  EXPECT_EQ(index.stats().evictions, 6u);
  // Evicted entries are recomputed correctly (and re-cached).
  for (const auto& h : headers) EXPECT_EQ(index.digest(h), reference_digest(h));
}

TEST(HeaderIndexTest, BatchOutputIdenticalAtAnyThreadCount) {
  std::mt19937_64 rng(4);
  std::vector<btc::BlockHeader> batch;
  for (int i = 0; i < 100; ++i) batch.push_back(random_header(rng));
  std::vector<crypto::Sha256Digest> reference(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) reference[i] = reference_digest(batch[i]);

  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}, std::size_t{8}}) {
    common::ThreadPool::configure_global(threads);
    HeaderIndex index;
    std::vector<crypto::Sha256Digest> out(batch.size());
    index.batch_digests(batch, out.data());
    EXPECT_EQ(out, reference) << "threads=" << threads;
  }
  common::ThreadPool::configure_global(0);
}

// ---------------------------------------------------------------------------
// Storm world: a deterministic seeded dispute storm.
//
// N escrows open disputes in waves; a checkpoint update lands between
// waves, so disputes in the same wave share one anchor (and all waves
// share the chain suffix) — the shared-segment structure a real flash
// double-spend wave produces. The storm batch carries merchant and
// customer evidence per dispute, with seeded corruptions mixed in to
// exercise the failure paths.

struct StormWorld {
  btc::ChainParams params = easy_params();
  std::unique_ptr<btc::Chain> chain;
  psc::PscChain psc;
  core::PayJudgerConfig cfg;
  psc::Address judger;
  psc::Address merchant = psc::Address::from_label("merchant");
  std::vector<Party> parties;
  std::vector<psc::Address> customers;
  std::vector<std::unique_ptr<core::CustomerWallet>> wallets;
  std::vector<btc::BlockHash> anchors;  ///< dispute anchor per escrow
  std::vector<btc::Txid> txids;         ///< disputed payment per escrow
  std::vector<psc::PscTx> storm;        ///< the batch under test
  std::uint64_t eval_time = 0;
};

void mine_block_with(StormWorld& w, std::vector<btc::Transaction> txs) {
  btc::Block b;
  b.header.prev_hash = w.chain->tip_hash();
  b.header.time = w.chain->tip_header().time + 600;
  b.header.bits = w.params.genesis_bits;
  btc::Transaction cb;
  btc::TxIn in;
  in.prevout.index = 0xffffffff;
  in.sequence = w.chain->height() + 1;
  cb.inputs.push_back(in);
  cb.outputs.push_back(btc::TxOut{w.params.subsidy, w.parties[0].script});
  b.txs.push_back(cb);
  for (auto& tx : txs) b.txs.push_back(std::move(tx));
  ASSERT_TRUE(btc::mine_block(b, w.params));
  ASSERT_EQ(w.chain->submit_block(b), btc::SubmitResult::kActiveTip);
}

std::unique_ptr<StormWorld> build_storm_world(std::uint64_t seed, std::size_t n_escrows) {
  auto w = std::make_unique<StormWorld>();
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  w->chain = std::make_unique<btc::Chain>(w->params);

  std::vector<btc::ScriptPubKey> scripts;
  for (std::size_t i = 0; i < n_escrows; ++i) {
    w->parties.push_back(Party::make(100 + static_cast<unsigned>(i)));
    scripts.push_back(w->parties.back().script);
    w->customers.push_back(psc::Address::from_label("customer/" + std::to_string(i)));
  }
  for (const auto& b : sim::build_funding_chain(w->params, scripts, /*blocks_each=*/1)) {
    EXPECT_EQ(w->chain->submit_block(b), btc::SubmitResult::kActiveTip);
  }

  w->cfg.pow_limit = w->params.pow_limit;
  w->cfg.initial_checkpoint = w->chain->tip_hash();
  w->cfg.required_depth = 3;
  w->cfg.evidence_window_ms = kHour;
  w->cfg.min_collateral = 1'000;
  w->cfg.dispute_bond = 500;
  w->judger = w->psc.deploy("payjudger", std::make_unique<core::PayJudger>(w->cfg));
  w->psc.mint(w->merchant, 1'000'000'000);

  w->anchors.resize(n_escrows);
  w->txids.resize(n_escrows);
  for (std::size_t i = 0; i < n_escrows; ++i) {
    w->psc.mint(w->customers[i], 1'000'000'000);
    w->wallets.push_back(std::make_unique<core::CustomerWallet>(
        w->parties[i], w->customers[i], /*escrow_id=*/i + 1));
    const auto r = w->psc.execute_now(w->wallets[i]->make_deposit_tx(w->judger, 100'000, 24 * kHour), 0);
    EXPECT_TRUE(r.success) << r.revert_reason;
  }

  // Waves: Zipf-ish — wave 0 gets ~1/2 the escrows, wave 1 ~1/3, wave 2
  // the rest. A checkpoint update lands before each wave past the first.
  btc::BlockHash checkpoint = w->cfg.initial_checkpoint;
  std::uint64_t t = 1'000;
  const std::size_t wave_end[3] = {n_escrows / 2, n_escrows / 2 + n_escrows / 3, n_escrows};
  std::size_t next = 0;
  for (int wave = 0; wave < 3; ++wave) {
    if (wave > 0 && w->chain->tip_hash() != checkpoint) {
      const auto advance = core::headers_since(*w->chain, checkpoint);
      EXPECT_TRUE(advance.has_value());
      if (advance && !advance->empty()) {
        psc::PscTx tx;
        tx.from = w->merchant;
        tx.to = w->judger;
        tx.method = "updateCheckpoint";
        tx.args = core::encode_checkpoint_args(*advance);
        tx.gas_limit = 8'000'000;
        const auto r = w->psc.execute_now(tx, t);
        EXPECT_TRUE(r.success) << r.revert_reason;
        checkpoint = w->chain->tip_hash();
      }
    }

    std::vector<btc::Transaction> payments;
    for (; next < wave_end[wave]; ++next) {
      const auto coins = sim::find_spendable(*w->chain, w->parties[next].script);
      EXPECT_FALSE(coins.empty());
      if (coins.empty()) continue;
      const auto [op, coin] = coins.front();
      core::Invoice inv;
      inv.amount_sat = coin.out.value / 2;
      inv.compensation = 400;
      inv.pay_to = w->parties[next].script;
      inv.merchant_psc = w->merchant;
      inv.expires_at_ms = t + 2 * kHour;
      core::FastPayPackage pkg =
          w->wallets[next]->create_fastpay(inv, op, coin.out.value, t, t + 2 * kHour);
      w->txids[next] = pkg.payment_tx.txid();
      w->anchors[next] = checkpoint;
      payments.push_back(pkg.payment_tx);

      psc::PscTx tx;
      tx.from = w->merchant;
      tx.to = w->judger;
      tx.value = 500;
      tx.method = "openDispute";
      tx.args = core::encode_open_dispute_args(next + 1, pkg.binding);
      const auto r = w->psc.execute_now(tx, t);
      EXPECT_TRUE(r.success) << "escrow " << next + 1 << ": " << r.revert_reason;
      t += 10;
    }
    mine_block_with(*w, std::move(payments));
    mine_block_with(*w, {});
  }
  for (std::uint32_t d = 0; d < w->cfg.required_depth; ++d) mine_block_with(*w, {});

  // The storm batch: merchant + customer evidence per dispute, in
  // rng-shuffled order, with seeded corruptions.
  for (std::size_t i = 0; i < n_escrows; ++i) {
    const auto chain_headers = core::headers_since(*w->chain, w->anchors[i]);
    EXPECT_TRUE(chain_headers.has_value() && !chain_headers->empty());
    psc::PscTx m;
    m.from = w->merchant;
    m.to = w->judger;
    m.method = "submitMerchantEvidence";
    m.args = core::encode_merchant_evidence_args(i + 1, *chain_headers);
    m.gas_limit = 8'000'000;
    w->storm.push_back(std::move(m));

    const auto ev = core::build_inclusion_evidence(*w->chain, w->anchors[i], w->txids[i],
                                                   w->cfg.required_depth);
    EXPECT_TRUE(ev.has_value());
    if (ev) {
      psc::PscTx c;
      c.from = w->customers[i];
      c.to = w->judger;
      c.method = "submitCustomerEvidence";
      c.args = core::encode_customer_evidence_args(i + 1, ev->headers, ev->proof,
                                                   ev->header_index);
      c.gas_limit = 8'000'000;
      w->storm.push_back(std::move(c));
    }
  }
  // Corrupt ~1/4 of the transactions (deterministically per seed): byte
  // flips hit arg decoding, header links, PoW, or the proof — all the
  // failure verdicts must stay byte-identical too.
  for (auto& tx : w->storm) {
    if (rng() % 4 != 0 || tx.args.empty()) continue;
    const std::size_t pos = rng() % tx.args.size();
    tx.args[pos] ^= static_cast<std::uint8_t>(1 + rng() % 255);
  }
  // And a few outright-junk calls.
  for (int j = 0; j < 3; ++j) {
    psc::PscTx junk;
    junk.from = w->merchant;
    junk.to = w->judger;
    junk.method = (j == 0) ? "submitMerchantEvidence" : (j == 1) ? "updateCheckpoint" : "noSuchMethod";
    junk.args.resize(rng() % 64);
    for (auto& b : junk.args) b = static_cast<std::uint8_t>(rng());
    junk.gas_limit = 8'000'000;
    w->storm.push_back(std::move(junk));
  }
  std::shuffle(w->storm.begin(), w->storm.end(), rng);
  w->eval_time = t + 1'000;  // inside every evidence window
  return w;
}

/// Everything observable about a run, for byte-parity comparison.
struct RunResult {
  std::vector<psc::Receipt> receipts;
  std::vector<Bytes> views;  ///< raw getEscrow payloads per escrow
  std::vector<psc::Value> balances;
  psc::Gas total_gas = 0;
  std::uint64_t block_number = 0;
};

void capture_state(StormWorld& w, RunResult* out) {
  for (std::size_t i = 0; i < w.customers.size(); ++i) {
    psc::PscTx q;
    q.from = w.customers[i];
    q.to = w.judger;
    q.method = "getEscrow";
    q.args = core::encode_escrow_id_arg(i + 1);
    const auto r = w.psc.view_call(q);
    EXPECT_TRUE(r.success);
    out->views.push_back(r.return_data);
    out->balances.push_back(w.psc.state().balance(w.customers[i]));
  }
  out->balances.push_back(w.psc.state().balance(w.merchant));
  out->balances.push_back(w.psc.state().balance(psc::Address::from_label("psc/fee-sink")));
  out->total_gas = w.psc.total_gas_used();
  out->block_number = w.psc.block_number();
}

RunResult run_sequential(std::uint64_t seed, std::size_t n) {
  auto w = build_storm_world(seed, n);
  RunResult result;
  for (const auto& tx : w->storm) result.receipts.push_back(w->psc.execute_now(tx, w->eval_time));
  capture_state(*w, &result);
  return result;
}

RunResult run_storm(std::uint64_t seed, std::size_t n, std::size_t chunk,
                    HeaderIndexStats* stats_out = nullptr) {
  auto w = build_storm_world(seed, n);
  RunResult result;
  {
    StormEngine engine(w->psc, w->judger);
    EXPECT_TRUE(engine.attached());
    for (std::size_t at = 0; at < w->storm.size(); at += chunk) {
      const std::size_t end = std::min(at + chunk, w->storm.size());
      std::vector<psc::PscTx> batch(w->storm.begin() + static_cast<std::ptrdiff_t>(at),
                                    w->storm.begin() + static_cast<std::ptrdiff_t>(end));
      auto receipts = engine.execute_batch(batch, w->eval_time);
      for (auto& r : receipts) result.receipts.push_back(std::move(r));
    }
    if (stats_out != nullptr) *stats_out = engine.stats();
  }
  capture_state(*w, &result);
  return result;
}

void expect_identical(const RunResult& a, const RunResult& b, const std::string& what) {
  ASSERT_EQ(a.receipts.size(), b.receipts.size()) << what;
  for (std::size_t i = 0; i < a.receipts.size(); ++i) {
    const auto& ra = a.receipts[i];
    const auto& rb = b.receipts[i];
    EXPECT_EQ(ra.success, rb.success) << what << " tx " << i;
    EXPECT_EQ(ra.revert_reason, rb.revert_reason) << what << " tx " << i;
    EXPECT_EQ(ra.gas_used, rb.gas_used) << what << " tx " << i;
    EXPECT_EQ(ra.return_data, rb.return_data) << what << " tx " << i;
    EXPECT_EQ(ra.block_number, rb.block_number) << what << " tx " << i;
    ASSERT_EQ(ra.logs.size(), rb.logs.size()) << what << " tx " << i;
    for (std::size_t l = 0; l < ra.logs.size(); ++l) {
      EXPECT_EQ(ra.logs[l].topic, rb.logs[l].topic) << what << " tx " << i;
      EXPECT_EQ(ra.logs[l].data, rb.logs[l].data) << what << " tx " << i;
    }
  }
  EXPECT_EQ(a.views, b.views) << what;
  EXPECT_EQ(a.balances, b.balances) << what;
  EXPECT_EQ(a.total_gas, b.total_gas) << what;
  EXPECT_EQ(a.block_number, b.block_number) << what;
}

class StormParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StormParity, BatchMatchesSequentialByteForByte) {
  const std::uint64_t seed = GetParam();
  common::ThreadPool::configure_global(0);
  const RunResult sequential = run_sequential(seed, 9);

  HeaderIndexStats stats;
  const RunResult storm = run_storm(seed, 9, /*chunk=*/SIZE_MAX, &stats);
  expect_identical(sequential, storm, "storm vs sequential (1 thread)");
  EXPECT_GT(stats.hits, 0u) << "shared segments should dedup";
  EXPECT_GT(stats.misses, 0u);
}

TEST_P(StormParity, ThreadCountChangesNothing) {
  const std::uint64_t seed = GetParam();
  common::ThreadPool::configure_global(0);
  const RunResult reference = run_sequential(seed, 6);
  for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    common::ThreadPool::configure_global(threads);
    expect_identical(reference, run_sequential(seed, 6),
                     "sequential at " + std::to_string(threads) + " threads");
    expect_identical(reference, run_storm(seed, 6, SIZE_MAX),
                     "storm at " + std::to_string(threads) + " threads");
  }
  common::ThreadPool::configure_global(0);
}

TEST_P(StormParity, BatchCompositionChangesNothing) {
  const std::uint64_t seed = GetParam();
  common::ThreadPool::configure_global(0);
  const RunResult reference = run_sequential(seed, 6);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    expect_identical(reference, run_storm(seed, 6, chunk),
                     "storm chunked by " + std::to_string(chunk));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StormParity, ::testing::Values(1, 2, 3, 4));

TEST(StormEngine, ProviderServesLaterDirectExecutionToo) {
  // After a batch, the engine stays attached: evidence executed through
  // plain execute_now (e.g. by the deployment's block producer) hits the
  // warm index and must stay byte-identical as well.
  common::ThreadPool::configure_global(0);
  auto w1 = build_storm_world(7, 4);
  auto w2 = build_storm_world(7, 4);
  StormEngine engine(w2->psc, w2->judger);

  std::vector<psc::Receipt> direct, warm;
  for (const auto& tx : w1->storm) direct.push_back(w1->psc.execute_now(tx, w1->eval_time));
  (void)engine.execute_batch(w2->storm, w2->eval_time);

  // Re-submit the first evidence tx in both worlds (a duplicate — the
  // contract sees it as weaker-or-equal evidence, still metered fully).
  const auto r1 = w1->psc.execute_now(w1->storm.front(), w1->eval_time + 10);
  const auto r2 = w2->psc.execute_now(w2->storm.front(), w2->eval_time + 10);
  EXPECT_EQ(r1.success, r2.success);
  EXPECT_EQ(r1.revert_reason, r2.revert_reason);
  EXPECT_EQ(r1.gas_used, r2.gas_used);
  EXPECT_EQ(r1.return_data, r2.return_data);
}

TEST(StormEngine, ScanToleratesJunkArgs) {
  std::mt19937_64 rng(99);
  std::vector<btc::BlockHeader> sink;
  for (int i = 0; i < 200; ++i) {
    psc::PscTx tx;
    const int m = static_cast<int>(rng() % 4);
    tx.method = m == 0   ? "submitMerchantEvidence"
                : m == 1 ? "submitCustomerEvidence"
                : m == 2 ? "updateCheckpoint"
                         : "getEscrow";
    tx.args.resize(rng() % 300);
    for (auto& b : tx.args) b = static_cast<std::uint8_t>(rng());
    (void)StormEngine::scan_tx_headers(tx, 144, &sink);
  }
  // No crash is the assertion; decoded junk may or may not yield headers.
  SUCCEED();
}

// ---------------------------------------------------------------------------
// HeaderSyncManager

void mine_empty_blocks(btc::Chain& chain, const btc::ChainParams& params, int count,
                       const btc::ScriptPubKey& payout) {
  for (int i = 0; i < count; ++i) {
    btc::Block b;
    b.header.prev_hash = chain.tip_hash();
    b.header.time = chain.tip_header().time + 600;
    b.header.bits = params.genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = chain.height() + 1;
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, payout});
    b.txs.push_back(cb);
    ASSERT_TRUE(btc::mine_block(b, params));
    ASSERT_EQ(chain.submit_block(b), btc::SubmitResult::kActiveTip);
  }
}

struct SyncFixture : ::testing::Test {
  SyncFixture() : params(easy_params()), chain(params), party(Party::make(5)) {}

  void mine(int count) { mine_empty_blocks(chain, params, count, party.script); }

  /// Mine a fork of `length` blocks branching above `fork_height`.
  void mine_fork(std::uint32_t fork_height, int length) {
    auto parent = chain.hash_at_height(fork_height);
    ASSERT_TRUE(parent.has_value());
    auto parent_block = chain.block_at_height(fork_height);
    ASSERT_TRUE(parent_block.has_value());
    std::uint32_t time = parent_block->header.time + 601;
    btc::BlockHash prev = *parent;
    for (int i = 0; i < length; ++i) {
      btc::Block b;
      b.header.prev_hash = prev;
      b.header.time = time;
      b.header.bits = params.genesis_bits;
      btc::Transaction cb;
      btc::TxIn in;
      in.prevout.index = 0xffffffff;
      in.sequence = fork_height + static_cast<std::uint32_t>(i) + 1;
      // Distinct coinbase script so fork blocks differ from the originals.
      cb.inputs.push_back(in);
      cb.outputs.push_back(btc::TxOut{params.subsidy, Party::make(77).script});
      b.txs.push_back(cb);
      ASSERT_TRUE(btc::mine_block(b, params));
      const auto res = chain.submit_block(b);
      ASSERT_NE(res, btc::SubmitResult::kInvalid);
      prev = b.header.hash();
      time += 600;
    }
  }

  btc::ChainParams params;
  btc::Chain chain;
  Party party;
};

TEST_F(SyncFixture, CatchesUpInLocatorRounds) {
  mine(30);
  HeaderSyncManager::Config cfg;
  cfg.batch_size = 7;  // force several rounds
  HeaderSyncManager mgr(params, cfg);
  const std::size_t rounds = mgr.sync_from(chain);
  EXPECT_GE(rounds, 5u);
  EXPECT_EQ(mgr.tip_hash(), chain.tip_hash());
  EXPECT_EQ(mgr.tip_height(), chain.height());
  EXPECT_EQ(mgr.tip_work(), chain.tip_work());
  EXPECT_EQ(mgr.stats().headers_connected, 30u);

  // Caught up: another round connects nothing.
  const auto r = mgr.sync_round(chain);
  EXPECT_EQ(r.connected, 0u);
}

TEST_F(SyncFixture, LocatorIsDenseNearTipSparseBehind) {
  mine(100);
  HeaderSyncManager mgr(params);
  mgr.sync_from(chain);
  const auto loc = mgr.locator();
  ASSERT_FALSE(loc.empty());
  EXPECT_EQ(loc.front(), chain.tip_hash());
  EXPECT_EQ(loc.back(), btc::genesis_header(params).hash());
  EXPECT_LT(loc.size(), 30u);  // exponential spacing, not 101 entries
}

TEST_F(SyncFixture, FollowsReorgAndMeasuresDepth) {
  mine(10);
  HeaderSyncManager mgr(params);
  mgr.sync_from(chain);
  ASSERT_EQ(mgr.tip_height(), 10u);

  // Heavier fork above height 6: the full node reorgs (depth 4), the
  // sync manager must follow and report the same depth.
  mine_fork(6, 6);
  ASSERT_EQ(chain.height(), 12u);
  mgr.sync_from(chain);
  EXPECT_EQ(mgr.tip_hash(), chain.tip_hash());
  EXPECT_EQ(mgr.tip_height(), 12u);
  EXPECT_EQ(mgr.stats().reorgs, 1u);
  EXPECT_EQ(mgr.stats().deepest_reorg, 4u);
  EXPECT_EQ(mgr.stats().deepest_reorg, chain.max_reorg_depth());
}

TEST_F(SyncFixture, EqualWorkTieBreaksTowardSource) {
  mine(5);
  const auto real = chain.header_range(1, 5);

  // An equal-work sibling of the source's tip (same parent, same bits,
  // different time/nonce). A manager that sees it first would keep it
  // forever under first-seen — but the node will extend *its* branch.
  btc::BlockHeader sib = real.back();
  sib.time += 600;
  while (!btc::check_proof_of_work(sib, params.pow_limit)) ++sib.nonce;

  HeaderSyncManager mgr(params);
  std::vector<btc::BlockHeader> first(real.begin(), real.end() - 1);
  first.push_back(sib);
  mgr.accept_headers(first);
  ASSERT_EQ(mgr.tip_hash(), sib.hash());
  ASSERT_EQ(mgr.tip_work(), chain.tip_work());

  const auto r = mgr.sync_round(chain);
  EXPECT_EQ(r.reorg_depth, 1u);
  EXPECT_EQ(mgr.tip_hash(), chain.tip_hash());
  EXPECT_EQ(mgr.stats().reorgs, 1u);
  EXPECT_EQ(mgr.stats().deepest_reorg, 1u);
}

TEST_F(SyncFixture, RefusesReorgPastBound) {
  mine(10);
  HeaderSyncManager::Config cfg;
  cfg.max_reorg_depth = 3;
  HeaderSyncManager mgr(params, cfg);
  mgr.sync_from(chain);
  const auto old_tip = mgr.tip_hash();

  mine_fork(4, 8);  // depth-6 reorg on the full node
  ASSERT_EQ(chain.height(), 12u);
  const auto r = mgr.sync_round(chain);
  EXPECT_TRUE(r.reorg_refused);
  EXPECT_EQ(mgr.tip_hash(), old_tip);  // held its ground
  EXPECT_EQ(mgr.stats().reorgs, 0u);
}

TEST_F(SyncFixture, CheckpointAdvanceRespectsLagAndReorgs) {
  mine(20);
  HeaderSyncManager::Config cfg;
  cfg.checkpoint_lag = 6;
  HeaderSyncManager mgr(params, cfg);
  mgr.sync_from(chain);

  const auto genesis = btc::genesis_header(params).hash();
  const auto advance = mgr.checkpoint_advance(genesis);
  ASSERT_EQ(advance.size(), 14u);  // heights 1..14 (tip 20 - lag 6)
  EXPECT_EQ(advance.front().prev_hash, genesis);
  for (std::size_t i = 1; i < advance.size(); ++i) {
    EXPECT_EQ(advance[i].prev_hash, advance[i - 1].hash());
  }

  // Advancing from the safe tip: nothing to do.
  EXPECT_TRUE(mgr.checkpoint_advance(advance.back().hash()).empty());
  // Unknown anchor: nothing.
  btc::BlockHash junk;
  junk.bytes[0] = 0xAB;
  EXPECT_TRUE(mgr.checkpoint_advance(junk).empty());

  // A header that reorged off the best chain is not a valid anchor.
  const auto orphaned = chain.hash_at_height(18);
  ASSERT_TRUE(orphaned.has_value());
  mine_fork(15, 8);
  mgr.sync_from(chain);
  EXPECT_FALSE(mgr.on_best_chain(*orphaned));
  EXPECT_TRUE(mgr.checkpoint_advance(*orphaned).empty());
}

TEST(LocatorCodec, RoundTripsAndRejectsJunk) {
  std::mt19937_64 rng(11);
  std::vector<btc::BlockHash> loc;
  for (int i = 0; i < 25; ++i) {
    btc::BlockHash h;
    for (auto& b : h.bytes) b = static_cast<std::uint8_t>(rng());
    loc.push_back(h);
  }
  const Bytes wire = serialize_locator(loc);
  const auto back = deserialize_locator({wire.data(), wire.size()});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, loc);

  // Truncations must fail cleanly.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, wire.size() - 1}) {
    EXPECT_FALSE(deserialize_locator({wire.data(), cut}).has_value());
  }
  // Trailing garbage rejected.
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_FALSE(deserialize_locator({extended.data(), extended.size()}).has_value());
}

// ---------------------------------------------------------------------------
// Watchtower integration: duplicate suppression, landed-defense
// accounting, storm prehash, checkpoint advancement.

struct TowerFixture : ::testing::Test {
  TowerFixture()
      : params(easy_params()),
        node(0, params, nullptr),
        customer_party(Party::make(31)),
        merchant_party(Party::make(32)) {
    for (const auto& b :
         sim::build_funding_chain(params, {customer_party.script}, /*blocks_each=*/2)) {
      EXPECT_EQ(node.chain().submit_block(b), btc::SubmitResult::kActiveTip);
    }
    cfg.pow_limit = params.pow_limit;
    cfg.initial_checkpoint = node.chain().tip_hash();
    cfg.required_depth = 3;
    cfg.evidence_window_ms = kHour;
    cfg.min_collateral = 1'000;
    cfg.dispute_bond = 500;
    judger = psc.deploy("payjudger", std::make_unique<core::PayJudger>(cfg));
    psc.mint(customer_psc, 1'000'000'000);
    psc.mint(merchant_psc, 1'000'000'000);
    psc.mint(tower_psc, 1'000'000'000);
    wallet = std::make_unique<core::CustomerWallet>(customer_party, customer_psc, 1);
    EXPECT_TRUE(psc.execute_now(wallet->make_deposit_tx(judger, 100'000, 24 * kHour), 0).success);
  }

  void mine_with(std::vector<btc::Transaction> txs) {
    btc::Block b;
    b.header.prev_hash = node.chain().tip_hash();
    b.header.time = node.chain().tip_header().time + 600;
    b.header.bits = params.genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = node.chain().height() + 1;
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, merchant_party.script});
    b.txs.push_back(cb);
    for (auto& tx : txs) b.txs.push_back(std::move(tx));
    ASSERT_TRUE(btc::mine_block(b, params));
    ASSERT_EQ(node.chain().submit_block(b), btc::SubmitResult::kActiveTip);
  }

  /// Open a dispute over a payment mined at required depth.
  void open_disputed_payment(std::uint64_t t) {
    const auto coins = sim::find_spendable(node.chain(), customer_party.script);
    ASSERT_FALSE(coins.empty());
    const auto [op, coin] = coins.front();
    core::Invoice inv;
    inv.amount_sat = coin.out.value / 2;
    inv.compensation = 400;
    inv.pay_to = merchant_party.script;
    inv.merchant_psc = merchant_psc;
    inv.expires_at_ms = t + 2 * kHour;
    core::FastPayPackage pkg = wallet->create_fastpay(inv, op, coin.out.value, t, t + 2 * kHour);
    psc::PscTx tx;
    tx.from = merchant_psc;
    tx.to = judger;
    tx.value = 500;
    tx.method = "openDispute";
    tx.args = core::encode_open_dispute_args(1, pkg.binding);
    ASSERT_TRUE(psc.execute_now(tx, t).success);
    mine_with({pkg.payment_tx});
    for (std::uint32_t d = 0; d < cfg.required_depth; ++d) mine_with({});
  }

  btc::ChainParams params;
  sim::Node node;
  Party customer_party;
  Party merchant_party;
  psc::PscChain psc;
  core::PayJudgerConfig cfg;
  psc::Address judger;
  psc::Address customer_psc = psc::Address::from_label("customer");
  psc::Address merchant_psc = psc::Address::from_label("merchant");
  psc::Address tower_psc = psc::Address::from_label("tower");
  std::unique_ptr<core::CustomerWallet> wallet;
};

TEST_F(TowerFixture, NoDuplicateDefenseWhileChainUnchanged) {
  open_disputed_payment(1'000);
  core::Watchtower tower(node, psc, {judger, tower_psc});
  tower.protect(1);

  const auto first = tower.poll(2'000);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].method, "submitCustomerEvidence");

  // Regression: polling again before the PSC chain advances used to
  // refile the identical defense every round, burning gas.
  EXPECT_TRUE(tower.poll(2'100).empty());
  EXPECT_TRUE(tower.poll(2'200).empty());

  // Once the Bitcoin chain advances, stronger evidence is a new filing.
  mine_with({});
  const auto second = tower.poll(2'300);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].method, "submitCustomerEvidence");
}

TEST_F(TowerFixture, DefensesFiledCountsOnlyLandedDefenses) {
  open_disputed_payment(1'000);
  core::Watchtower tower(node, psc, {judger, tower_psc});
  tower.protect(1);

  const auto actions = tower.poll(2'000);
  ASSERT_EQ(actions.size(), 1u);
  // Created but never accepted by the chain: not a filed defense.
  EXPECT_EQ(tower.defenses_filed(), 0u);
  (void)tower.poll(2'100);
  EXPECT_EQ(tower.defenses_filed(), 0u);

  // Land it; the next poll observes customer_proved and counts it once.
  ASSERT_TRUE(psc.execute_now(actions[0], 2'200).success);
  (void)tower.poll(2'300);
  EXPECT_EQ(tower.defenses_filed(), 1u);
  (void)tower.poll(2'400);
  EXPECT_EQ(tower.defenses_filed(), 1u);
}

TEST_F(TowerFixture, PollPrehashesThroughStormEngine) {
  open_disputed_payment(1'000);
  core::Watchtower tower(node, psc, {judger, tower_psc});
  tower.protect(1);

  StormEngine engine(psc, judger);
  tower.attach_prehasher(&engine);

  const auto actions = tower.poll(2'000);
  ASSERT_EQ(actions.size(), 1u);
  const auto after_poll = engine.stats();
  EXPECT_GT(after_poll.misses, 0u) << "poll should sweep the defense headers";

  // Executing the defense through the engine hits the warm index.
  const auto receipts = engine.execute_batch(actions, 2'100);
  ASSERT_EQ(receipts.size(), 1u);
  EXPECT_TRUE(receipts[0].success) << receipts[0].revert_reason;
  const auto after_exec = engine.stats();
  EXPECT_GT(after_exec.hits, 0u);
  EXPECT_EQ(after_exec.misses, after_poll.misses) << "no re-hashing at execution time";
}

TEST_F(TowerFixture, AdvancesCheckpointFromSyncManager) {
  HeaderSyncManager sync(params);
  sync.sync_from(node.chain());

  core::Watchtower tower(node, psc, {judger, tower_psc});
  tower.attach_checkpoint_source(&sync);

  // Far enough past the lag (6 blocks) that an advance exists.
  for (int i = 0; i < 8; ++i) mine_with({});
  sync.sync_from(node.chain());

  const auto actions = tower.poll(1'000);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].method, "updateCheckpoint");

  // Duplicate suppression: same advance is not refiled.
  EXPECT_TRUE(tower.poll(1'100).empty());

  // Land it and confirm the contract checkpoint moved.
  ASSERT_TRUE(psc.execute_now(actions[0], 1'200).success);
  psc::PscTx q;
  q.from = tower_psc;
  q.to = judger;
  q.method = "getCheckpoint";
  const auto r = psc.view_call(q);
  ASSERT_TRUE(r.success);
  btc::BlockHash cp;
  std::copy(r.return_data.begin(), r.return_data.begin() + 32, cp.bytes.begin());
  EXPECT_TRUE(sync.on_best_chain(cp));
  EXPECT_NE(cp, cfg.initial_checkpoint);
  // Nothing new to file until the chain moves past the lag again.
  EXPECT_TRUE(tower.poll(1'300).empty());
}

// ---------------------------------------------------------------------------
// Header-tree persistence through the durable store

std::string sync_scratch_dir(const std::string& tag) {
  const auto p = std::filesystem::temp_directory_path() /
                 ("btcfast-dispute-sync-" + tag + "-" +
                  std::to_string(static_cast<unsigned long>(::getpid())));
  std::filesystem::remove_all(p);
  return p.string();
}

TEST_F(SyncFixture, PersistedTreeRestoresWithoutResync) {
  mine(25);
  mine_fork(20, 3);  // a side branch must survive the restart too

  const std::string dir = sync_scratch_dir("restore");
  store::StoreOptions opts;
  opts.policy = store::FsyncPolicy::kNone;
  auto st = store::DurableStore::open(dir, opts);
  ASSERT_NE(st, nullptr);

  HeaderSyncManager mgr(params);
  mgr.attach_store(st.get());
  mgr.sync_from(chain);
  // Feed the fork branch explicitly (sync_from follows the active chain).
  std::vector<btc::BlockHeader> fork_headers;
  for (std::uint32_t h = 21; h <= chain.height(); ++h) {
    const auto blk = chain.block_at_height(h);
    ASSERT_TRUE(blk.has_value());
    fork_headers.push_back(blk->header);
  }
  (void)mgr.accept_headers(fork_headers);
  const std::size_t tree_size = mgr.tree_size();
  const auto tip = mgr.tip_hash();
  ASSERT_EQ(st->image_copy().headers.size(), tree_size - 1);  // genesis isn't logged

  // Watchtower restart: reopen the store from disk, rebuild from the
  // recovered image — no re-sync from genesis.
  st->sync();
  st.reset();
  auto reopened = store::DurableStore::open(dir, opts);
  ASSERT_NE(reopened, nullptr);

  HeaderSyncManager restored(params);
  const std::size_t reconnected = restored.restore(reopened->image_copy());
  EXPECT_EQ(reconnected, tree_size - 1);
  EXPECT_EQ(restored.tree_size(), tree_size);
  EXPECT_EQ(restored.tip_hash(), tip);
  EXPECT_EQ(restored.tip_height(), mgr.tip_height());
  EXPECT_EQ(restored.tip_work(), mgr.tip_work());

  // Caught up: the next locator round against the node connects nothing.
  restored.attach_store(reopened.get());
  const auto r = restored.sync_round(chain);
  EXPECT_EQ(r.connected, 0u);

  // Restore didn't double-log: the store's header set is unchanged.
  EXPECT_EQ(reopened->image_copy().headers.size(), tree_size - 1);

  reopened.reset();
  std::filesystem::remove_all(dir);
}

TEST_F(SyncFixture, PersistenceSkipsRejectedAndDuplicateHeaders) {
  mine(5);
  const std::string dir = sync_scratch_dir("skip");
  store::StoreOptions opts;
  opts.policy = store::FsyncPolicy::kNone;
  auto st = store::DurableStore::open(dir, opts);
  ASSERT_NE(st, nullptr);

  HeaderSyncManager mgr(params);
  mgr.attach_store(st.get());
  mgr.sync_from(chain);
  ASSERT_EQ(st->image_copy().headers.size(), 5u);

  // A duplicate batch and an orphan (unknown parent) log nothing.
  std::vector<btc::BlockHeader> dup;
  const auto blk = chain.block_at_height(3);
  ASSERT_TRUE(blk.has_value());
  dup.push_back(blk->header);
  btc::BlockHeader orphan = blk->header;
  orphan.prev_hash.bytes[0] ^= 0xff;
  dup.push_back(orphan);
  const auto res = mgr.accept_headers(dup);
  EXPECT_EQ(res.connected, 0u);
  EXPECT_EQ(st->image_copy().headers.size(), 5u);

  st.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace btcfast::dispute
