// Eclipse-attack scenario: the adversary isolates the merchant's Bitcoin
// node and feeds it a private chain in which the payment "confirms",
// while the real network confirms a conflicting spend. Documents the SPV
// caveat honestly: an eclipsed merchant can be fooled into settling — and
// if the eclipse outlasts the binding expiry, the dispute window is gone.
// The mitigation (short dispute timers vs. binding TTL) is also shown.
#include <gtest/gtest.h>

#include "btc/pow.h"
#include "btcfast/orchestrator.h"
#include "btcsim/miner.h"

namespace btcfast::core {
namespace {

constexpr SimTime kSimHour = 60 * 60 * 1000;

struct EclipseRig {
  btc::ChainParams params = btc::ChainParams::regtest();
  sim::Simulator simulator;
  sim::Network net;
  sim::NodeId honest_miner;
  sim::NodeId merchant_node;
  sim::Party customer = sim::Party::make(1);
  sim::Party merchant = sim::Party::make(2);
  sim::Party miner = sim::Party::make(3);
  btc::OutPoint coin_op{};
  btc::Amount coin_value = 0;

  EclipseRig() : net(simulator, params, {}, 42) {
    honest_miner = net.add_node();
    merchant_node = net.add_node();
    const auto funding = sim::build_funding_chain(params, {customer.script}, 1);
    sim::seed_node(net.node(honest_miner), funding);
    sim::seed_node(net.node(merchant_node), funding);
    simulator.run_all();
    const auto coins = sim::find_spendable(net.node(merchant_node).chain(), customer.script);
    coin_op = coins.front().first;
    coin_value = coins.front().second.out.value;
  }

  /// Attacker privately mines `n` blocks on top of `node`'s current tip,
  /// including `txs` in the first one, feeding them ONLY to that node.
  void feed_private_blocks(sim::NodeId node, int n, std::vector<btc::Transaction> txs) {
    for (int i = 0; i < n; ++i) {
      btc::Block b = net.node(node).assemble_block(customer.script,
                                                   static_cast<std::uint32_t>(i + 1));
      b.txs.resize(1);  // drop mempool contents; attacker controls content
      if (i == 0) {
        for (auto& tx : txs) b.txs.push_back(tx);
      }
      // Distinguish from honest blocks.
      b.txs[0].inputs[0].sequence = 0xE0000000u + static_cast<std::uint32_t>(i);
      b.seal_merkle_root();
      ASSERT_TRUE(btc::mine_block(b, params));
      net.node(node).receive_block(b);
    }
  }
};

TEST(Eclipse, IsolatedNodeSeesOnlyAttackerChain) {
  EclipseRig rig;
  rig.net.set_isolated(rig.merchant_node, true);

  // The payment "confirms" 3-deep on the merchant's eclipsed view...
  const auto payment = sim::build_payment(rig.customer, rig.coin_op, rig.coin_value,
                                          rig.merchant.script, 5 * btc::kCoin);
  rig.net.node(rig.merchant_node).receive_tx(payment);
  rig.feed_private_blocks(rig.merchant_node, 3, {payment});
  EXPECT_EQ(rig.net.node(rig.merchant_node).chain().confirmations(payment.txid()), 3u);

  // ...while the honest network confirms the conflicting self-spend.
  const auto conflict = sim::build_payment(rig.customer, rig.coin_op, rig.coin_value,
                                           rig.customer.script, 5 * btc::kCoin, 2000);
  rig.net.node(rig.honest_miner).receive_tx(conflict);
  sim::MinerProcess proc(rig.net, rig.honest_miner, 1.0, rig.miner.script, 7);
  proc.start();
  rig.simulator.run_until(rig.simulator.now() + 90 * kMinute);
  proc.stop();

  EXPECT_GT(rig.net.node(rig.honest_miner).chain().confirmations(conflict.txid()), 0u);
  // The eclipsed merchant still believes in its private view.
  EXPECT_EQ(rig.net.node(rig.merchant_node).chain().confirmations(payment.txid()), 3u);
}

TEST(Eclipse, ReconnectionReorgsToTruth) {
  EclipseRig rig;
  rig.net.set_isolated(rig.merchant_node, true);
  rig.net.enable_sync(30 * kSecond);

  const auto payment = sim::build_payment(rig.customer, rig.coin_op, rig.coin_value,
                                          rig.merchant.script, 5 * btc::kCoin);
  rig.net.node(rig.merchant_node).receive_tx(payment);
  rig.feed_private_blocks(rig.merchant_node, 2, {payment});

  const auto conflict = sim::build_payment(rig.customer, rig.coin_op, rig.coin_value,
                                           rig.customer.script, 5 * btc::kCoin, 2000);
  rig.net.node(rig.honest_miner).receive_tx(conflict);
  sim::MinerProcess proc(rig.net, rig.honest_miner, 1.0, rig.miner.script, 7);
  proc.start();
  rig.simulator.run_until(rig.simulator.now() + 90 * kMinute);
  proc.stop();

  // The eclipse ends; anti-entropy pulls the (heavier) honest chain.
  rig.net.set_isolated(rig.merchant_node, false);
  rig.simulator.run_until(rig.simulator.now() + 5 * kMinute);

  EXPECT_EQ(rig.net.node(rig.merchant_node).chain().tip_hash(),
            rig.net.node(rig.honest_miner).chain().tip_hash());
  EXPECT_EQ(rig.net.node(rig.merchant_node).chain().confirmations(payment.txid()), 0u);
  EXPECT_GT(rig.net.node(rig.merchant_node).chain().confirmations(conflict.txid()), 0u);
}

TEST(Eclipse, DisputeStillWinnableIfBindingOutlivesEclipse) {
  // Full-stack: merchant eclipsed long enough to falsely settle, but the
  // binding TTL comfortably exceeds the eclipse; after reconnection the
  // merchant re-disputes and is compensated. The defense is generous
  // binding TTLs relative to plausible eclipse durations.
  DeploymentConfig cfg;
  cfg.seed = 91;
  cfg.settle_confirmations = 2;
  cfg.required_depth = 2;
  cfg.dispute_after_ms = 60 * 60 * 1000;
  cfg.evidence_window_ms = 45 * 60 * 1000;
  cfg.binding_ttl_ms = 24ULL * 60 * 60 * 1000;  // >> eclipse duration
  Deployment dep(cfg);

  const auto r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted);

  // Eclipse the merchant; the customer immediately *mines* the
  // conflicting spend into a block on the real chain (first-seen mempools
  // would reject the bare conflict tx, so the attacker self-mines it).
  const auto node_id = dep.merchant_node().id();
  dep.network().set_isolated(node_id, true);
  const auto first_tx = dep.merchant_node().mempool().get(r.txid);
  ASSERT_TRUE(first_tx.has_value());
  const auto coin_op = first_tx->inputs[0].prevout;
  const auto coin = dep.customer_node().chain().utxo().get(coin_op);
  const auto conflict =
      sim::build_payment(dep.customer().btc_identity(), coin_op, coin->out.value,
                         dep.customer().btc_identity().script, 5 * btc::kCoin, 3000);
  {
    btc::Block b = dep.customer_node().assemble_block(
        dep.customer().btc_identity().script, 1);
    b.txs.resize(1);  // coinbase only; the attacker picks the contents
    b.txs[0].inputs[0].sequence = 0xEC1153;
    b.txs.push_back(conflict);
    b.seal_merkle_root();
    ASSERT_TRUE(btc::mine_block(b, btc::ChainParams::regtest()));
    dep.customer_node().receive_block(b);  // relays to the (real) network
  }

  dep.network().enable_sync(30 * kSecond);
  dep.run_for(2 * kSimHour);
  dep.network().set_isolated(node_id, false);
  dep.run_for(6 * kSimHour);

  const auto s = dep.summarize();
  // The payment died on the real chain; the merchant disputed after
  // reconnection and won.
  EXPECT_EQ(dep.merchant_node().chain().confirmations(r.txid), 0u);
  EXPECT_EQ(s.disputes_opened, 1u);
  EXPECT_EQ(s.judged_for_merchant, 1u);
}

}  // namespace
}  // namespace btcfast::core
