// Tests for Bitcoin wire encodings: strict DER signatures and WIF keys.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/encoding.h"
#include "crypto/sha256.h"

namespace btcfast::crypto {
namespace {

Signature sample_signature(std::uint64_t seed) {
  const auto key = *PrivateKey::from_scalar(U256(seed));
  const auto digest = sha256(as_bytes(std::string("msg") + std::to_string(seed)));
  return ecdsa_sign(key, digest);
}

TEST(Der, RoundTripsRandomSignatures) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Signature sig = sample_signature(seed);
    const Bytes der = signature_to_der(sig);
    const auto back = signature_from_der(der);
    ASSERT_TRUE(back.has_value()) << seed;
    EXPECT_EQ(*back, sig) << seed;
    // DER is at most 72 bytes, at least 8.
    EXPECT_LE(der.size(), 72u);
    EXPECT_GE(der.size(), 8u);
  }
}

TEST(Der, SmallValuesEncodeMinimally) {
  // r = 1, s = 0x80 (needs a sign pad byte).
  const Signature sig{U256(1), U256(0x80)};
  const Bytes der = signature_to_der(sig);
  // 30 07 02 01 01 02 02 00 80  (content = 3 + 4 bytes)
  EXPECT_EQ(to_hex(der), "300702010102020080");
  const auto back = signature_from_der(der);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, sig);
}

TEST(Der, RejectsMalformedEncodings) {
  const Bytes good = signature_to_der(sample_signature(3));

  Bytes wrong_tag = good;
  wrong_tag[0] = 0x31;
  EXPECT_FALSE(signature_from_der(wrong_tag).has_value());

  Bytes wrong_len = good;
  wrong_len[1] ^= 1;
  EXPECT_FALSE(signature_from_der(wrong_len).has_value());

  Bytes truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(signature_from_der(truncated).has_value());

  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(signature_from_der(trailing).has_value());
}

TEST(Der, RejectsNonMinimalPadding) {
  // INTEGER 0x00 0x01 is non-minimal (0x01 alone suffices).
  const auto bad = *from_hex("300802020001020200" "80");
  EXPECT_FALSE(signature_from_der(bad).has_value());
}

TEST(Der, RejectsNegativeIntegers) {
  // INTEGER with the high bit set and no pad reads as negative.
  const auto bad = *from_hex("30060201810201" "01");
  EXPECT_FALSE(signature_from_der(bad).has_value());
}

TEST(Wif, RoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const auto raw = rng.bytes<32>();
    const auto key = PrivateKey::from_bytes({raw.data(), raw.size()});
    if (!key) continue;
    const std::string wif = private_key_to_wif(*key);
    const auto back = private_key_from_wif(wif);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->scalar(), key->scalar());
    EXPECT_TRUE(wif[0] == 'K' || wif[0] == 'L');  // compressed mainnet prefix
  }
}

TEST(Wif, KnownVector) {
  // The classic test key: scalar 1.
  const auto key = *PrivateKey::from_scalar(U256(1));
  EXPECT_EQ(private_key_to_wif(key),
            "KwDiBf89QgGbjEhKnhXJuH7LrciVrZi3qYjgd9M7rFU73sVHnoWn");
}

TEST(Wif, RejectsCorruption) {
  const auto key = *PrivateKey::from_scalar(U256(42));
  std::string wif = private_key_to_wif(key);
  wif[10] = wif[10] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(private_key_from_wif(wif).has_value());
  EXPECT_FALSE(private_key_from_wif("not-a-wif").has_value());
}

}  // namespace
}  // namespace btcfast::crypto
