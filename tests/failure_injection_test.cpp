// Failure-injection tests: message loss, partitioned delivery, evidence
// at window edges, and PSC-chain liveness failure — the conditions a
// deployed BTCFast must tolerate (or whose failure modes it must expose
// honestly).
#include <gtest/gtest.h>

#include "btc/pow.h"
#include "btcfast/evidence.h"
#include "btcfast/orchestrator.h"
#include "btcsim/miner.h"

namespace btcfast::core {
namespace {

constexpr SimTime kSimHour = 60 * 60 * 1000;

TEST(FailureInjection, LossyNetworkStillConvergesWithSync) {
  sim::Simulator simulator;
  btc::ChainParams params = btc::ChainParams::regtest();
  sim::NetworkConfig ncfg;
  ncfg.loss_rate = 0.4;  // heavy loss
  sim::Network net(simulator, params, ncfg, 71);
  net.enable_sync(30 * kSecond);

  std::vector<sim::NodeId> ids;
  std::vector<std::unique_ptr<sim::MinerProcess>> procs;
  const sim::Party miner = sim::Party::make(6);
  for (int i = 0; i < 4; ++i) {
    ids.push_back(net.add_node());
    procs.push_back(std::make_unique<sim::MinerProcess>(net, ids.back(), 0.25, miner.script,
                                                        500 + static_cast<std::uint64_t>(i)));
    procs.back()->start();
  }
  simulator.run_until(static_cast<SimTime>(params.block_interval_s) * 1000 * 20);
  for (auto& p : procs) p->stop();
  // One more sync cycle to settle.
  simulator.run_until(simulator.now() + 2 * kMinute);

  EXPECT_GT(net.drops(), 0u);  // loss actually happened
  const auto tip = net.node(ids[0]).chain().tip_hash();
  for (auto id : ids) {
    EXPECT_EQ(net.node(id).chain().tip_hash(), tip) << "node " << id << " diverged";
  }
  EXPECT_GT(net.node(ids[0]).chain().height(), 8u);
}

TEST(FailureInjection, LossyNetworkWithoutSyncDiverges) {
  // Negative control: the same loss with no recovery path leaves nodes
  // stuck behind (documents why enable_sync exists).
  sim::Simulator simulator;
  btc::ChainParams params = btc::ChainParams::regtest();
  sim::NetworkConfig ncfg;
  ncfg.loss_rate = 0.6;
  sim::Network net(simulator, params, ncfg, 72);

  const auto a = net.add_node();
  const auto b = net.add_node();
  const sim::Party miner = sim::Party::make(6);
  sim::MinerProcess proc(net, a, 1.0, miner.script, 501);
  proc.start();
  simulator.run_until(static_cast<SimTime>(params.block_interval_s) * 1000 * 15);
  proc.stop();
  simulator.run_all();

  // The miner's own chain grew; the peer, behind a 60%-loss link with no
  // sync, almost surely missed at least one block forever.
  EXPECT_GT(net.node(a).chain().height(), net.node(b).chain().height());
}

TEST(FailureInjection, FastPayEndToEndSurvivesMessageLoss) {
  DeploymentConfig cfg;
  cfg.seed = 73;
  cfg.net.loss_rate = 0.25;
  cfg.settle_confirmations = 3;
  Deployment dep(cfg);

  const auto r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted) << r.reject_reason;
  dep.run_for(4 * kSimHour);

  const auto s = dep.summarize();
  EXPECT_EQ(s.payments_settled, 1u);
  EXPECT_EQ(s.disputes_opened, 0u);
  EXPECT_GT(dep.network().drops(), 0u);
}

TEST(FailureInjection, EvidenceAtWindowEdgeStillCounts) {
  // Submit evidence in the very last millisecond of the window.
  btc::ChainParams params = btc::ChainParams::regtest();
  btc::Chain chain(params);
  const sim::Party customer = sim::Party::make(11);
  const sim::Party merchant = sim::Party::make(22);
  for (const auto& b : sim::build_funding_chain(params, {customer.script}, 2)) {
    (void)chain.submit_block(b);
  }

  PayJudgerConfig jcfg;
  jcfg.pow_limit = params.pow_limit;
  jcfg.initial_checkpoint = chain.tip_hash();
  jcfg.required_depth = 2;
  jcfg.evidence_window_ms = 1000;
  jcfg.min_collateral = 100;
  jcfg.dispute_bond = 10;
  psc::PscChain psc;
  const auto judger = psc.deploy("payjudger", std::make_unique<PayJudger>(jcfg));
  const auto customer_psc = psc::Address::from_label("c");
  const auto merchant_psc = psc::Address::from_label("m");
  psc.mint(customer_psc, 1'000'000'000);
  psc.mint(merchant_psc, 1'000'000'000);
  CustomerWallet wallet(customer, customer_psc, 1);
  ASSERT_TRUE(psc.execute_now(wallet.make_deposit_tx(judger, 10'000, 1ULL << 40), 0).success);

  const auto coins = sim::find_spendable(chain, customer.script);
  Invoice inv;
  inv.amount_sat = coins[0].second.out.value / 2;
  inv.compensation = 5'000;
  inv.pay_to = merchant.script;
  inv.merchant_psc = merchant_psc;
  inv.expires_at_ms = 1ULL << 40;
  auto pkg = wallet.create_fastpay(inv, coins[0].first, coins[0].second.out.value, 0, 1ULL << 40);

  psc::PscTx open;
  open.from = merchant_psc;
  open.to = judger;
  open.value = 10;
  open.method = "openDispute";
  open.args = encode_open_dispute_args(1, pkg.binding);
  ASSERT_TRUE(psc.execute_now(open, 100).success);  // deadline = 1100

  // Mine two blocks so the merchant has evidence.
  for (int i = 0; i < 2; ++i) {
    btc::Block b;
    b.header.prev_hash = chain.tip_hash();
    b.header.time = chain.tip_header().time + 1;
    b.header.bits = params.genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = 0x9000 + static_cast<std::uint32_t>(i);
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, merchant.script});
    b.txs.push_back(cb);
    ASSERT_TRUE(btc::mine_block(b, params));
    ASSERT_EQ(chain.submit_block(b), btc::SubmitResult::kActiveTip);
  }
  const auto headers = *headers_since(chain, jcfg.initial_checkpoint);

  psc::PscTx ev;
  ev.from = merchant_psc;
  ev.to = judger;
  ev.method = "submitMerchantEvidence";
  ev.args = encode_merchant_evidence_args(1, headers);
  ev.gas_limit = 8'000'000;
  // Exactly at the deadline: accepted.
  EXPECT_TRUE(psc.execute_now(ev, 1100).success);
  // One past: rejected.
  const auto late = psc.execute_now(ev, 1101);
  EXPECT_EQ(late.revert_reason, "evidence-window-closed");
}

TEST(FailureInjection, PscLivenessFailureDelaysButDoesNotLoseDispute) {
  // The PSC chain halts (no blocks produced) right after the double spend.
  // The merchant's dispute txs queue; when the chain resumes, everything
  // still resolves — the liveness assumption affects *when*, not *whether*.
  DeploymentConfig cfg;
  cfg.seed = 21;
  cfg.attacker_share = 0.6;
  cfg.attacker_give_up_deficit = 50;
  cfg.required_depth = 3;
  cfg.dispute_after_ms = 60 * 60 * 1000;
  cfg.evidence_window_ms = 45 * 60 * 1000;
  // A grotesque 2.5-hour PSC block interval ≈ a halted chain resuming.
  cfg.psc_block_interval_ms = 150ULL * 60 * 1000;
  Deployment dep(cfg);

  const auto r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted);
  dep.run_for(16 * kSimHour);

  const auto s = dep.summarize();
  EXPECT_EQ(s.disputes_opened, 1u);
  // Resolution happened despite the stalled chain (later than usual).
  EXPECT_EQ(s.judged_for_merchant + s.judged_for_customer, 1u);
}

}  // namespace
}  // namespace btcfast::core
