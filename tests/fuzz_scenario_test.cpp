// The adversarial scenario fuzzer harness. Two entry modes:
//
//   fuzz_scenario_test                       run the gtest suite (batch
//                                            fuzz + directed coverage)
//   fuzz_scenario_test --replay <seed>       replay exactly one sampled
//            [--mutate <invariant>]          scenario and print its fate
//
// The batch test runs BTCFAST_SCENARIO_SEEDS seeds (default 100) from
// BTCFAST_SCENARIO_BASE (default 1). On any invariant violation it
// prints and dumps a one-line repro (`--replay <seed>`) plus the
// shrunken event trace, so every red run is reproducible byte-for-byte.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <gtest/gtest.h>

#include "btc/header.h"
#include "testkit/scenario_fuzzer.h"

namespace btcfast::testkit {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::string report_path(std::uint64_t seed) {
  const char* dir = std::getenv("BTCFAST_FUZZ_REPORT_DIR");
  std::string base = (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : std::string{};
  return base + "fuzz_scenario_repro_" + std::to_string(seed) + ".txt";
}

// ---------------------------------------------------------------------
// Batch fuzzing: many sampled seeds, every invariant checked after every
// network event, shrink + repro on failure.
// ---------------------------------------------------------------------

TEST(ScenarioFuzz, BatchSeeds) {
  const std::uint64_t count = env_u64("BTCFAST_SCENARIO_SEEDS", 100);
  const std::uint64_t base = env_u64("BTCFAST_SCENARIO_BASE", 1);

  std::size_t accepted = 0;
  std::size_t settled = 0;
  std::size_t disputes = 0;
  std::size_t merchant_wins = 0;
  std::size_t customer_wins = 0;
  std::size_t releases = 0;
  std::size_t beyond_bound = 0;
  std::uint64_t drops = 0;
  std::uint64_t checks = 0;

  for (std::uint64_t s = base; s < base + count; ++s) {
    const ScenarioConfig config = sample_scenario(s);
    const ScenarioOutcome outcome = run_scenario(config);
    if (outcome.violation) {
      // Build the full triaged report (with shrinking) and dump it.
      const auto report = fuzz_one_seed(s);
      ASSERT_TRUE(report.has_value());  // same seed, same violation
      const std::string text = format_report(*report);
      write_report(*report, report_path(s));
      ADD_FAILURE() << text;
      continue;
    }
    accepted += outcome.payments_accepted;
    settled += outcome.settled;
    disputes += outcome.disputes_opened;
    merchant_wins += outcome.judged_for_merchant;
    customer_wins += outcome.judged_for_customer;
    releases += outcome.attack_released ? 1 : 0;
    beyond_bound += outcome.beyond_security_bound ? 1 : 0;
    drops += outcome.net_drops;
    checks += outcome.invariant_checks;
  }

  std::cout << "[scenario-fuzz] seeds=" << count << " accepted=" << accepted
            << " settled=" << settled << " disputes=" << disputes
            << " merchant_wins=" << merchant_wins << " customer_wins=" << customer_wins
            << " attacks_released=" << releases << " beyond_bound=" << beyond_bound
            << " drops=" << drops << " invariant_checks=" << checks << "\n";

  // The sampled space must actually exercise the protocol, not just
  // spin an idle simulator.
  EXPECT_GT(accepted, count / 2) << "fuzzer barely accepts payments";
  EXPECT_GT(settled + merchant_wins + customer_wins, 0u);
  EXPECT_GT(checks, count * 10) << "invariants barely evaluated";
}

// Same seed, same run: every observable counter must match. This is the
// property the one-line repro depends on.
TEST(ScenarioFuzz, ReplayIsDeterministic) {
  const std::uint64_t seed = env_u64("BTCFAST_SCENARIO_BASE", 1) + 7;
  const ScenarioConfig a = sample_scenario(seed);
  const ScenarioConfig b = sample_scenario(seed);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.summary(), b.summary());

  const ScenarioOutcome r1 = run_scenario(a);
  const ScenarioOutcome r2 = run_scenario(b);
  EXPECT_EQ(r1.payments_accepted, r2.payments_accepted);
  EXPECT_EQ(r1.settled, r2.settled);
  EXPECT_EQ(r1.disputes_opened, r2.disputes_opened);
  EXPECT_EQ(r1.judged_for_merchant, r2.judged_for_merchant);
  EXPECT_EQ(r1.judged_for_customer, r2.judged_for_customer);
  EXPECT_EQ(r1.net_drops, r2.net_drops);
  EXPECT_EQ(r1.net_duplicates, r2.net_duplicates);
  EXPECT_EQ(r1.attacker_secret_blocks, r2.attacker_secret_blocks);
  EXPECT_EQ(r1.invariant_checks, r2.invariant_checks);
  EXPECT_EQ(r1.violation.has_value(), r2.violation.has_value());
}

// ---------------------------------------------------------------------
// Mutation testing: negate one checker and the harness must (a) flag a
// healthy run and (b) reproduce that flag from the printed seed. This
// proves the checkers are live, not vacuously green.
// ---------------------------------------------------------------------

TEST(ScenarioFuzz, MutatedCheckerReproducesFromPrintedSeed) {
  const char* kMutants[] = {"value-conservation", "escrow-accounting", "exposure-bounded",
                            "no-double-release", "dispute-resolved"};
  const std::uint64_t seed = 3;
  for (const char* mutant : kMutants) {
    SCOPED_TRACE(mutant);
    const auto report = fuzz_one_seed(seed, mutant);
    ASSERT_TRUE(report.has_value()) << "flipped checker did not fire";
    EXPECT_EQ(report->violation.invariant, mutant);
    // Parse the seed back out of the printed repro line and replay it.
    const std::string& line = report->repro_line;
    const auto pos = line.find("--replay ");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::uint64_t printed = std::strtoull(line.c_str() + pos + 9, nullptr, 10);
    EXPECT_EQ(printed, seed);

    RunOptions options;
    options.mutate_invariant = mutant;
    const ScenarioOutcome replayed = run_scenario(sample_scenario(printed), options);
    ASSERT_TRUE(replayed.violation.has_value());
    EXPECT_EQ(replayed.violation->invariant, report->violation.invariant);
    EXPECT_EQ(replayed.violation->at, report->violation.at);
    EXPECT_EQ(replayed.violation->check_index, report->violation.check_index);
    EXPECT_EQ(replayed.violation->detail, report->violation.detail);
  }
}

// ---------------------------------------------------------------------
// Directed coverage: deterministic configs guaranteeing each acceptance
// scenario class is exercised regardless of what the sampler draws.
// ---------------------------------------------------------------------

core::DeploymentConfig fast_params_config(std::uint64_t seed) {
  core::DeploymentConfig d;
  d.seed = seed;
  d.params.pow_limit = crypto::U256::one() << 250;
  d.params.genesis_bits = btc::target_to_bits(d.params.pow_limit);
  d.required_depth = 2;
  d.settle_confirmations = 2;
  d.dispute_after_ms = 15 * 60 * 1000;
  d.evidence_window_ms = 30 * 60 * 1000;
  d.poll_interval_ms = 30'000;
  d.psc_block_interval_ms = 10'000;
  d.funded_coins = 2;
  return d;
}

ScenarioEvent pay_event(SimTime at, btc::Amount amount) {
  ScenarioEvent ev;
  ev.kind = ScenarioEvent::Kind::kFastPay;
  ev.at = at;
  ev.amount = amount;
  return ev;
}

TEST(ScenarioDirected, SuccessfulFastPay) {
  ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.deployment = fast_params_config(11);
  // Leave comfortably more than settle_confirmations' worth of expected
  // block time before the dispute timer, so the happy path stays clean.
  cfg.deployment.dispute_after_ms = 60 * 60 * 1000;
  cfg.events.push_back(pay_event(2 * kMinute, 500'000));
  cfg.horizon = 2 * kHour;

  const ScenarioOutcome out = run_scenario(cfg);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->invariant << ": "
                                          << out.violation->detail;
  EXPECT_EQ(out.payments_accepted, 1u);
  EXPECT_EQ(out.settled, 1u);
  EXPECT_EQ(out.disputes_opened, 0u);
}

TEST(ScenarioDirected, DoubleSpendLeadsToDisputeWin) {
  ScenarioConfig cfg;
  cfg.seed = 12;
  cfg.deployment = fast_params_config(12);
  // Impatient attacker: releases the conflicting branch as soon as it is
  // ahead, orphaning the unconfirmed payment; the merchant's dispute
  // then wins compensation because the customer cannot prove inclusion.
  cfg.deployment.attacker_share = 0.30;
  cfg.deployment.attacker_release_confirmations = 0;
  cfg.deployment.attacker_give_up_deficit = 8;
  cfg.deployment.settle_confirmations = 4;
  cfg.events.push_back(pay_event(2 * kMinute, 500'000));
  cfg.horizon = 3 * kHour;

  const ScenarioOutcome out = run_scenario(cfg);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->invariant << ": "
                                          << out.violation->detail;
  EXPECT_EQ(out.payments_accepted, 1u);
  if (out.attack_released && out.settled == 0) {
    // The race actually displaced the payment: the dispute path must
    // have made the merchant whole.
    EXPECT_GE(out.disputes_opened, 1u);
    EXPECT_GE(out.judged_for_merchant, 1u);
  } else {
    // The attack fizzled (gave up / payment confirmed anyway): the
    // payment settles normally.
    EXPECT_GE(out.settled + out.judged_for_merchant, 1u);
  }
}

TEST(ScenarioDirected, ReorgPastJudgmentDepth) {
  ScenarioConfig cfg;
  cfg.seed = 13;
  cfg.deployment = fast_params_config(13);
  // Majority attacker that deliberately waits until the payment is past
  // the judgment depth before releasing: the reorg defeats the k-conf
  // bound, which the harness must classify as beyond the security bound
  // rather than as a protocol violation.
  cfg.deployment.attacker_share = 0.70;
  cfg.deployment.attacker_release_confirmations = 3;  // > required_depth=2
  cfg.deployment.attacker_give_up_deficit = 40;
  cfg.deployment.settle_confirmations = 2;
  cfg.events.push_back(pay_event(2 * kMinute, 500'000));
  cfg.horizon = 4 * kHour;

  const ScenarioOutcome out = run_scenario(cfg);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->invariant << ": "
                                          << out.violation->detail;
  EXPECT_EQ(out.payments_accepted, 1u);
  EXPECT_TRUE(out.attack_released);
  EXPECT_GT(out.attacker_secret_blocks, cfg.deployment.required_depth);
  EXPECT_TRUE(out.beyond_security_bound);
  EXPECT_GE(out.merchant_max_reorg, cfg.deployment.required_depth);
}

TEST(ScenarioDirected, WatchtowerCrashRestartDuringDispute) {
  ScenarioConfig cfg;
  cfg.seed = 14;
  cfg.deployment = fast_params_config(14);
  // Offline customer + impatient merchant: the dispute opens while the
  // payment is still confirming (a wrongful dispute). The watchtower is
  // the only defender — and it crashes before the dispute and restarts
  // mid-window, so the defense must survive a crash-restart cycle.
  cfg.deployment.customer_online = false;
  cfg.deployment.watchtower_enabled = true;
  cfg.deployment.settle_confirmations = 12;
  cfg.deployment.dispute_after_ms = 10 * 60 * 1000;
  cfg.deployment.evidence_window_ms = 45 * 60 * 1000;
  cfg.events.push_back(pay_event(1 * kMinute, 500'000));
  cfg.events.push_back({ScenarioEvent::Kind::kWatchtowerCrash, 8 * kMinute});
  cfg.events.push_back({ScenarioEvent::Kind::kWatchtowerRestart, 30 * kMinute});
  cfg.horizon = 4 * kHour;

  const ScenarioOutcome out = run_scenario(cfg);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->invariant << ": "
                                          << out.violation->detail;
  EXPECT_EQ(out.payments_accepted, 1u);
  EXPECT_GE(out.disputes_opened, 1u);
  EXPECT_TRUE(out.watchtower_cycled);
  // The restarted tower proves inclusion: judgment goes to the customer.
  EXPECT_GE(out.judged_for_customer, 1u);
  EXPECT_EQ(out.judged_for_merchant, 0u);
}

TEST(ScenarioDirected, WatchtowerCrashRestartRecoversFromStore) {
  ScenarioConfig cfg;
  cfg.seed = 16;
  cfg.deployment = fast_params_config(16);
  // Same wrongful-dispute setup as above, but durable: the restart
  // genuinely wipes the tower and rebuilds it from snapshot + WAL, and
  // the run fails unless the recovered image is byte-identical to the
  // pre-crash state. The gateway route makes the reservation/accept
  // records flow through the same store.
  cfg.deployment.customer_online = false;
  cfg.deployment.watchtower_enabled = true;
  cfg.deployment.settle_confirmations = 12;
  cfg.deployment.dispute_after_ms = 10 * 60 * 1000;
  cfg.deployment.evidence_window_ms = 45 * 60 * 1000;
  cfg.use_gateway = true;
  cfg.use_store = true;
  cfg.events.push_back(pay_event(1 * kMinute, 500'000));
  cfg.events.push_back({ScenarioEvent::Kind::kWatchtowerCrash, 8 * kMinute});
  cfg.events.push_back({ScenarioEvent::Kind::kWatchtowerRestart, 30 * kMinute});
  cfg.horizon = 4 * kHour;

  const ScenarioOutcome out = run_scenario(cfg);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->invariant << ": "
                                          << out.violation->detail;
  EXPECT_EQ(out.payments_accepted, 1u);
  EXPECT_TRUE(out.watchtower_cycled);
  EXPECT_TRUE(out.store_recovered);
  EXPECT_TRUE(out.store_recovery_exact);
  EXPECT_GE(out.judged_for_customer, 1u);
  EXPECT_EQ(out.judged_for_merchant, 0u);
}

TEST(ScenarioDirected, MessageLossRecovery) {
  ScenarioConfig cfg;
  cfg.seed = 15;
  cfg.deployment = fast_params_config(15);
  cfg.deployment.net.loss_rate = 0.25;
  cfg.deployment.net.dup_rate = 0.10;
  cfg.events.push_back(pay_event(2 * kMinute, 500'000));
  cfg.horizon = 3 * kHour;

  const ScenarioOutcome out = run_scenario(cfg);
  ASSERT_FALSE(out.violation.has_value()) << out.violation->invariant << ": "
                                          << out.violation->detail;
  EXPECT_EQ(out.payments_accepted, 1u);
  EXPECT_GT(out.net_drops, 0u);
  EXPECT_GT(out.net_duplicates, 0u);
  // Anti-entropy sync must converge the views: the payment resolves
  // (settled, or compensated if loss delayed it past the dispute timer).
  EXPECT_GE(out.settled + out.judged_for_merchant + out.judged_for_customer, 1u);
}

}  // namespace
}  // namespace btcfast::testkit

namespace {

int run_replay(std::uint64_t seed, const std::string& mutate) {
  using namespace btcfast::testkit;
  const ScenarioConfig config = sample_scenario(seed);
  std::cout << "replaying " << config.summary() << "\n";
  const auto report = fuzz_one_seed(seed, mutate);
  if (report.has_value()) {
    std::cout << format_report(*report);
    return 1;
  }
  const ScenarioOutcome out = run_scenario(config);
  std::cout << "seed " << seed << " passed: accepted=" << out.payments_accepted
            << " settled=" << out.settled << " disputes=" << out.disputes_opened
            << " merchant_wins=" << out.judged_for_merchant
            << " customer_wins=" << out.judged_for_customer
            << " beyond_bound=" << out.beyond_security_bound
            << " checks=" << out.invariant_checks << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t replay_seed = 0;
  bool replay = false;
  std::string mutate;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay = true;
      replay_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--mutate") == 0 && i + 1 < argc) {
      mutate = argv[++i];
    }
  }
  if (replay) return run_replay(replay_seed, mutate);

  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
