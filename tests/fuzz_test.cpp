// Robustness fuzzing (deterministic, seeded): parsers must never crash or
// accept inconsistent data; the PayJudger contract must preserve value-
// conservation invariants under arbitrary operation sequences; chains
// must converge regardless of block delivery order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "btc/chain.h"
#include "btc/pow.h"
#include "btc/spv.h"
#include "btcfast/customer.h"
#include "btcfast/payjudger.h"
#include "btcsim/node.h"
#include "btcsim/scenario.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "crypto/base58.h"
#include "dispute/header_sync.h"
#include "dispute/storm_engine.h"
#include "gateway/wire.h"
#include "net/frame_assembler.h"
#include "store/records.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace btcfast {
namespace {

// Per-seed iteration count for the decoder corpus. The default keeps the
// tier-1 run fast; `scripts/tier1.sh --fuzz-smoke` raises it via
// BTCFAST_FUZZ_ITERS (2000 x 5 seeds = a 10k-iteration corpus per
// decoder) under the ASan/UBSan builds.
int fuzz_iters(int fallback) {
  static const int scaled = [] {
    const char* v = std::getenv("BTCFAST_FUZZ_ITERS");
    return (v != nullptr && *v != '\0') ? std::atoi(v) : 0;
  }();
  return scaled > 0 ? scaled : fallback;
}

// ---------------------------------------------------------------- parsers

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashParsers) {
  Rng rng(GetParam());
  for (int i = 0; i < fuzz_iters(200); ++i) {
    const std::size_t len = rng.below(512);
    Bytes junk(len);
    rng.fill({junk.data(), junk.size()});

    (void)btc::Transaction::deserialize(junk);
    (void)btc::BlockHeader::deserialize(junk);
    (void)btc::TxInclusionProof::deserialize(junk);
    (void)btc::deserialize_headers(junk);
    (void)core::PaymentBinding::deserialize(junk);
    (void)core::SignedBinding::deserialize(junk);
    (void)core::FastPayPackage::deserialize(junk);
    (void)gateway::Frame::deserialize(junk);
    (void)gateway::SubmitFastPayRequest::deserialize(junk);
    (void)gateway::QueryEscrowRequest::deserialize(junk);
    (void)gateway::GetReceiptRequest::deserialize(junk);
    (void)gateway::FastPayResultResponse::deserialize(junk);
    (void)gateway::EscrowInfoResponse::deserialize(junk);
    (void)gateway::ReceiptInfoResponse::deserialize(junk);
    (void)gateway::RetryAfterResponse::deserialize(junk);
    (void)gateway::ErrorResponse::deserialize(junk);
    (void)crypto::base58_decode(std::string(junk.begin(), junk.end()));
    (void)crypto::base58check_decode(std::string(junk.begin(), junk.end()));
    (void)store::StoreRecord::deserialize(junk);
    (void)store::decode_snapshot(junk);
    (void)store::scan_wal(junk);
  }
}

TEST_P(ParserFuzz, SuccessfulParsesRoundTrip) {
  Rng rng(GetParam() * 31 + 5);
  for (int i = 0; i < fuzz_iters(100); ++i) {
    const std::size_t len = rng.below(256);
    Bytes junk(len);
    rng.fill({junk.data(), junk.size()});

    if (auto tx = btc::Transaction::deserialize(junk)) {
      EXPECT_EQ(btc::Transaction::deserialize(tx->serialize()), tx);
    }
    if (auto h = btc::BlockHeader::deserialize(junk)) {
      EXPECT_EQ(h->serialize(), junk);  // headers are fixed-width: exact
    }
    if (auto b = core::PaymentBinding::deserialize(junk)) {
      EXPECT_EQ(b->serialize(), junk);
    }
    // Gateway wire decoders: a successful parse must survive re-encoding
    // (field-level round trip; varint prefixes may be re-canonicalized).
    if (auto f = gateway::Frame::deserialize(junk)) {
      const auto again = gateway::Frame::deserialize(f->serialize());
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(again->type, f->type);
      EXPECT_EQ(again->request_id, f->request_id);
      EXPECT_EQ(again->payload, f->payload);
    }
    if (auto e = gateway::EscrowInfoResponse::deserialize(junk)) {
      EXPECT_EQ(e->serialize(), junk);  // fixed-width fields: exact
    }
    if (auto ra = gateway::RetryAfterResponse::deserialize(junk)) {
      EXPECT_EQ(ra->serialize(), junk);
    }
  }
}

TEST_P(ParserFuzz, BitFlippedValidMessagesHandled) {
  Rng rng(GetParam() * 77 + 3);
  const sim::Party party = sim::Party::make(GetParam());

  // A genuinely valid FastPayPackage to mutate.
  core::Invoice inv;
  inv.amount_sat = btc::kCoin;
  inv.compensation = 1000;
  inv.pay_to = party.script;
  inv.merchant_psc = psc::Address::from_label("m");
  inv.expires_at_ms = 1000000;
  core::CustomerWallet wallet(party, psc::Address::from_label("c"), 1);
  btc::OutPoint coin;
  coin.txid.bytes[0] = 0x42;
  auto pkg = wallet.create_fastpay(inv, coin, 2 * btc::kCoin, 0, 1000000);
  const Bytes valid = pkg.serialize();

  for (int i = 0; i < fuzz_iters(100); ++i) {
    Bytes mutated = valid;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    // Must not crash; if it parses, the binding signature must fail unless
    // the mutation missed all signed bytes.
    if (auto parsed = core::FastPayPackage::deserialize(mutated)) {
      if (parsed->binding.binding != pkg.binding.binding) {
        EXPECT_FALSE(parsed->binding.verify(party.pub));
      }
    }
  }
}

TEST_P(ParserFuzz, BitFlippedValidGatewayFramesHandled) {
  Rng rng(GetParam() * 131 + 7);
  const sim::Party party = sim::Party::make(GetParam() + 50);

  core::Invoice inv;
  inv.amount_sat = btc::kCoin;
  inv.compensation = 1000;
  inv.pay_to = party.script;
  inv.merchant_psc = psc::Address::from_label("m");
  inv.expires_at_ms = 1000000;
  core::CustomerWallet wallet(party, psc::Address::from_label("c"), 1);
  btc::OutPoint coin;
  coin.txid.bytes[0] = 0x24;
  gateway::SubmitFastPayRequest req;
  req.invoice_id = 9;
  req.package = wallet.create_fastpay(inv, coin, 2 * btc::kCoin, 0, 1000000);
  const Bytes valid =
      gateway::make_frame(gateway::MsgType::kSubmitFastPay, 1, req.serialize());

  for (int i = 0; i < fuzz_iters(100); ++i) {
    Bytes mutated = valid;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    // The whole decode chain must stay total: frame, then payload.
    if (auto frame = gateway::Frame::deserialize(mutated)) {
      (void)gateway::SubmitFastPayRequest::deserialize(frame->payload);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<std::uint64_t>(1, 6));

// ------------------------------------------------------- durable store

class StoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

namespace {

/// A WAL image of `n` random-payload records, recording each payload so
/// the corruption tests can check "never fabricated, never altered".
struct WalImage {
  Bytes bytes;
  std::vector<Bytes> payloads;
};

WalImage sample_wal(Rng& rng, std::size_t n) {
  WalImage img;
  store::append_wal_header(img.bytes);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes payload(1 + rng.below(64));
    rng.fill({payload.data(), payload.size()});
    store::append_wal_record(img.bytes, i + 1, payload);
    img.payloads.push_back(std::move(payload));
  }
  return img;
}

/// The safety property every corrupted scan must satisfy: either the
/// scan fails closed, or it returns a strict-or-full prefix of the
/// original records, byte-identical — corruption may drop a suffix but
/// can never invent or alter a record.
void expect_prefix_or_error(const store::WalScan& scan, const WalImage& img,
                            const std::string& what) {
  if (!scan.ok()) return;
  ASSERT_LE(scan.records.size(), img.payloads.size()) << what;
  for (std::size_t r = 0; r < scan.records.size(); ++r) {
    ASSERT_EQ(scan.records[r].seq, r + 1) << what;
    ASSERT_EQ(scan.records[r].payload, img.payloads[r]) << what;
  }
}

}  // namespace

TEST_P(StoreFuzz, TruncatedWalYieldsOnlyCompletePrefix) {
  Rng rng(GetParam() * 271 + 9);
  for (int i = 0; i < fuzz_iters(50); ++i) {
    const WalImage img = sample_wal(rng, 1 + rng.below(6));
    const std::size_t cut = rng.below(img.bytes.size() + 1);
    const auto scan = store::scan_wal({img.bytes.data(), cut}, 1);
    ASSERT_TRUE(scan.ok()) << scan.error;  // a prefix is always a crash shape
    expect_prefix_or_error(scan, img, "cut " + std::to_string(cut));
    EXPECT_EQ(scan.truncated_tail, cut != img.bytes.size() &&
                                       scan.valid_bytes != cut);
  }
}

TEST_P(StoreFuzz, BitFlippedWalNeverFabricatesRecords) {
  Rng rng(GetParam() * 911 + 13);
  for (int i = 0; i < fuzz_iters(50); ++i) {
    const WalImage img = sample_wal(rng, 1 + rng.below(6));
    Bytes mutated = img.bytes;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    expect_prefix_or_error(store::scan_wal(mutated, 1), img,
                           "flip at " + std::to_string(pos));
  }
}

TEST_P(StoreFuzz, DuplicateAndReorderedSequencesFailClosed) {
  Rng rng(GetParam() * 577 + 21);
  for (int i = 0; i < fuzz_iters(50); ++i) {
    Bytes image;
    store::append_wal_header(image);
    // Two records with a broken sequence relation: duplicate, skip, or
    // regression. Replay protection must refuse all of them.
    const std::uint64_t first = 1 + rng.below(100);
    std::uint64_t second = first + 1;
    switch (rng.below(3)) {
      case 0: second = first; break;                    // duplicate
      case 1: second = first + 2 + rng.below(10); break;  // gap
      case 2: second = first - rng.below(first); break;   // regression
    }
    Bytes p1(8), p2(8);
    rng.fill({p1.data(), p1.size()});
    rng.fill({p2.data(), p2.size()});
    store::append_wal_record(image, first, p1);
    store::append_wal_record(image, second, p2);
    const auto scan = store::scan_wal(image, first);
    EXPECT_FALSE(scan.ok()) << "first=" << first << " second=" << second;
  }
}

TEST_P(StoreFuzz, BitFlippedSnapshotsFailClosed) {
  Rng rng(GetParam() * 383 + 29);
  store::StateImage img;
  img.last_seq = 12;
  for (std::uint8_t i = 0; i < 4; ++i) {
    store::ReservationImage res;
    res.id = 100u + i;
    res.escrow_id = 1 + rng.below(3);
    res.amount = 1 + rng.below(1'000'000);
    res.expires_at_ms = rng.below(1'000'000);
    res.txid[0] = i;
    img.reservations.push_back(res);
  }
  store::DisputeImage dis;
  dis.escrow_id = 2;
  dis.txid[3] = 0x7e;
  dis.amount = 55;
  dis.deadline_ms = 123'456;
  img.open_disputes.push_back(dis);
  const Bytes enc = store::encode_snapshot(img);
  const Bytes canonical = img.serialize();

  for (int i = 0; i < fuzz_iters(200); ++i) {
    Bytes mutated = enc;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    // Snapshots have no torn-tail tolerance: any flip is fatal (the CRC
    // covers every byte past the magic, and the magic itself gates).
    EXPECT_FALSE(store::decode_snapshot(mutated).has_value())
        << "flip at " << pos;
    // Truncation too — atomic rename means partial snapshots never count.
    const auto trunc = store::decode_snapshot({enc.data(), rng.below(enc.size())});
    EXPECT_FALSE(trunc.has_value());
  }
  // The unmutated image still decodes to the same canonical bytes.
  const auto back = store::decode_snapshot(enc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->serialize(), canonical);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzz, ::testing::Range<std::uint64_t>(1, 6));

// ------------------------------------------------------ escrow invariants

class EscrowFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EscrowFuzz, RandomOperationSequencesPreserveValue) {
  Rng rng(GetParam() * 1009 + 17);

  psc::PscChain psc;
  core::PayJudgerConfig cfg;
  cfg.pow_limit = btc::ChainParams::regtest().pow_limit;
  cfg.required_depth = 2;
  cfg.evidence_window_ms = 1000;
  cfg.min_collateral = 100;
  cfg.dispute_bond = 50;
  // A checkpoint nobody can extend (no real chain in this fuzz).
  cfg.initial_checkpoint.bytes[0] = 0xAA;
  const auto judger = psc.deploy("payjudger", std::make_unique<core::PayJudger>(cfg));

  constexpr int kCustomers = 3;
  constexpr int kMerchants = 2;
  constexpr psc::Value kMint = 1'000'000'000;
  std::vector<psc::Address> customers, merchants;
  std::vector<std::unique_ptr<core::CustomerWallet>> wallets;
  std::vector<sim::Party> parties;
  for (int i = 0; i < kCustomers; ++i) {
    customers.push_back(psc::Address::from_label("cust" + std::to_string(i)));
    parties.push_back(sim::Party::make(900 + static_cast<std::uint64_t>(i)));
    wallets.push_back(std::make_unique<core::CustomerWallet>(
        parties.back(), customers.back(), static_cast<core::EscrowId>(i + 1)));
    psc.mint(customers.back(), kMint);
  }
  for (int i = 0; i < kMerchants; ++i) {
    merchants.push_back(psc::Address::from_label("merch" + std::to_string(i)));
    psc.mint(merchants.back(), kMint);
  }
  const psc::Value total_minted = kMint * (kCustomers + kMerchants);

  auto escrow_view = [&](core::EscrowId id) -> std::optional<core::EscrowView> {
    psc::PscTx q;
    q.from = merchants[0];
    q.to = judger;
    q.method = "getEscrow";
    q.args = core::encode_escrow_id_arg(id);
    const auto r = psc.view_call(q);
    if (!r.success) return std::nullopt;
    return core::PayJudger::decode_escrow_view(r.return_data);
  };

  auto make_binding = [&](int cust, int merch, psc::Value comp,
                          std::uint64_t expiry) -> core::SignedBinding {
    core::Invoice inv;
    inv.amount_sat = btc::kCoin;
    inv.compensation = comp;
    inv.pay_to = parties[static_cast<std::size_t>(cust)].script;
    inv.merchant_psc = merchants[static_cast<std::size_t>(merch)];
    inv.expires_at_ms = expiry;
    btc::OutPoint coin;
    coin.txid.bytes[0] = static_cast<std::uint8_t>(rng.below(256));
    coin.txid.bytes[1] = static_cast<std::uint8_t>(rng.below(256));
    return wallets[static_cast<std::size_t>(cust)]
        ->create_fastpay(inv, coin, 2 * btc::kCoin, 0, expiry)
        .binding;
  };

  std::uint64_t now = 1;
  std::uint64_t open_bonds = 0;  // bonds held by open disputes

  auto check_invariants = [&] {
    // 1. Value conservation: every unit minted is in an account, the
    //    contract, or the fee sink.
    psc::Value total = psc.state().balance(judger) +
                       psc.state().balance(psc::Address::from_label("psc/fee-sink"));
    for (const auto& a : customers) total += psc.state().balance(a);
    for (const auto& a : merchants) total += psc.state().balance(a);
    ASSERT_EQ(total, total_minted);

    // 2. The contract holds exactly the collaterals plus open bonds.
    psc::Value escrowed = 0;
    for (int i = 0; i < kCustomers; ++i) {
      const auto v = escrow_view(static_cast<core::EscrowId>(i + 1));
      ASSERT_TRUE(v.has_value());
      escrowed += v->collateral;
      // 3. Reservations never exceed collateral.
      ASSERT_LE(v->reserved, v->collateral);
      // 4. States stay in the legal set.
      ASSERT_TRUE(v->state == core::EscrowState::kEmpty ||
                  v->state == core::EscrowState::kActive ||
                  v->state == core::EscrowState::kDisputed);
    }
    ASSERT_EQ(psc.state().balance(judger), escrowed + open_bonds);
  };

  std::vector<core::SignedBinding> bindings;
  for (int step = 0; step < 120; ++step) {
    now += 1 + rng.below(500);
    const int cust = static_cast<int>(rng.below(kCustomers));
    const int merch = static_cast<int>(rng.below(kMerchants));
    const auto escrow_id = static_cast<core::EscrowId>(cust + 1);

    psc::PscTx tx;
    const std::uint64_t op = rng.below(7);
    switch (op) {
      case 0:  // deposit
        tx = wallets[static_cast<std::size_t>(cust)]->make_deposit_tx(
            judger, 100 + rng.below(100'000), rng.below(2000));
        break;
      case 1:  // topUp
        tx = wallets[static_cast<std::size_t>(cust)]->make_topup_tx(judger,
                                                                    1 + rng.below(10'000));
        break;
      case 2:  // withdraw
        tx = wallets[static_cast<std::size_t>(cust)]->make_withdraw_tx(judger);
        break;
      case 3: {  // reserve
        const auto b = make_binding(cust, merch, 1 + rng.below(50'000), now + 100'000);
        bindings.push_back(b);
        tx.from = merchants[static_cast<std::size_t>(merch)];
        tx.to = judger;
        tx.method = "reservePayment";
        tx.args = core::encode_open_dispute_args(escrow_id, b);
        break;
      }
      case 4: {  // release a random earlier binding
        if (bindings.empty()) continue;
        const auto& b = bindings[rng.below(bindings.size())];
        tx.from = b.binding.merchant;
        tx.to = judger;
        tx.method = "releaseReservation";
        tx.args = core::encode_open_dispute_args(b.binding.escrow_id, b);
        break;
      }
      case 5: {  // open dispute on a random binding
        if (bindings.empty()) continue;
        const auto& b = bindings[rng.below(bindings.size())];
        tx.from = b.binding.merchant;
        tx.to = judger;
        tx.value = cfg.dispute_bond;
        tx.method = "openDispute";
        tx.args = core::encode_open_dispute_args(b.binding.escrow_id, b);
        break;
      }
      case 6: {  // judge
        tx.from = merchants[static_cast<std::size_t>(merch)];
        tx.to = judger;
        tx.method = "judge";
        tx.args = core::encode_escrow_id_arg(escrow_id);
        break;
      }
    }

    const auto receipt = psc.execute_now(tx, now);
    if (receipt.success && tx.method == "openDispute") open_bonds += cfg.dispute_bond;
    if (receipt.success && tx.method == "judge") open_bonds -= cfg.dispute_bond;
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscrowFuzz, ::testing::Range<std::uint64_t>(1, 9));

// -------------------------------------------------------- chain orderings

class ChainOrderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainOrderFuzz, RandomDeliveryOrdersConverge) {
  Rng rng(GetParam() * 733 + 11);
  const btc::ChainParams params = btc::ChainParams::regtest();
  const sim::Party miner = sim::Party::make(3);

  // Build a small block dag: a trunk with random-length forks.
  std::vector<btc::Block> blocks;
  btc::Chain builder(params);
  for (int i = 0; i < 8; ++i) {
    btc::Block b;
    b.header.prev_hash = builder.tip_hash();
    b.header.time = builder.tip_header().time + 600;
    b.header.bits = builder.next_work_required(b.header.prev_hash);
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = 1000 + static_cast<std::uint32_t>(i);
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, miner.script});
    b.txs.push_back(cb);
    EXPECT_TRUE(btc::mine_block(b, params));
    EXPECT_EQ(builder.submit_block(b), btc::SubmitResult::kActiveTip);
    blocks.push_back(b);
  }
  // Fork blocks off random trunk heights — strictly below the tip so the
  // trunk stays the unique heaviest chain (equal-work ties legitimately
  // resolve by arrival order, which an ordering-fuzz must avoid).
  const std::size_t trunk = blocks.size();
  for (int f = 0; f < 5; ++f) {
    const auto base = rng.below(trunk - 2);
    btc::Block b;
    b.header.prev_hash = blocks[base].hash();
    b.header.time = blocks[base].header.time + 1;
    b.header.bits = params.genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = 5000 + static_cast<std::uint32_t>(f);
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, miner.script});
    b.txs.push_back(cb);
    EXPECT_TRUE(btc::mine_block(b, params));
    blocks.push_back(b);
  }

  // Deliver the same set in two different random orders via Nodes (whose
  // orphan pools absorb out-of-order arrival).
  auto deliver_shuffled = [&](std::uint64_t seed) {
    Rng order_rng(seed);
    std::vector<btc::Block> shuffled = blocks;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[order_rng.below(i)]);
    }
    sim::Node node(0, params, nullptr);
    for (const auto& b : shuffled) node.receive_block(b);
    return node.chain().tip_hash();
  };

  const auto tip_a = deliver_shuffled(GetParam() * 2 + 1);
  const auto tip_b = deliver_shuffled(GetParam() * 7 + 5);
  EXPECT_EQ(tip_a, tip_b);
  // And both equal the builder's heaviest tip (the trunk).
  EXPECT_EQ(tip_a, builder.tip_hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainOrderFuzz, ::testing::Range<std::uint64_t>(1, 7));

// ------------------------------------------------- TCP frame reassembly

class NetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

namespace {

/// What a reassembled stream must look like, computed by a one-shot
/// whole-buffer walk — no incremental buffering, no compaction, no
/// chunk-boundary state. The incremental FrameAssembler must agree with
/// this for EVERY chunking of the same bytes.
struct RefReassembly {
  std::vector<Bytes> frames;
  bool poisoned = false;
  net::FrameAssembler::Error kind = net::FrameAssembler::Error::kNone;
  std::uint64_t error_rid = 0;
};

RefReassembly reference_reassemble(ByteSpan s, std::size_t max_payload) {
  static constexpr std::uint8_t kMagic[4] = {0x31, 0x47, 0x50, 0x46};  // "1GPF" LE image
  RefReassembly out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t avail = s.size() - pos;
    const std::size_t check = avail < 4 ? avail : 4;
    for (std::size_t i = 0; i < check; ++i) {
      if (s[pos + i] != kMagic[i]) {
        out.poisoned = true;
        out.kind = net::FrameAssembler::Error::kBadMagic;
        return out;
      }
    }
    if (avail < net::kHeaderFixedBytes + 1) return out;
    const std::uint8_t tag = s[pos + net::kHeaderFixedBytes];
    const std::size_t vwidth = tag < 0xfd ? 1 : (tag == 0xfd ? 3 : (tag == 0xfe ? 5 : 9));
    if (avail < net::kHeaderFixedBytes + vwidth) return out;
    Reader r(s.subspan(pos + net::kHeaderFixedBytes, vwidth));
    const auto len = r.varint();
    if (!len || *len > max_payload) {
      out.poisoned = true;
      out.kind = net::FrameAssembler::Error::kOversizedLength;
      std::uint64_t rid = 0;
      for (int i = 7; i >= 0; --i) rid = (rid << 8) | s[pos + 5 + static_cast<std::size_t>(i)];
      out.error_rid = rid;
      return out;
    }
    const std::size_t total = net::kHeaderFixedBytes + vwidth + static_cast<std::size_t>(*len);
    if (avail < total) return out;
    out.frames.emplace_back(s.begin() + static_cast<std::ptrdiff_t>(pos),
                            s.begin() + static_cast<std::ptrdiff_t>(pos + total));
    pos += total;
  }
}

/// A stream of mostly-valid frames with adversarial sprinkles: corrupted
/// magic bytes, unknown types, zero-length and oversized payloads,
/// non-canonical varint lengths, truncated tails, trailing garbage.
Bytes sample_stream(Rng& rng, std::size_t max_payload) {
  Writer w;
  const std::size_t n_frames = rng.below(6);
  for (std::size_t f = 0; f < n_frames; ++f) {
    std::uint32_t magic = gateway::kWireMagic;
    if (rng.below(8) == 0) magic ^= 1u << (8 * rng.below(4));  // corrupt one magic byte
    w.u8(static_cast<std::uint8_t>(magic & 0xff));
    w.u8(static_cast<std::uint8_t>((magic >> 8) & 0xff));
    w.u8(static_cast<std::uint8_t>((magic >> 16) & 0xff));
    w.u8(static_cast<std::uint8_t>((magic >> 24) & 0xff));
    w.u8(static_cast<std::uint8_t>(rng.below(256)));  // type: often unknown
    w.u64le(rng.next());
    std::size_t len = rng.below(64);
    switch (rng.below(8)) {
      case 0: len = 0; break;
      case 1: len = max_payload; break;
      case 2: len = max_payload + 1 + rng.below(1 << 20); break;  // oversized
      default: break;
    }
    if (rng.below(4) == 0 && len <= 0xffff) {
      w.u8(0xfd);  // non-canonical CompactSize for a small length
      w.u16le(static_cast<std::uint16_t>(len));
    } else {
      w.varint(len);
    }
    if (len <= max_payload) {
      Bytes payload(len);
      rng.fill({payload.data(), payload.size()});
      w.bytes(payload);
    }
  }
  Bytes stream = std::move(w).take();
  if (rng.below(3) == 0 && !stream.empty()) {
    stream.resize(rng.below(stream.size()));  // truncate mid-anything
  }
  if (rng.below(3) == 0) {
    Bytes tail(rng.below(32));
    rng.fill({tail.data(), tail.size()});
    append(stream, tail);  // trailing garbage
  }
  return stream;
}

}  // namespace

// Every chunking of every stream: the incremental assembler never
// crashes, never emits different frames than the whole-buffer reference,
// agrees on the poison verdict, and never buffers more than one
// max-size frame (bounded memory).
TEST_P(NetFuzz, ChunkedReassemblyMatchesReference) {
  Rng rng(GetParam() * 467 + 19);
  constexpr std::size_t kMaxPayload = 4096;  // small cap keeps oversized reachable
  const std::size_t bound = net::kHeaderFixedBytes + 9 + kMaxPayload;

  for (int i = 0; i < fuzz_iters(150); ++i) {
    const Bytes stream = rng.below(6) == 0
                             ? [&] {  // pure garbage occasionally
                                 Bytes junk(rng.below(256));
                                 rng.fill({junk.data(), junk.size()});
                                 return junk;
                               }()
                             : sample_stream(rng, kMaxPayload);
    const RefReassembly want = reference_reassemble(stream, kMaxPayload);

    net::FrameAssembler a(kMaxPayload);
    std::vector<Bytes> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk = std::min<std::size_t>(1 + rng.below(17), stream.size() - off);
      if (!a.feed({stream.data() + off, chunk})) break;  // poisoned: drops the rest
      off += chunk;
      while (auto frame = a.next_frame()) got.push_back(std::move(*frame));
      ASSERT_LE(a.buffered(), bound) << "unbounded buffering at offset " << off;
    }
    // Drain poison detection for streams whose last chunk completed the
    // offending header (feed never parses; next_frame does).
    (void)a.next_frame();

    ASSERT_EQ(got.size(), want.frames.size()) << "iter " << i;
    for (std::size_t f = 0; f < got.size(); ++f) {
      ASSERT_EQ(got[f], want.frames[f]) << "iter " << i << " frame " << f;
    }
    ASSERT_EQ(a.poisoned(), want.poisoned) << "iter " << i;
    if (want.poisoned) {
      EXPECT_EQ(a.error(), want.kind) << "iter " << i;
      if (want.kind == net::FrameAssembler::Error::kOversizedLength) {
        EXPECT_EQ(a.error_request_id(), want.error_rid) << "iter " << i;
      }
    }
  }
}

// Valid gateway frames through every pathological chunking must come out
// byte-identical — the property the loopback parity tests rely on.
TEST_P(NetFuzz, ValidFramesSurviveEveryChunking) {
  Rng rng(GetParam() * 821 + 23);
  for (int i = 0; i < fuzz_iters(60); ++i) {
    std::vector<Bytes> frames;
    Bytes stream;
    const std::size_t n = 1 + rng.below(4);
    for (std::size_t f = 0; f < n; ++f) {
      Bytes payload(rng.below(300));
      rng.fill({payload.data(), payload.size()});
      frames.push_back(gateway::make_frame(
          static_cast<gateway::MsgType>(1 + rng.below(3)), rng.next(), std::move(payload)));
      append(stream, frames.back());
    }

    net::FrameAssembler a;
    std::vector<Bytes> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk = std::min<std::size_t>(1 + rng.below(7), stream.size() - off);
      ASSERT_TRUE(a.feed({stream.data() + off, chunk}));
      off += chunk;
      while (auto frame = a.next_frame()) got.push_back(std::move(*frame));
    }
    ASSERT_EQ(got.size(), frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f) ASSERT_EQ(got[f], frames[f]);
    EXPECT_FALSE(a.poisoned());
    EXPECT_EQ(a.buffered(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFuzz, ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------- dispute

// The dispute subsystem's untrusted surfaces: the locator wire codec,
// the header-sync accept path, and the storm engine's tx pre-scan.
class DisputeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisputeFuzz, LocatorCodecNeverCrashesAndRoundTrips) {
  Rng rng(GetParam());
  for (int i = 0; i < fuzz_iters(200); ++i) {
    const std::size_t len = rng.below(600);
    Bytes junk(len);
    rng.fill({junk.data(), junk.size()});
    // Junk decode must fail cleanly or produce a re-encodable locator.
    const auto decoded = dispute::deserialize_locator({junk.data(), junk.size()});
    if (decoded) {
      const Bytes wire = dispute::serialize_locator(*decoded);
      const auto again = dispute::deserialize_locator({wire.data(), wire.size()});
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *decoded);
    }
  }
}

TEST_P(DisputeFuzz, HeaderSyncSurvivesJunkAndMutatedBatches) {
  Rng rng(GetParam());
  auto params = btc::ChainParams::regtest();
  params.pow_limit = crypto::U256::one() << 250;
  params.genesis_bits = btc::target_to_bits(params.pow_limit);

  // A small real chain supplies structurally-valid headers to mutate.
  btc::Chain chain(params);
  const auto party = sim::Party::make(42);
  for (const auto& b : sim::build_funding_chain(params, {party.script}, 4)) {
    ASSERT_EQ(chain.submit_block(b), btc::SubmitResult::kActiveTip);
  }
  const auto real = chain.header_range(0, chain.height() + 1);

  dispute::HeaderSyncManager::Config cfg;
  cfg.max_reorg_depth = 5;
  dispute::HeaderSyncManager mgr(params, cfg);
  for (int i = 0; i < fuzz_iters(100); ++i) {
    std::vector<btc::BlockHeader> batch;
    const std::size_t n = 1 + rng.below(8);
    for (std::size_t j = 0; j < n; ++j) {
      btc::BlockHeader h = real[rng.below(real.size())];
      switch (rng.below(4)) {
        case 0:  // untouched (valid, possibly duplicate)
          break;
        case 1:  // corrupt the PoW / identity
          h.nonce ^= static_cast<std::uint32_t>(1 + rng.below(0xffff));
          break;
        case 2:  // orphan it
          rng.fill({h.prev_hash.bytes.data(), h.prev_hash.bytes.size()});
          break;
        default:  // absurd difficulty claim
          h.bits = static_cast<std::uint32_t>(rng.next());
          break;
      }
      batch.push_back(h);
    }
    const auto r = mgr.accept_headers(batch);
    EXPECT_EQ(r.connected + r.known + r.orphaned + r.rejected, batch.size());
    // The tree never outgrows what it has connected (+ genesis).
    EXPECT_LE(mgr.tree_size(), mgr.stats().headers_connected + 1);
    EXPECT_LE(mgr.tip_height(), chain.height());
  }
  // After the storm of junk, a clean sync still converges to the source.
  mgr.sync_from(chain);
  EXPECT_EQ(mgr.tip_hash(), chain.tip_hash());
}

TEST_P(DisputeFuzz, StormPreScanNeverCrashesOnArbitraryArgs) {
  Rng rng(GetParam());
  const char* methods[] = {"submitMerchantEvidence", "submitCustomerEvidence",
                           "updateCheckpoint", "judge", ""};
  std::vector<btc::BlockHeader> sink;
  for (int i = 0; i < fuzz_iters(300); ++i) {
    psc::PscTx tx;
    tx.method = methods[rng.below(5)];
    Bytes junk(rng.below(1024));
    rng.fill({junk.data(), junk.size()});
    tx.args = std::move(junk);
    const std::size_t before = sink.size();
    const std::size_t added = dispute::StormEngine::scan_tx_headers(tx, 144, &sink);
    EXPECT_EQ(sink.size(), before + added);
    EXPECT_LE(added, 144u);
    // The zero-copy span scan must accept exactly what the decoded scan
    // accepts — the storm sweep and the contract see the same headers.
    const ByteSpan raw = dispute::StormEngine::scan_tx_header_span(tx, 144);
    EXPECT_EQ(raw.size(), added * 80);
    for (std::size_t h = 0; h < added; ++h) {
      EXPECT_EQ(sink[before + h].serialize(),
                Bytes(raw.begin() + static_cast<std::ptrdiff_t>(h * 80),
                      raw.begin() + static_cast<std::ptrdiff_t>((h + 1) * 80)));
    }
    if (sink.size() > 4096) sink.clear();  // bound the corpus
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisputeFuzz, ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace btcfast
