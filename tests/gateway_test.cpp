// Gateway serving-layer tests: wire decode hardening (every malformed
// shape rejected, every well-formed message round-trips), the sharded
// reservation ledger's overcommit/expiry/reconcile semantics, and the
// full request pipeline against a live deployment — accept, typed
// rejects, receipts, admission shed, and batch/sequential parity.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <thread>

#include "btcfast/customer.h"
#include "btcfast/orchestrator.h"
#include "common/thread_pool.h"
#include "gateway/pipeline.h"
#include "gateway/reservation_ledger.h"
#include "gateway/stats.h"
#include "gateway/wire.h"

namespace btcfast::gateway {
namespace {

using core::RejectReason;

// ------------------------------------------------------------------ wire

/// A genuinely valid FastPayPackage without a full deployment (same idiom
/// as the parser fuzzer): wallet-signed, never evaluated.
core::FastPayPackage sample_package() {
  const sim::Party party = sim::Party::make(77);
  core::Invoice inv;
  inv.amount_sat = btc::kCoin;
  inv.compensation = 1000;
  inv.pay_to = party.script;
  inv.merchant_psc = psc::Address::from_label("m");
  inv.expires_at_ms = 1000000;
  core::CustomerWallet wallet(party, psc::Address::from_label("c"), 1);
  btc::OutPoint coin;
  coin.txid.bytes[0] = 0x42;
  return wallet.create_fastpay(inv, coin, 2 * btc::kCoin, 0, 1000000);
}

TEST(GatewayWire, FrameRoundTrip) {
  Frame f;
  f.type = MsgType::kSubmitFastPay;
  f.request_id = 0xdeadbeefcafe;
  f.payload = {1, 2, 3, 4, 5};
  const auto back = Frame::deserialize(f.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, f.type);
  EXPECT_EQ(back->request_id, f.request_id);
  EXPECT_EQ(back->payload, f.payload);
}

TEST(GatewayWire, FrameRejectsBadMagic) {
  auto bytes = make_frame(MsgType::kQueryEscrow, 7, {});
  bytes[0] ^= 0xff;
  EXPECT_FALSE(Frame::deserialize(bytes).has_value());
}

TEST(GatewayWire, FrameRejectsUnknownType) {
  Writer w;
  w.u32le(kWireMagic);
  w.u8(0x7f);  // not a MsgType
  w.u64le(1);
  w.varint(0);
  EXPECT_FALSE(Frame::deserialize(std::move(w).take()).has_value());
}

TEST(GatewayWire, FrameRejectsEveryTruncation) {
  const auto full = make_frame(MsgType::kGetReceipt, 9, {0xaa, 0xbb});
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(Frame::deserialize({full.data(), len}).has_value()) << "prefix len " << len;
  }
  EXPECT_TRUE(Frame::deserialize(full).has_value());
}

TEST(GatewayWire, FrameRejectsTrailingBytes) {
  auto bytes = make_frame(MsgType::kGetReceipt, 9, {0xaa});
  bytes.push_back(0x00);
  EXPECT_FALSE(Frame::deserialize(bytes).has_value());
}

TEST(GatewayWire, FrameRejectsOversizedPayloadAnnouncement) {
  // Header announces a payload over the cap; decoder must refuse before
  // attempting the (absent, absurd) allocation.
  Writer w;
  w.u32le(kWireMagic);
  w.u8(static_cast<std::uint8_t>(MsgType::kSubmitFastPay));
  w.u64le(1);
  w.varint(kMaxFramePayload + 1);
  EXPECT_FALSE(Frame::deserialize(std::move(w).take()).has_value());
}

TEST(GatewayWire, SubmitFastPayRoundTrip) {
  SubmitFastPayRequest req;
  req.invoice_id = 31337;
  req.package = sample_package();
  const auto back = SubmitFastPayRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->invoice_id, req.invoice_id);
  EXPECT_EQ(back->package.binding, req.package.binding);
  EXPECT_EQ(back->package.payment_tx, req.package.payment_tx);
}

TEST(GatewayWire, RequestAndResponseRoundTrips) {
  {
    QueryEscrowRequest q{42};
    const auto back = QueryEscrowRequest::deserialize(q.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->escrow_id, 42u);
  }
  {
    GetReceiptRequest g{99};
    const auto back = GetReceiptRequest::deserialize(g.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->request_id, 99u);
  }
  {
    FastPayResultResponse r;
    r.accepted = false;
    r.code = RejectReason::kUnderpayment;
    r.reason = "payment output below invoice amount";
    r.reservation_id = 0;
    const auto back = FastPayResultResponse::deserialize(r.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->accepted);
    EXPECT_EQ(back->code, RejectReason::kUnderpayment);
    EXPECT_EQ(back->reason, r.reason);
  }
  {
    EscrowInfoResponse e;
    e.found = true;
    e.state = 1;
    e.collateral = 500;
    e.reserved = 120;
    e.unlock_time_ms = 777;
    const auto back = EscrowInfoResponse::deserialize(e.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->found);
    EXPECT_EQ(back->reserved, 120u);
    EXPECT_EQ(back->unlock_time_ms, 777u);
  }
  {
    ReceiptInfoResponse rc;
    rc.found = true;
    rc.accepted = true;
    rc.code = RejectReason::kNone;
    rc.decided_at_ms = 123456;
    const auto back = ReceiptInfoResponse::deserialize(rc.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->found);
    EXPECT_TRUE(back->accepted);
    EXPECT_EQ(back->decided_at_ms, 123456u);
  }
  {
    RetryAfterResponse ra{50, 9};
    const auto back = RetryAfterResponse::deserialize(ra.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->retry_after_ms, 50u);
    EXPECT_EQ(back->queue_depth, 9u);
  }
  {
    ErrorResponse err;
    err.code = RejectReason::kMalformedFrame;
    err.message = "undecodable frame";
    const auto back = ErrorResponse::deserialize(err.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->code, RejectReason::kMalformedFrame);
    EXPECT_EQ(back->message, err.message);
  }
}

TEST(GatewayWire, ResponsesRejectOutOfRangeEnums) {
  // Reason code at/above the sentinel.
  {
    Writer w;
    w.u8(0);
    w.u16le(static_cast<std::uint16_t>(RejectReason::kMaxReason));
    w.str_with_len("");
    w.u64le(0);
    EXPECT_FALSE(FastPayResultResponse::deserialize(std::move(w).take()).has_value());
  }
  // Bool encoded as 2.
  {
    Writer w;
    w.u8(2);
    w.u16le(0);
    w.str_with_len("");
    w.u64le(0);
    EXPECT_FALSE(FastPayResultResponse::deserialize(std::move(w).take()).has_value());
  }
  {
    Writer w;
    w.u8(2);  // found
    w.u64le(0);
    w.u64le(0);
    w.u64le(0);
    w.u64le(0);
    EXPECT_FALSE(EscrowInfoResponse::deserialize(std::move(w).take()).has_value());
  }
  {
    Writer w;
    w.u16le(999);  // nonsense reason
    w.str_with_len("x");
    EXPECT_FALSE(ErrorResponse::deserialize(std::move(w).take()).has_value());
  }
}

TEST(GatewayWire, ReasonStringLengthBounded) {
  FastPayResultResponse r;
  r.reason = std::string(300, 'x');  // over the 256-byte wire cap
  EXPECT_FALSE(FastPayResultResponse::deserialize(r.serialize()).has_value());
}

// ---------------------------------------------------------------- ledger

core::EscrowView active_view(psc::Value collateral, psc::Value reserved = 0,
                             std::uint64_t unlock_time_ms = 1'000'000) {
  core::EscrowView v;
  v.state = core::EscrowState::kActive;
  v.collateral = collateral;
  v.reserved = reserved;
  v.unlock_time_ms = unlock_time_ms;
  return v;
}

TEST(ReservationLedger, ReserveThenRelease) {
  ReservationLedger ledger(4);
  ledger.upsert_escrow(1, active_view(100));
  const auto rid = ledger.try_reserve(1, 60, 500);
  ASSERT_TRUE(rid.has_value());

  auto snap = ledger.snapshot(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, 60u);
  EXPECT_EQ(snap->live_reservations, 1u);

  const auto res = ledger.find(*rid);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->escrow_id, 1u);
  EXPECT_EQ(res->amount, 60u);
  EXPECT_EQ(res->expires_at_ms, 500u);

  EXPECT_TRUE(ledger.release(*rid));
  snap = ledger.snapshot(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, 0u);
  EXPECT_EQ(ledger.total_granted(), 1u);
  EXPECT_EQ(ledger.total_released(), 1u);
}

TEST(ReservationLedger, DoubleReleaseIsLoud) {
  ReservationLedger ledger;
  ledger.upsert_escrow(1, active_view(100));
  const auto rid = ledger.try_reserve(1, 10, 500);
  ASSERT_TRUE(rid.has_value());
  EXPECT_TRUE(ledger.release(*rid));
  EXPECT_FALSE(ledger.release(*rid));  // second release: loud failure
  EXPECT_FALSE(ledger.release(0xdead00));  // never-granted id
  EXPECT_EQ(ledger.total_released(), 1u);
}

TEST(ReservationLedger, TypedDenials) {
  ReservationLedger ledger;
  RejectReason why = RejectReason::kNone;

  EXPECT_FALSE(ledger.try_reserve(5, 1, 10, 0, &why).has_value());
  EXPECT_EQ(why, RejectReason::kEscrowLookupFailed);

  auto disputed = active_view(100);
  disputed.state = core::EscrowState::kDisputed;
  ledger.upsert_escrow(6, disputed);
  EXPECT_FALSE(ledger.try_reserve(6, 1, 10, 0, &why).has_value());
  EXPECT_EQ(why, RejectReason::kEscrowNotActive);

  EXPECT_EQ(ledger.total_denied(), 2u);
}

TEST(ReservationLedger, UnlockTimeEdge) {
  ReservationLedger ledger;
  ledger.upsert_escrow(1, active_view(100, 0, /*unlock_time_ms=*/1000));
  RejectReason why = RejectReason::kNone;

  // Reservation expiring exactly at unlock still fits (the dispute window
  // closes no later than the collateral unlocks)...
  EXPECT_TRUE(ledger.try_reserve(1, 1, /*expires_at_ms=*/1000).has_value());
  // ...one millisecond past it does not.
  EXPECT_FALSE(ledger.try_reserve(1, 1, 1001, 0, &why).has_value());
  EXPECT_EQ(why, RejectReason::kEscrowUnlocksTooSoon);
}

TEST(ReservationLedger, ExactCollateralFitThenDenied) {
  ReservationLedger ledger;
  // 20 already reserved on-chain; 80 of local headroom remains.
  ledger.upsert_escrow(1, active_view(100, /*reserved=*/20));
  RejectReason why = RejectReason::kNone;

  EXPECT_TRUE(ledger.try_reserve(1, 50, 500).has_value());
  EXPECT_TRUE(ledger.try_reserve(1, 30, 500).has_value());  // exact fit
  EXPECT_FALSE(ledger.try_reserve(1, 1, 500, 0, &why).has_value());
  EXPECT_EQ(why, RejectReason::kInsufficientCollateral);

  const auto snap = ledger.snapshot(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->view.reserved + snap->local_reserved, snap->view.collateral);
}

TEST(ReservationLedger, ExposureCapDeniedBeforeCollateralExhausted) {
  ReservationLedger ledger;
  ledger.upsert_escrow(1, active_view(1000));
  RejectReason why = RejectReason::kNone;

  EXPECT_TRUE(ledger.try_reserve(1, 50, 500, /*exposure_cap=*/50).has_value());
  EXPECT_FALSE(ledger.try_reserve(1, 1, 500, 50, &why).has_value());
  EXPECT_EQ(why, RejectReason::kExposureCap);
  // Uncapped call against the same escrow still fits — the cap is a
  // per-merchant policy, not a property of the escrow.
  EXPECT_TRUE(ledger.try_reserve(1, 1, 500).has_value());
}

TEST(ReservationLedger, ExpiryAtDeadlineEdge) {
  ReservationLedger ledger;
  ledger.upsert_escrow(1, active_view(100));
  const auto rid = ledger.try_reserve(1, 40, /*expires_at_ms=*/5000);
  ASSERT_TRUE(rid.has_value());

  // One tick before the deadline: still alive.
  EXPECT_EQ(ledger.expire_due(4999), 0u);
  EXPECT_TRUE(ledger.find(*rid).has_value());

  // At the deadline: dropped, headroom restored, id now unknown.
  EXPECT_EQ(ledger.expire_due(5000), 1u);
  EXPECT_FALSE(ledger.find(*rid).has_value());
  EXPECT_FALSE(ledger.release(*rid));
  const auto snap = ledger.snapshot(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, 0u);
  EXPECT_EQ(ledger.total_expired(), 1u);
}

TEST(ReservationLedger, NearMaxAmountCannotWrapCoverage) {
  // Regression: with local_reserved = 10, an amount of 2^64 - 10 used to
  // wrap `committed + amount` to 0, granting the reserve and then
  // wrapping local_reserved itself to 0 — erasing all tracked exposure.
  ReservationLedger ledger;
  ledger.upsert_escrow(1, active_view(100));
  ASSERT_TRUE(ledger.try_reserve(1, 10, 500).has_value());

  RejectReason why = RejectReason::kNone;
  const psc::Value huge = std::numeric_limits<psc::Value>::max() - 9;  // 2^64 - 10
  EXPECT_FALSE(ledger.try_reserve(1, huge, 500, 0, &why).has_value());
  EXPECT_EQ(why, RejectReason::kInsufficientCollateral);
  // Exposure cap path is overflow-safe too.
  EXPECT_FALSE(ledger.try_reserve(1, huge, 500, /*exposure_cap=*/50, &why).has_value());
  EXPECT_EQ(why, RejectReason::kInsufficientCollateral);

  const auto snap = ledger.snapshot(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, 10u);

  // A corrupted on-chain figure must not wrap `reserved + local` either.
  ledger.upsert_escrow(2, active_view(100, /*reserved=*/std::numeric_limits<psc::Value>::max()));
  EXPECT_FALSE(ledger.try_reserve(2, 1, 500, 0, &why).has_value());
  EXPECT_EQ(why, RejectReason::kInsufficientCollateral);
}

TEST(ReservationLedger, ReconcileAfterReorgPreservesLocalReservations) {
  ReservationLedger ledger;
  ledger.upsert_escrow(1, active_view(100));
  ASSERT_TRUE(ledger.try_reserve(1, 40, 500).has_value());

  // A PSC reorg shrank the collateral to 60: the refreshed view must not
  // forget the 40 the gateway already promised against.
  ledger.reconcile({{1, active_view(60)}});
  const auto snap = ledger.snapshot(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->view.collateral, 60u);
  EXPECT_EQ(snap->local_reserved, 40u);

  // Headroom is now 20: a 21 overshoots, a 20 fits exactly.
  RejectReason why = RejectReason::kNone;
  EXPECT_FALSE(ledger.try_reserve(1, 21, 500, 0, &why).has_value());
  EXPECT_EQ(why, RejectReason::kInsufficientCollateral);
  EXPECT_TRUE(ledger.try_reserve(1, 20, 500).has_value());
}

TEST(ReservationLedger, EraseEscrowDropsItsReservations) {
  ReservationLedger ledger;
  ledger.upsert_escrow(1, active_view(100));
  const auto rid = ledger.try_reserve(1, 10, 500);
  ASSERT_TRUE(rid.has_value());

  ledger.erase_escrow(1);
  EXPECT_FALSE(ledger.snapshot(1).has_value());
  EXPECT_FALSE(ledger.find(*rid).has_value());
  EXPECT_FALSE(ledger.release(*rid));
}

// ----------------------------------------------------------------- stats

TEST(GatewayStatsTest, HistogramPercentilesAndMean) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record_us(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean_us(), 1000.0);
  // 1000us lands in the [512, 1024) bucket; interpolation stays inside.
  EXPECT_GE(h.percentile_us(50), 512.0);
  EXPECT_LE(h.percentile_us(99), 1024.0);
}

TEST(GatewayStatsTest, CountersAndJson) {
  GatewayStats st;
  st.on_accept(10);
  st.on_reject(RejectReason::kUnderpayment, 5);
  st.on_reject(RejectReason::kUnderpayment, 5);
  st.on_shed();
  EXPECT_EQ(st.accepts(), 1u);
  EXPECT_EQ(st.rejects(), 2u);
  EXPECT_EQ(st.sheds(), 1u);
  EXPECT_EQ(st.rejects_for(RejectReason::kUnderpayment), 2u);
  const std::string json = st.to_json();
  EXPECT_NE(json.find("\"accepts\""), std::string::npos);
  EXPECT_NE(json.find("underpayment"), std::string::npos);

  st.reset();
  EXPECT_EQ(st.accepts(), 0u);
  EXPECT_EQ(st.rejects_for(RejectReason::kUnderpayment), 0u);
}

TEST(GatewayStatsTest, CacheGaugesInJson) {
  GatewayStats st;
  st.set_cache_metrics(10, 2, 8, 1, 20, 4, 3, 0);
  EXPECT_EQ(st.sigcache_hits(), 10u);
  EXPECT_EQ(st.precomp_hits(), 20u);
  EXPECT_EQ(st.precomp_evictions(), 0u);
  const std::string json = st.to_json();
  EXPECT_NE(json.find("\"caches\""), std::string::npos);
  EXPECT_NE(json.find("\"sigcache\""), std::string::npos);
  EXPECT_NE(json.find("\"pubkey_precomp\""), std::string::npos);

  // accumulate() treats the cache fields as gauges: take-max, not sum.
  GatewayStats other;
  other.set_cache_metrics(4, 9, 1, 2, 5, 11, 1, 7);
  st.accumulate(other);
  EXPECT_EQ(st.sigcache_hits(), 10u);
  EXPECT_EQ(st.sigcache_misses(), 9u);
  EXPECT_EQ(st.precomp_hits(), 20u);
  EXPECT_EQ(st.precomp_evictions(), 7u);

  st.reset();
  EXPECT_EQ(st.sigcache_hits(), 0u);
  EXPECT_EQ(st.precomp_hits(), 0u);
}

// -------------------------------------------------------------- pipeline

/// Deployment-backed harness mirroring MerchantUnit: a consistent world
/// with one funded escrow, served through the gateway's wire front door.
struct GatewayUnit : ::testing::Test {
  GatewayUnit() {
    core::DeploymentConfig cfg;
    cfg.seed = 424;
    cfg.funded_coins = 3;
    dep = std::make_unique<core::Deployment>(cfg);
    now = static_cast<std::uint64_t>(dep->simulator().now());
    invoice = dep->merchant().make_invoice(5 * btc::kCoin, dep->config().compensation, now,
                                           10ULL * 60 * 1000);
    coins = sim::find_spendable(dep->customer_node().chain(),
                                dep->customer().btc_identity().script);
    pkg = dep->customer().create_fastpay(invoice, coins[0].first, coins[0].second.out.value, now,
                                         dep->config().binding_ttl_ms);
  }

  std::unique_ptr<Gateway> make_gateway(GatewayConfig cfg = {}) {
    auto gw = std::make_unique<Gateway>(dep->merchant(), pool, cfg);
    gw->register_invoice(invoice);
    gw->track_escrow(dep->customer().escrow_id());
    return gw;
  }

  [[nodiscard]] Bytes submit_frame(std::uint64_t request_id,
                                   const core::FastPayPackage& p) const {
    SubmitFastPayRequest req;
    req.invoice_id = invoice.invoice_id;
    req.package = p;
    return make_frame(MsgType::kSubmitFastPay, request_id, req.serialize());
  }

  static FastPayResultResponse decode_result(const Bytes& bytes) {
    const auto frame = Frame::deserialize(bytes);
    EXPECT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::kFastPayResult);
    const auto resp = FastPayResultResponse::deserialize(frame->payload);
    EXPECT_TRUE(resp.has_value());
    return resp.value_or(FastPayResultResponse{});
  }

  common::ThreadPool pool{0};  // inline: deterministic single-thread serve
  std::unique_ptr<core::Deployment> dep;
  std::uint64_t now = 0;
  core::Invoice invoice{};
  std::vector<std::pair<btc::OutPoint, btc::Coin>> coins;
  core::FastPayPackage pkg{};
};

TEST_F(GatewayUnit, SubmitAcceptedEndToEnd) {
  auto gw = make_gateway();
  const auto resp = decode_result(gw->serve(submit_frame(1, pkg), now));
  EXPECT_TRUE(resp.accepted) << resp.reason;
  EXPECT_EQ(resp.code, RejectReason::kNone);
  EXPECT_NE(resp.reservation_id, 0u);

  // The accept reserved collateral and queued the commit.
  const auto snap = gw->escrow_snapshot(dep->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, pkg.binding.binding.compensation);
  EXPECT_EQ(gw->commit_queue_depth(), 1u);
  EXPECT_EQ(gw->stats().accepts(), 1u);

  // Flush runs the merchant bookkeeping; the book now carries it.
  EXPECT_EQ(dep->merchant().pending().size(), 0u);
  (void)gw->flush_accepted();
  EXPECT_EQ(dep->merchant().pending().size(), 1u);
  EXPECT_EQ(gw->commit_queue_depth(), 0u);

  // The receipt is queryable by the submit frame's request id.
  const auto receipt_bytes =
      gw->serve(make_frame(MsgType::kGetReceipt, 2, GetReceiptRequest{1}.serialize()), now);
  const auto rframe = Frame::deserialize(receipt_bytes);
  ASSERT_TRUE(rframe.has_value());
  EXPECT_EQ(rframe->type, MsgType::kReceiptInfo);
  const auto receipt = ReceiptInfoResponse::deserialize(rframe->payload);
  ASSERT_TRUE(receipt.has_value());
  EXPECT_TRUE(receipt->found);
  EXPECT_TRUE(receipt->accepted);
  EXPECT_EQ(receipt->decided_at_ms, now);
}

TEST_F(GatewayUnit, QueryEscrowReflectsLocalReservations) {
  auto gw = make_gateway();
  const auto query = [&]() -> EscrowInfoResponse {
    const auto bytes = gw->serve(
        make_frame(MsgType::kQueryEscrow, 5,
                   QueryEscrowRequest{dep->customer().escrow_id()}.serialize()),
        now);
    const auto frame = Frame::deserialize(bytes);
    EXPECT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::kEscrowInfo);
    const auto resp = EscrowInfoResponse::deserialize(frame->payload);
    EXPECT_TRUE(resp.has_value());
    return resp.value_or(EscrowInfoResponse{});
  };

  const auto before = query();
  ASSERT_TRUE(before.found);
  EXPECT_EQ(before.state, static_cast<std::uint64_t>(core::EscrowState::kActive));

  const auto resp = decode_result(gw->serve(submit_frame(1, pkg), now));
  ASSERT_TRUE(resp.accepted) << resp.reason;

  const auto after = query();
  EXPECT_EQ(after.reserved, before.reserved + pkg.binding.binding.compensation);
  EXPECT_EQ(after.collateral, before.collateral);
}

TEST_F(GatewayUnit, UnknownReceiptReportsNotFound) {
  auto gw = make_gateway();
  const auto bytes =
      gw->serve(make_frame(MsgType::kGetReceipt, 3, GetReceiptRequest{777}.serialize()), now);
  const auto frame = Frame::deserialize(bytes);
  ASSERT_TRUE(frame.has_value());
  const auto receipt = ReceiptInfoResponse::deserialize(frame->payload);
  ASSERT_TRUE(receipt.has_value());
  EXPECT_FALSE(receipt->found);
}

TEST_F(GatewayUnit, UnknownInvoiceTypedReject) {
  auto gw = make_gateway();
  SubmitFastPayRequest req;
  req.invoice_id = invoice.invoice_id + 12345;  // never registered
  req.package = pkg;
  const auto resp = decode_result(
      gw->serve(make_frame(MsgType::kSubmitFastPay, 1, req.serialize()), now));
  EXPECT_FALSE(resp.accepted);
  EXPECT_EQ(resp.code, RejectReason::kUnknownInvoice);
  EXPECT_EQ(gw->stats().rejects_for(RejectReason::kUnknownInvoice), 1u);
}

TEST_F(GatewayUnit, MalformedFrameGetsTypedError) {
  auto gw = make_gateway();
  const Bytes junk{0x00, 0x01, 0x02};
  const auto bytes = gw->serve(junk, now);
  const auto frame = Frame::deserialize(bytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kError);
  const auto err = ErrorResponse::deserialize(frame->payload);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, RejectReason::kMalformedFrame);
  EXPECT_EQ(gw->stats().rejects_for(RejectReason::kMalformedFrame), 1u);
}

TEST_F(GatewayUnit, OverloadShedsWithRetryAfter) {
  GatewayConfig cfg;
  cfg.max_inflight = 0;  // every request is over capacity
  cfg.retry_after_ms = 75;
  auto gw = make_gateway(cfg);
  const auto bytes = gw->serve(submit_frame(42, pkg), now);
  const auto frame = Frame::deserialize(bytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kRetryAfter);
  EXPECT_EQ(frame->request_id, 42u);  // echoed from the shed frame header
  const auto shed = RetryAfterResponse::deserialize(frame->payload);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->retry_after_ms, 75u);
  EXPECT_EQ(gw->stats().sheds(), 1u);
  EXPECT_EQ(gw->stats().accepts(), 0u);
  // A shed request left no residue: no receipt, no reservation.
  EXPECT_EQ(gw->commit_queue_depth(), 0u);
}

TEST_F(GatewayUnit, RejectParityWithDirectEvaluation) {
  auto tampered = pkg;
  tampered.binding.customer_sig[7] ^= 0x40;

  const auto direct = dep->merchant().evaluate_fastpay(tampered, invoice, now);
  ASSERT_FALSE(direct.accepted);

  auto gw = make_gateway();
  const auto resp = decode_result(gw->serve(submit_frame(1, tampered), now));
  EXPECT_FALSE(resp.accepted);
  EXPECT_EQ(resp.code, direct.code);
  EXPECT_EQ(resp.code, RejectReason::kBindingSigInvalid);
  EXPECT_EQ(resp.reason, direct.reason);
  // No reservation was held for the reject.
  const auto snap = gw->escrow_snapshot(dep->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, 0u);
}

TEST_F(GatewayUnit, ReservationHeldForFullBindingLifetime) {
  // The collateral hold must cover the binding's entire disputable life:
  // releasing it any earlier would undercount exposure and let later
  // payments overcommit the escrow (the merchant is still owed the
  // compensation if this payment double-spends).
  auto gw = make_gateway();
  const auto resp = decode_result(gw->serve(submit_frame(1, pkg), now));
  ASSERT_TRUE(resp.accepted) << resp.reason;
  const std::uint64_t expiry = pkg.binding.binding.expiry_ms;

  gw->reconcile(expiry - 1);
  auto snap = gw->escrow_snapshot(dep->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, pkg.binding.binding.compensation);

  gw->reconcile(expiry);
  snap = gw->escrow_snapshot(dep->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, 0u);
  EXPECT_EQ(gw->reservations_expired(), 1u);
}

TEST_F(GatewayUnit, HugeCompensationBindingCannotWrapCoverage) {
  // Regression: with one small reservation live (local_reserved = s), a
  // self-signed binding asking for 2^64 - s used to wrap the unsigned
  // coverage sums to 0 in both evaluate_against and try_reserve, erasing
  // all tracked exposure. Both checks are overflow-safe now.
  auto gw = make_gateway();
  const auto first = decode_result(gw->serve(submit_frame(1, pkg), now));
  ASSERT_TRUE(first.accepted) << first.reason;
  (void)gw->flush_accepted();
  const auto outstanding = pkg.binding.binding.compensation;

  auto evil = dep->customer().create_fastpay(invoice, coins[1].first, coins[1].second.out.value,
                                             now, dep->config().binding_ttl_ms);
  evil.binding.binding.compensation =
      std::numeric_limits<psc::Value>::max() - outstanding + 1;  // sum wraps to 0
  const auto sig = crypto::ecdsa_sign(dep->customer().btc_identity().key,
                                      evil.binding.binding.signing_digest());
  evil.binding.customer_sig = sig.serialize();

  const auto resp = decode_result(gw->serve(submit_frame(2, evil), now));
  EXPECT_FALSE(resp.accepted);
  EXPECT_EQ(resp.code, RejectReason::kInsufficientCollateral);
  // The small reservation is still tracked — nothing was erased.
  const auto snap = gw->escrow_snapshot(dep->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, outstanding);
}

TEST_F(GatewayUnit, ReceiptCacheBoundedFifo) {
  GatewayConfig cfg;
  cfg.max_receipts = 2;
  // One shard so all three receipts share one FIFO and the global cap is
  // exact; with N shards the budget is split per shard.
  cfg.shards = 1;
  auto gw = make_gateway(cfg);
  const auto receipt_for = [&](std::uint64_t request_id) -> ReceiptInfoResponse {
    const auto bytes = gw->serve(
        make_frame(MsgType::kGetReceipt, 100 + request_id,
                   GetReceiptRequest{request_id}.serialize()),
        now);
    const auto frame = Frame::deserialize(bytes);
    EXPECT_TRUE(frame.has_value());
    const auto resp = ReceiptInfoResponse::deserialize(frame->payload);
    EXPECT_TRUE(resp.has_value());
    return resp.value_or(ReceiptInfoResponse{});
  };

  // Three decisions under a cap of two: the attacker model is a client
  // streaming fresh request ids, so the oldest receipt must fall out.
  SubmitFastPayRequest req;
  req.invoice_id = invoice.invoice_id + 999;  // unknown invoice: cheap reject
  req.package = pkg;
  for (std::uint64_t rid = 1; rid <= 3; ++rid) {
    (void)gw->serve(make_frame(MsgType::kSubmitFastPay, rid, req.serialize()), now);
  }
  EXPECT_FALSE(receipt_for(1).found);  // evicted
  EXPECT_TRUE(receipt_for(2).found);
  EXPECT_TRUE(receipt_for(3).found);
}

TEST_F(GatewayUnit, ServeBatchMatchesSequentialServe) {
  // Three frames covering accept, typed reject and unknown invoice; a
  // pooled batch gateway and an inline sequential one must answer
  // byte-identically (reservation ids included — both ledgers are fresh).
  auto tampered = pkg;
  tampered.binding.customer_sig[3] ^= 0x01;
  SubmitFastPayRequest unknown;
  unknown.invoice_id = invoice.invoice_id + 999;
  unknown.package = pkg;

  const std::vector<Bytes> frames = {
      submit_frame(1, pkg),
      submit_frame(2, tampered),
      make_frame(MsgType::kSubmitFastPay, 3, unknown.serialize()),
      make_frame(MsgType::kQueryEscrow, 4,
                 QueryEscrowRequest{dep->customer().escrow_id()}.serialize()),
  };

  common::ThreadPool workers{2};
  auto batch_gw = std::make_unique<Gateway>(dep->merchant(), workers, GatewayConfig{});
  batch_gw->register_invoice(invoice);
  batch_gw->track_escrow(dep->customer().escrow_id());
  const auto batched = batch_gw->serve_batch(frames, now);

  auto seq_gw = make_gateway();
  std::vector<Bytes> sequential;
  for (const auto& f : frames) sequential.push_back(seq_gw->serve(f, now));

  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(batched[i], sequential[i]) << "response " << i << " diverged";
  }
  EXPECT_EQ(batch_gw->stats().accepts(), 1u);
  EXPECT_EQ(batch_gw->stats().rejects(), 2u);
}

TEST_F(GatewayUnit, ShardedVsUnshardedParity) {
  // The shard count is a pure performance knob: reservation ids draw
  // from one gateway-wide counter and embed a geometry-independent
  // affinity byte, so an N-shard gateway must answer every frame with
  // the exact bytes the 1-shard gateway produces — accepts (including
  // the reservation id), typed rejects, queries and receipts alike.
  auto tampered = pkg;
  tampered.binding.customer_sig[3] ^= 0x01;
  SubmitFastPayRequest unknown;
  unknown.invoice_id = invoice.invoice_id + 999;
  unknown.package = pkg;

  const std::vector<Bytes> frames = {
      submit_frame(1, pkg),
      submit_frame(2, tampered),
      make_frame(MsgType::kSubmitFastPay, 3, unknown.serialize()),
      make_frame(MsgType::kQueryEscrow, 4,
                 QueryEscrowRequest{dep->customer().escrow_id()}.serialize()),
      make_frame(MsgType::kGetReceipt, 5, GetReceiptRequest{1}.serialize()),
      make_frame(MsgType::kGetReceipt, 6, GetReceiptRequest{2}.serialize()),
      make_frame(MsgType::kSubmitFastPay, 7, Bytes{0xde, 0xad}),  // malformed payload
  };

  GatewayConfig one;
  one.shards = 1;
  auto gw1 = make_gateway(one);
  GatewayConfig many;
  many.shards = 4;
  auto gwn = make_gateway(many);

  for (std::size_t i = 0; i < frames.size(); ++i) {
    const Bytes a = gw1->serve(frames[i], now);
    const Bytes b = gwn->serve(frames[i], now);
    EXPECT_EQ(a, b) << "response " << i << " diverged between 1 and 4 shards";
  }
  EXPECT_EQ(gw1->stats().accepts(), gwn->stats().accepts());
  EXPECT_EQ(gw1->stats().rejects(), gwn->stats().rejects());
  EXPECT_EQ(gw1->reservations_granted(), gwn->reservations_granted());
  EXPECT_EQ(gw1->commit_queue_depth(), gwn->commit_queue_depth());
}

TEST_F(GatewayUnit, LazyFetchSafeUnderConcurrentServe) {
  // lazy_escrow_fetch used to be documented single-thread-only; the
  // chain-view fetch is now serialized under a gateway-wide lock, so
  // hammering an UNTRACKED escrow from many threads must neither race
  // (TSan's job) nor fetch inconsistent views: exactly one thread pays
  // the contract call, everyone sees the same escrow afterwards.
  GatewayConfig cfg;
  cfg.lazy_escrow_fetch = true;
  auto gw = std::make_unique<Gateway>(dep->merchant(), pool, cfg);
  gw->register_invoice(invoice);  // escrow deliberately NOT tracked

  const Bytes query = make_frame(MsgType::kQueryEscrow, 9,
                                 QueryEscrowRequest{dep->customer().escrow_id()}.serialize());
  std::atomic<int> not_found{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const auto frame = Frame::deserialize(gw->serve(query, now));
        ASSERT_TRUE(frame.has_value());
        const auto resp = EscrowInfoResponse::deserialize(frame->payload);
        ASSERT_TRUE(resp.has_value());
        if (!resp->found) not_found.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(not_found.load(), 0);
  const auto snap = gw->escrow_snapshot(dep->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_GT(snap->view.collateral, 0u);
}

TEST_F(GatewayUnit, ConcurrentShardedServeNeverOvercommits) {
  // The end-to-end TSan hammer: many threads drive real submit frames
  // (valid, tampered, unknown-invoice) through the sharded pipeline and
  // the verify micro-batcher at once. The escrow's collateral must cover
  // every accept no matter how the threads interleave, and the counters
  // must reconcile exactly.
  GatewayConfig cfg;
  cfg.shards = 4;
  cfg.verify_batch_max = 16;
  cfg.verify_batch_wait_us = 50;
  auto gw = make_gateway(cfg);

  auto tampered = pkg;
  tampered.binding.customer_sig[3] ^= 0x01;
  SubmitFastPayRequest unknown;
  unknown.invoice_id = invoice.invoice_id + 999;
  unknown.package = pkg;
  const Bytes bad_sig = submit_frame(2, tampered);
  const Bytes bad_invoice = make_frame(MsgType::kSubmitFastPay, 3, unknown.serialize());

  std::atomic<std::uint64_t> accepts{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        // Every thread races the SAME valid package (distinct request
        // ids): each accept re-reserves the compensation, so the
        // collateral cap is what bounds the winners.
        const auto resp =
            decode_result(gw->serve(submit_frame(100 + t * 1000 + i, pkg), now));
        if (resp.accepted) accepts.fetch_add(1, std::memory_order_relaxed);
        (void)gw->serve(bad_sig, now);
        (void)gw->serve(bad_invoice, now);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = gw->escrow_snapshot(dep->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_LE(snap->view.reserved + snap->local_reserved, snap->view.collateral);
  EXPECT_EQ(snap->local_reserved, accepts.load() * pkg.binding.binding.compensation);
  EXPECT_EQ(gw->stats().accepts(), accepts.load());
  EXPECT_EQ(gw->reservations_granted(), accepts.load());
  EXPECT_EQ(gw->commit_queue_depth(), accepts.load());
  EXPECT_GT(gw->batcher().jobs_verified(), 0u);
}

TEST_F(GatewayUnit, PendingLimitClaimedAtomicallyAcrossQueues) {
  // The pending-payment bound is enforced with an atomic slot claim
  // instead of the old cross-shard commit lock; the boundary must stay
  // exact: limit 1 -> first accept wins the slot, second is rejected
  // with kPendingLimit even before any flush.
  core::MerchantService::Config mcfg = dep->merchant().config();
  mcfg.max_pending_payments = 1;
  core::MerchantService limited(dep->merchant().btc_identity(), dep->merchant_node(), dep->psc(),
                                mcfg);
  auto gw = std::make_unique<Gateway>(limited, pool, GatewayConfig{});
  gw->register_invoice(invoice);
  gw->track_escrow(dep->customer().escrow_id());

  const auto second_pkg = dep->customer().create_fastpay(
      invoice, coins[1].first, coins[1].second.out.value, now, dep->config().binding_ttl_ms);
  const auto first = decode_result(gw->serve(submit_frame(1, pkg), now));
  EXPECT_TRUE(first.accepted) << first.reason;
  const auto second = decode_result(gw->serve(submit_frame(2, second_pkg), now));
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.code, RejectReason::kPendingLimit);
  // The rejected claim released both the slot and the reservation.
  EXPECT_EQ(gw->commit_queue_depth(), 1u);
  const auto snap = gw->escrow_snapshot(dep->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, pkg.binding.binding.compensation);
}

TEST_F(GatewayUnit, StageHistogramsPopulated) {
  // One accepted submit must leave a sample in every stage it crossed;
  // the JSON dump carries the per-stage section.
  auto gw = make_gateway();
  const auto resp = decode_result(gw->serve(submit_frame(1, pkg), now));
  ASSERT_TRUE(resp.accepted) << resp.reason;

  const auto st = gw->stats();
  EXPECT_EQ(st.stage(Stage::kDecode).count(), 1u);
  EXPECT_EQ(st.stage(Stage::kVerify).count(), 1u);
  EXPECT_EQ(st.stage(Stage::kEvaluate).count(), 1u);
  EXPECT_EQ(st.stage(Stage::kReserve).count(), 1u);
  EXPECT_EQ(st.stage(Stage::kWal).count(), 0u);  // no store attached
  EXPECT_EQ(st.stage(Stage::kCommit).count(), 1u);
  EXPECT_EQ(st.stage(Stage::kRespond).count(), 1u);
  const std::string json = st.to_json();
  EXPECT_NE(json.find("\"stages_us\""), std::string::npos);
  EXPECT_NE(json.find("\"evaluate\""), std::string::npos);

  gw->reset_stats();
  EXPECT_EQ(gw->stats().stage(Stage::kDecode).count(), 0u);
}

}  // namespace
}  // namespace btcfast::gateway
