// End-to-end integration tests: the full BTCFast deployment — Bitcoin
// network + PSC chain + PayJudger + customer/merchant/relayer processes —
// driven through complete honest and adversarial scenarios.
#include <gtest/gtest.h>

#include "btcfast/orchestrator.h"

namespace btcfast::core {
namespace {

constexpr SimTime kSimHour = 60 * 60 * 1000;

TEST(Integration, HonestFastPayAcceptsInstantly) {
  DeploymentConfig cfg;
  cfg.seed = 7;
  cfg.attacker_share = 0.0;
  cfg.settle_confirmations = 3;
  Deployment dep(cfg);

  const FastPayResult r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted) << r.reject_reason;

  // The decision is local computation only: a few signature checks.
  // "< 1 second" is the paper's headline; we are orders below that.
  EXPECT_LT(r.decision_micros, 1'000'000.0);
  // End-to-end waiting time = message hop + decision, far under a second.
  EXPECT_LT(r.message_latency_ms, 1'000);
}

TEST(Integration, HonestPaymentSettlesWithoutDisputeOrFees) {
  DeploymentConfig cfg;
  cfg.seed = 8;
  cfg.attacker_share = 0.0;
  cfg.settle_confirmations = 3;
  Deployment dep(cfg);

  const FastPayResult r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted) << r.reject_reason;

  dep.run_for(3 * kSimHour);

  const DeploymentSummary s = dep.summarize();
  EXPECT_EQ(s.payments_settled, 1u);
  EXPECT_EQ(s.disputes_opened, 0u);
  EXPECT_EQ(s.judged_for_merchant, 0u);
  EXPECT_EQ(s.escrow_state, EscrowState::kActive);
  EXPECT_EQ(s.escrow_collateral, cfg.collateral);

  // Honest path on-chain cost: exactly the one-time deposit; nothing per
  // payment ("no extra operation fee").
  EXPECT_TRUE(dep.receipts_for("openDispute").empty());
  EXPECT_TRUE(dep.receipts_for("submitMerchantEvidence").empty());

  // The merchant actually received the BTC.
  EXPECT_GT(dep.merchant_node().chain().confirmations(r.txid), 3u);
}

TEST(Integration, MultipleHonestPaymentsReuseTheEscrow) {
  DeploymentConfig cfg;
  cfg.seed = 9;
  cfg.settle_confirmations = 2;
  cfg.compensation = 500'000;
  cfg.funded_coins = 3;
  Deployment dep(cfg);

  for (int i = 0; i < 3; ++i) {
    const FastPayResult r = dep.perform_fastpay(5 * btc::kCoin);
    ASSERT_TRUE(r.accepted) << "payment " << i << ": " << r.reject_reason;
    dep.run_for(kSimHour);  // let it confirm before the next one
  }
  dep.run_for(kSimHour);

  const DeploymentSummary s = dep.summarize();
  EXPECT_EQ(s.payments_settled, 3u);
  EXPECT_EQ(s.disputes_opened, 0u);
  EXPECT_EQ(s.escrow_collateral, cfg.collateral);
}

TEST(Integration, DoubleSpendIsDetectedDisputedAndCompensated) {
  DeploymentConfig cfg;
  cfg.seed = 21;
  cfg.attacker_share = 0.6;  // strong attacker: the double spend WILL land
  cfg.attacker_give_up_deficit = 50;
  cfg.settle_confirmations = 6;
  cfg.dispute_after_ms = 90 * 60 * 1000;
  cfg.evidence_window_ms = 60 * 60 * 1000;
  cfg.required_depth = 3;
  Deployment dep(cfg);

  // Attacker releases as soon as its secret chain is ahead (0-conf attack
  // against an instant-acceptance merchant).
  const FastPayResult r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted) << r.reject_reason;

  const psc::Value merchant_before = dep.psc().state().balance(
      dep.merchant().config().self_psc);

  dep.run_for(8 * kSimHour);

  const DeploymentSummary s = dep.summarize();
  // The payment was killed by the double spend...
  EXPECT_EQ(dep.merchant_node().chain().confirmations(r.txid), 0u);
  // ...so the merchant disputed and won compensation.
  EXPECT_EQ(s.disputes_opened, 1u);
  EXPECT_EQ(s.judged_for_merchant, 1u);
  EXPECT_EQ(s.judged_for_customer, 0u);
  EXPECT_EQ(s.escrow_collateral, cfg.collateral - cfg.compensation);

  const psc::Value merchant_after = dep.psc().state().balance(
      dep.merchant().config().self_psc);
  // Net of gas, the merchant is better off by ~the compensation.
  EXPECT_GT(merchant_after + 2'000'000, merchant_before + cfg.compensation);
}

TEST(Integration, WrongfulDisputeLosesToCustomerProof) {
  DeploymentConfig cfg;
  cfg.seed = 33;
  cfg.attacker_share = 0.0;        // honest customer
  cfg.dispute_after_ms = 60'000;   // impatient merchant disputes after 1 min
  cfg.evidence_window_ms = 90 * 60 * 1000;  // window long enough for k blocks
  cfg.required_depth = 3;
  cfg.settle_confirmations = 3;
  cfg.poll_interval_ms = 30'000;
  Deployment dep(cfg);

  const FastPayResult r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted) << r.reject_reason;

  dep.run_for(6 * kSimHour);

  const DeploymentSummary s = dep.summarize();
  EXPECT_EQ(s.disputes_opened, 1u);
  EXPECT_EQ(s.judged_for_customer, 1u);
  EXPECT_EQ(s.judged_for_merchant, 0u);
  // Collateral untouched; the merchant still got its BTC (the payment
  // confirmed normally) AND forfeited its dispute bond.
  EXPECT_EQ(s.escrow_collateral, cfg.collateral);
  EXPECT_GT(dep.merchant_node().chain().confirmations(r.txid), cfg.required_depth);
}

TEST(Integration, EscrowWithdrawAfterQuietPeriod) {
  DeploymentConfig cfg;
  cfg.seed = 44;
  cfg.escrow_unlock_delay_ms = 5 * kSimHour;
  cfg.binding_ttl_ms = 4 * kSimHour;
  cfg.dispute_after_ms = 60 * 60 * 1000;
  cfg.evidence_window_ms = 30 * 60 * 1000;
  cfg.settle_confirmations = 3;
  Deployment dep(cfg);

  const FastPayResult r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted) << r.reject_reason;
  dep.run_for(5 * kSimHour + 10 * 60 * 1000);

  // Customer reclaims the collateral.
  const auto tx = dep.customer().make_withdraw_tx(dep.judger_address());
  const auto receipt =
      dep.psc().execute_now(tx, static_cast<std::uint64_t>(dep.simulator().now()));
  ASSERT_TRUE(receipt.success) << receipt.revert_reason;
  EXPECT_EQ(dep.escrow_view()->state, EscrowState::kEmpty);
}

TEST(Integration, RelayerAdvancesContractCheckpoint) {
  DeploymentConfig cfg;
  cfg.seed = 55;
  cfg.relayer_lag_blocks = 3;
  Deployment dep(cfg);

  dep.run_for(8 * kSimHour);  // ~48 blocks; relayer should push updates

  const auto checkpoint = dep.relayer().read_checkpoint();
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_GT(checkpoint->second, 0u);  // height advanced beyond deployment
  // The checkpoint is on the merchant's active chain.
  EXPECT_TRUE(dep.merchant_node().chain().is_on_active_chain(checkpoint->first));
}

TEST(Integration, MerchantRejectsOverdrawnEscrow) {
  DeploymentConfig cfg;
  cfg.seed = 66;
  cfg.collateral = 1'500'000;
  cfg.compensation = 1'000'000;  // two payments would overrun collateral
  cfg.funded_coins = 2;
  Deployment dep(cfg);

  const FastPayResult first = dep.perform_fastpay(5 * btc::kCoin);
  ASSERT_TRUE(first.accepted) << first.reject_reason;
  // Second binding would push exposure to 2'000'000 > 1'500'000.
  const FastPayResult second = dep.perform_fastpay(5 * btc::kCoin);
  EXPECT_FALSE(second.accepted);
  EXPECT_NE(second.reject_reason.find("collateral"), std::string::npos);
}

TEST(Integration, MerchantRejectsDoubleSpendVisibleInMempool) {
  DeploymentConfig cfg;
  cfg.seed = 77;
  Deployment dep(cfg);

  // First payment occupies the coin in every mempool.
  const FastPayResult first = dep.perform_fastpay(5 * btc::kCoin);
  ASSERT_TRUE(first.accepted);
  dep.run_for(10 * 1000);  // let the tx propagate to the merchant's node

  // Craft a second package spending the SAME coin (naive double spend):
  // recover the first payment's input from the merchant node's mempool.
  auto& customer = dep.customer();
  const auto now = static_cast<std::uint64_t>(dep.simulator().now());
  // Different amount -> different outputs -> genuinely conflicting txid.
  const Invoice invoice = dep.merchant().make_invoice(4 * btc::kCoin, cfg.compensation, now,
                                                      10 * 60 * 1000);
  const auto first_tx = dep.merchant_node().mempool().get(first.txid);
  ASSERT_TRUE(first_tx.has_value());
  const btc::OutPoint coin_op = first_tx->inputs[0].prevout;
  const auto coin = dep.customer_node().chain().utxo().get(coin_op);
  ASSERT_TRUE(coin.has_value());
  FastPayPackage pkg =
      customer.create_fastpay(invoice, coin_op, coin->out.value, now, cfg.binding_ttl_ms);
  const AcceptDecision d = dep.merchant().evaluate_fastpay(pkg, invoice, now);
  EXPECT_FALSE(d.accepted);
  EXPECT_NE(d.reason.find("double-spent in mempool"), std::string::npos) << d.reason;
}

TEST(Integration, SummaryGasAccountingIsVisible) {
  DeploymentConfig cfg;
  cfg.seed = 88;
  Deployment dep(cfg);
  const auto s = dep.summarize();
  // Deposit happened during construction.
  EXPECT_GT(s.total_gas_used, 21'000u);
}

}  // namespace
}  // namespace btcfast::core
