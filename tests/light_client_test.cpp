// SPV light-client tests: header sync, heaviest-chain tracking, proof
// acceptance and reorg awareness.
#include <gtest/gtest.h>

#include "btc/chain.h"
#include "btc/light_client.h"
#include "btc/pow.h"
#include "btcsim/scenario.h"

namespace btcfast::btc {
namespace {

struct SpvFixture : ::testing::Test {
  SpvFixture() : params(ChainParams::regtest()), chain(params), client(params) {
    dest = sim::Party::make(1).script;
  }

  Block mine_one(Chain& on, std::uint32_t salt = 0, std::vector<Transaction> txs = {}) {
    Block b;
    b.header.prev_hash = on.tip_hash();
    b.header.time = on.tip_header().time + 600;
    b.header.bits = on.next_work_required(b.header.prev_hash);
    Transaction cb;
    TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = (on.height() + 1) * 100 + salt;
    cb.inputs.push_back(in);
    cb.outputs.push_back(TxOut{params.subsidy, dest});
    b.txs.push_back(cb);
    for (auto& tx : txs) b.txs.push_back(std::move(tx));
    EXPECT_TRUE(mine_block(b, params));
    EXPECT_EQ(on.submit_block(b), SubmitResult::kActiveTip);
    return b;
  }

  ChainParams params;
  Chain chain;
  SpvClient client;
  ScriptPubKey dest;
};

TEST_F(SpvFixture, StartsAtSharedGenesis) {
  EXPECT_EQ(client.height(), 0u);
  EXPECT_EQ(client.tip_hash(), chain.tip_hash());
}

TEST_F(SpvFixture, SyncsHeaders) {
  for (int i = 0; i < 5; ++i) mine_one(chain);
  ASSERT_TRUE(client.add_headers(chain.header_range(1, 5)).ok());
  EXPECT_EQ(client.height(), 5u);
  EXPECT_EQ(client.tip_hash(), chain.tip_hash());
}

TEST_F(SpvFixture, RejectsOrphansAndFakePow) {
  Block b = mine_one(chain);
  BlockHeader orphan = b.header;
  orphan.prev_hash.bytes[0] ^= 1;
  EXPECT_EQ(client.add_header(orphan).error().code, "spv-orphan-header");

  BlockHeader fake = b.header;
  fake.nonce ^= 0x1234;
  EXPECT_EQ(client.add_header(fake).error().code, "spv-bad-pow");
}

TEST_F(SpvFixture, IdempotentHeaderAdd) {
  Block b = mine_one(chain);
  ASSERT_TRUE(client.add_header(b.header).ok());
  EXPECT_TRUE(client.add_header(b.header).ok());
  EXPECT_EQ(client.height(), 1u);
}

TEST_F(SpvFixture, ProofGivesConfirmations) {
  // A watched payment proves into block 1 and gains depth as headers sync.
  const auto customer = sim::Party::make(2);
  Chain funded(params);
  for (const auto& blk : sim::build_funding_chain(params, {customer.script}, 1)) {
    ASSERT_EQ(funded.submit_block(blk), SubmitResult::kActiveTip);
    ASSERT_TRUE(client.add_header(blk.header).ok());
  }
  const auto coins = sim::find_spendable(funded, customer.script);
  const auto payment = sim::build_payment(customer, coins[0].first,
                                          coins[0].second.out.value, dest, kCoin);
  client.watch(payment.txid());

  // Mine it plus some depth on the funded chain.
  Block with_tx;
  {
    Block b;
    b.header.prev_hash = funded.tip_hash();
    b.header.time = funded.tip_header().time + 600;
    b.header.bits = funded.next_work_required(b.header.prev_hash);
    Transaction cb;
    TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = 777;
    cb.inputs.push_back(in);
    cb.outputs.push_back(TxOut{params.subsidy, dest});
    b.txs.push_back(cb);
    b.txs.push_back(payment);
    ASSERT_TRUE(mine_block(b, params));
    ASSERT_EQ(funded.submit_block(b), SubmitResult::kActiveTip);
    with_tx = b;
  }
  ASSERT_TRUE(client.add_header(with_tx.header).ok());

  // Proof before + after depth.
  const auto proof = make_inclusion_proof(with_tx, payment.txid());
  ASSERT_TRUE(proof.has_value());
  ASSERT_TRUE(client.submit_proof(*proof).ok());
  EXPECT_EQ(client.confirmations(payment.txid()), 1u);

  for (int i = 0; i < 3; ++i) {
    Block b;
    b.header.prev_hash = funded.tip_hash();
    b.header.time = funded.tip_header().time + 600;
    b.header.bits = funded.next_work_required(b.header.prev_hash);
    Transaction cb;
    TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = 800 + static_cast<std::uint32_t>(i);
    cb.inputs.push_back(in);
    cb.outputs.push_back(TxOut{params.subsidy, dest});
    b.txs.push_back(cb);
    ASSERT_TRUE(mine_block(b, params));
    ASSERT_EQ(funded.submit_block(b), SubmitResult::kActiveTip);
    ASSERT_TRUE(client.add_header(b.header).ok());
  }
  EXPECT_EQ(client.confirmations(payment.txid()), 4u);
}

TEST_F(SpvFixture, ProofRequiresWatchAndKnownHeader) {
  Block b = mine_one(chain);
  const auto proof = make_inclusion_proof(b, b.txs[0].txid());
  ASSERT_TRUE(proof.has_value());
  // Not watching -> refused.
  EXPECT_EQ(client.submit_proof(*proof).error().code, "spv-not-watching");
  client.watch(b.txs[0].txid());
  // Header unknown -> refused.
  EXPECT_EQ(client.submit_proof(*proof).error().code, "spv-unknown-header");
  ASSERT_TRUE(client.add_header(b.header).ok());
  EXPECT_TRUE(client.submit_proof(*proof).ok());
}

TEST_F(SpvFixture, TamperedProofRefused) {
  Block b = mine_one(chain);
  client.watch(b.txs[0].txid());
  ASSERT_TRUE(client.add_header(b.header).ok());
  auto proof = *make_inclusion_proof(b, b.txs[0].txid());
  proof.branch.index ^= 1;
  // Single-tx block has no siblings; corrupt the root reference instead.
  proof.header.merkle_root.bytes[0] ^= 1;
  EXPECT_FALSE(client.submit_proof(proof).ok());
}

TEST_F(SpvFixture, ReorgInvalidatesConfirmations) {
  // Proof lands on branch A; a heavier branch B takes over; confirmations
  // drop to zero because the proof's block left the active chain.
  Block a1 = mine_one(chain, 1);
  client.watch(a1.txs[0].txid());
  ASSERT_TRUE(client.add_header(a1.header).ok());
  ASSERT_TRUE(client.submit_proof(*make_inclusion_proof(a1, a1.txs[0].txid())).ok());
  EXPECT_EQ(client.confirmations(a1.txs[0].txid()), 1u);

  // Rival branch from genesis, two blocks.
  Chain rival(params);
  Block b1 = mine_one(rival, 2);
  Block b2 = mine_one(rival, 3);
  ASSERT_TRUE(client.add_header(b1.header).ok());
  ASSERT_TRUE(client.add_header(b2.header).ok());

  EXPECT_EQ(client.tip_hash(), b2.hash());
  EXPECT_EQ(client.confirmations(a1.txs[0].txid()), 0u);

  // Branch A regains the lead: confirmations return.
  Block a2 = mine_one(chain, 4);
  Block a3 = mine_one(chain, 5);
  ASSERT_TRUE(client.add_header(a2.header).ok());
  ASSERT_TRUE(client.add_header(a3.header).ok());
  EXPECT_EQ(client.confirmations(a1.txs[0].txid()), 3u);
}

}  // namespace
}  // namespace btcfast::btc
