// Marketplace-scale integration tests (smaller populations than the E10
// bench so they stay fast): concurrent escrows, race-attack handling, and
// the serialized-dispute retry path.
#include <gtest/gtest.h>

#include "btcfast/marketplace.h"

namespace btcfast::core {
namespace {

TEST(Marketplace, HonestPopulationAllSettles) {
  MarketplaceConfig cfg;
  cfg.customers = 2;
  cfg.merchants = 2;
  cfg.dishonest_customers = 0;
  cfg.payments_per_hour_per_customer = 1.5;
  cfg.duration = 4LL * 60 * 60 * 1000;
  cfg.seed = 5;
  const auto r = run_marketplace(cfg);

  EXPECT_GT(r.payments_attempted, 2u);
  EXPECT_EQ(r.payments_accepted, r.payments_attempted);
  EXPECT_EQ(r.payments_settled, r.payments_accepted);
  EXPECT_EQ(r.race_attacks, 0u);
  EXPECT_EQ(r.double_spends_landed, 0u);
  EXPECT_TRUE(r.merchants_made_whole);
  EXPECT_LT(r.mean_decision_micros, 1e6);  // each decision < 1 s
}

TEST(Marketplace, RaceAttackersAreCompensatedAgainst) {
  MarketplaceConfig cfg;
  cfg.customers = 2;
  cfg.merchants = 2;
  cfg.dishonest_customers = 1;
  cfg.payments_per_hour_per_customer = 1.5;
  cfg.duration = 6LL * 60 * 60 * 1000;
  cfg.seed = 8;
  const auto r = run_marketplace(cfg);

  EXPECT_GT(r.race_attacks, 0u);
  // Every payment the attacks actually killed produced a merchant win.
  EXPECT_TRUE(r.merchants_made_whole)
      << "landed=" << r.double_spends_landed << " wins=" << r.judged_for_merchant;
  // Honest customers were never robbed: no judgments beyond the losses
  // plus possibly-impatient disputes resolved for customers.
  EXPECT_GE(r.judged_for_merchant, r.double_spends_landed);
}

TEST(Marketplace, DeterministicPerSeed) {
  MarketplaceConfig cfg;
  cfg.customers = 2;
  cfg.merchants = 1;
  cfg.dishonest_customers = 1;
  cfg.duration = 3LL * 60 * 60 * 1000;
  cfg.seed = 13;
  const auto a = run_marketplace(cfg);
  const auto b = run_marketplace(cfg);
  EXPECT_EQ(a.payments_attempted, b.payments_attempted);
  EXPECT_EQ(a.double_spends_landed, b.double_spends_landed);
  EXPECT_EQ(a.judged_for_merchant, b.judged_for_merchant);
  EXPECT_EQ(a.total_gas, b.total_gas);
}

}  // namespace
}  // namespace btcfast::core
