// Component-level unit tests for MerchantService, CustomerWallet and the
// protocol messages — every rejection path of the fast-pay evaluation
// exercised directly (the integration suite covers the happy paths).
#include <gtest/gtest.h>

#include <limits>

#include "btcfast/orchestrator.h"

namespace btcfast::core {
namespace {

/// Deployment-backed harness: gives us a consistent world, then we tamper
/// with packages before evaluation.
struct MerchantUnit : ::testing::Test {
  MerchantUnit() {
    DeploymentConfig cfg;
    cfg.seed = 314;
    cfg.funded_coins = 3;
    dep = std::make_unique<Deployment>(cfg);
    now = static_cast<std::uint64_t>(dep->simulator().now());
    invoice = dep->merchant().make_invoice(5 * btc::kCoin, dep->config().compensation, now,
                                           10ULL * 60 * 1000);
    const auto coins = sim::find_spendable(dep->customer_node().chain(),
                                           dep->customer().btc_identity().script);
    coin_op = coins.front().first;
    coin_value = coins.front().second.out.value;
    pkg = dep->customer().create_fastpay(invoice, coin_op, coin_value, now,
                                         dep->config().binding_ttl_ms);
  }

  AcceptDecision eval() { return dep->merchant().evaluate_fastpay(pkg, invoice, now); }

  std::unique_ptr<Deployment> dep;
  std::uint64_t now = 0;
  Invoice invoice{};
  btc::OutPoint coin_op{};
  btc::Amount coin_value = 0;
  FastPayPackage pkg{};
};

TEST_F(MerchantUnit, ValidPackageAccepted) {
  const auto d = eval();
  EXPECT_TRUE(d.accepted) << d.reason;
  EXPECT_EQ(d.code, RejectReason::kNone);
}

TEST_F(MerchantUnit, ExpiredInvoiceRejected) {
  now = invoice.expires_at_ms + 1;
  const auto d = eval();
  EXPECT_EQ(d.reason, "invoice expired");
  EXPECT_EQ(d.code, RejectReason::kInvoiceExpired);
}

TEST_F(MerchantUnit, WrongMerchantBindingRejected) {
  pkg.binding.binding.merchant = psc::Address::from_label("somebody-else");
  EXPECT_EQ(eval().reason, "binding names another merchant");
}

TEST_F(MerchantUnit, LowCompensationRejected) {
  pkg.binding.binding.compensation = invoice.compensation - 1;
  EXPECT_EQ(eval().reason, "compensation below invoice");
}

TEST_F(MerchantUnit, ShortExpiryRejected) {
  pkg.binding.binding.expiry_ms = now + 60'000;  // dispute couldn't finish
  EXPECT_NE(eval().reason.find("expires before a dispute"), std::string::npos);
}

TEST_F(MerchantUnit, TxidMismatchRejected) {
  pkg.binding.binding.btc_txid.bytes[0] ^= 1;
  EXPECT_EQ(eval().reason, "binding txid mismatch");
}

TEST_F(MerchantUnit, UnderpaymentRejected) {
  // Outputs pay less than the invoice amount.
  pkg.payment_tx.outputs[0].value = invoice.amount_sat - 1;
  btc::sign_input(pkg.payment_tx, 0, dep->customer().btc_identity().key,
                  dep->customer().btc_identity().script);
  pkg.binding.binding.btc_txid = pkg.payment_tx.txid();
  const auto sig = crypto::ecdsa_sign(dep->customer().btc_identity().key,
                                      pkg.binding.binding.signing_digest());
  pkg.binding.customer_sig = sig.serialize();
  EXPECT_EQ(eval().reason, "payment output below invoice amount");
}

TEST_F(MerchantUnit, UnknownEscrowRejected) {
  pkg.binding.binding.escrow_id = 999;
  // Re-sign so the signature check isn't what fails.
  const auto sig = crypto::ecdsa_sign(dep->customer().btc_identity().key,
                                      pkg.binding.binding.signing_digest());
  pkg.binding.customer_sig = sig.serialize();
  EXPECT_EQ(eval().reason, "escrow not active");
}

TEST_F(MerchantUnit, ForgedBindingSignatureRejected) {
  pkg.binding.customer_sig[7] ^= 0x40;
  const auto d = eval();
  EXPECT_EQ(d.reason, "binding signature invalid");
  EXPECT_EQ(d.code, RejectReason::kBindingSigInvalid);
}

TEST_F(MerchantUnit, BindingSignedByWrongKeyRejected) {
  const auto wrong = sim::Party::make(987654);
  const auto sig = crypto::ecdsa_sign(wrong.key, pkg.binding.binding.signing_digest());
  pkg.binding.customer_sig = sig.serialize();
  EXPECT_EQ(eval().reason, "binding signature invalid");
}

TEST_F(MerchantUnit, MissingInputRejected) {
  pkg.payment_tx.inputs[0].prevout.txid.bytes[5] ^= 1;
  // Keep binding consistent with the (new) txid and re-sign.
  pkg.binding.binding.btc_txid = pkg.payment_tx.txid();
  const auto sig = crypto::ecdsa_sign(dep->customer().btc_identity().key,
                                      pkg.binding.binding.signing_digest());
  pkg.binding.customer_sig = sig.serialize();
  EXPECT_NE(eval().reason.find("input missing"), std::string::npos);
}

TEST_F(MerchantUnit, BadPaymentSignatureRejected) {
  pkg.payment_tx.inputs[0].script_sig.signature[3] ^= 1;
  pkg.binding.binding.btc_txid = pkg.payment_tx.txid();
  const auto sig = crypto::ecdsa_sign(dep->customer().btc_identity().key,
                                      pkg.binding.binding.signing_digest());
  pkg.binding.customer_sig = sig.serialize();
  EXPECT_NE(eval().reason.find("signature invalid"), std::string::npos);
}

TEST_F(MerchantUnit, ExposureAccumulatesAcrossAccepts) {
  EXPECT_EQ(dep->merchant().outstanding_exposure(dep->customer().escrow_id()), 0u);
  (void)dep->merchant().accept_payment(pkg, invoice, now);
  EXPECT_EQ(dep->merchant().outstanding_exposure(dep->customer().escrow_id()),
            pkg.binding.binding.compensation);
}

/// A second MerchantService over the same deployment world (same identity,
/// node and PSC view) but with admission limits — Config is fixed at
/// construction, so limit boundaries get their own instance.
struct MerchantLimits : MerchantUnit {
  MerchantService limited(std::size_t max_pending, psc::Value exposure_cap) {
    MerchantService::Config cfg = dep->merchant().config();
    cfg.max_pending_payments = max_pending;
    cfg.per_escrow_exposure_cap = exposure_cap;
    return MerchantService(dep->merchant().btc_identity(), dep->merchant_node(), dep->psc(),
                           cfg);
  }

  FastPayPackage second_package() {
    const auto coins = sim::find_spendable(dep->customer_node().chain(),
                                           dep->customer().btc_identity().script);
    return dep->customer().create_fastpay(invoice, coins[1].first, coins[1].second.out.value,
                                          now, dep->config().binding_ttl_ms);
  }
};

TEST_F(MerchantLimits, PendingLimitBoundary) {
  auto svc = limited(/*max_pending=*/1, /*exposure_cap=*/0);

  // First payment fits exactly at the bound...
  const auto first = svc.evaluate_fastpay(pkg, invoice, now);
  ASSERT_TRUE(first.accepted) << first.reason;
  (void)svc.accept_payment(pkg, invoice, now);
  EXPECT_EQ(svc.active_pending_count(), 1u);

  // ...the next one trips it before any signature work.
  const auto second = svc.evaluate_fastpay(second_package(), invoice, now);
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.code, RejectReason::kPendingLimit);
  EXPECT_EQ(second.reason, "merchant pending-payment limit reached");
}

TEST_F(MerchantLimits, PendingLimitOfTwoAdmitsSecond) {
  auto svc = limited(/*max_pending=*/2, /*exposure_cap=*/0);
  ASSERT_TRUE(svc.evaluate_fastpay(pkg, invoice, now).accepted);
  (void)svc.accept_payment(pkg, invoice, now);
  const auto second = svc.evaluate_fastpay(second_package(), invoice, now);
  EXPECT_TRUE(second.accepted) << second.reason;
}

TEST_F(MerchantLimits, ExposureCapBoundary) {
  // Cap set to exactly one compensation: the first payment lands on the
  // boundary and is admitted; the second would exceed it.
  auto svc = limited(/*max_pending=*/0, /*exposure_cap=*/invoice.compensation);

  const auto first = svc.evaluate_fastpay(pkg, invoice, now);
  ASSERT_TRUE(first.accepted) << first.reason;
  (void)svc.accept_payment(pkg, invoice, now);
  EXPECT_EQ(svc.outstanding_exposure(dep->customer().escrow_id()), invoice.compensation);

  const auto second = svc.evaluate_fastpay(second_package(), invoice, now);
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.code, RejectReason::kExposureCap);
}

TEST_F(MerchantLimits, HugeCompensationCannotWrapCoverageCheck) {
  // Regression: with outstanding exposure s > 0, a self-signed binding
  // asking for 2^64 - s used to wrap `b.compensation + outstanding` to 0
  // and pass the coverage check, accepting unlimited exposure.
  auto svc = limited(/*max_pending=*/0, /*exposure_cap=*/0);
  ASSERT_TRUE(svc.evaluate_fastpay(pkg, invoice, now).accepted);
  (void)svc.accept_payment(pkg, invoice, now);
  const auto outstanding = svc.outstanding_exposure(dep->customer().escrow_id());
  ASSERT_GT(outstanding, 0u);

  auto evil = second_package();
  evil.binding.binding.compensation =
      std::numeric_limits<psc::Value>::max() - outstanding + 1;  // sum wraps to 0
  const auto sig = crypto::ecdsa_sign(dep->customer().btc_identity().key,
                                      evil.binding.binding.signing_digest());
  evil.binding.customer_sig = sig.serialize();

  const auto d = svc.evaluate_fastpay(evil, invoice, now);
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.code, RejectReason::kInsufficientCollateral);
}

TEST_F(MerchantLimits, ExposureCapBelowOnePaymentRejectsImmediately) {
  auto svc = limited(/*max_pending=*/0, /*exposure_cap=*/invoice.compensation - 1);
  const auto d = svc.evaluate_fastpay(pkg, invoice, now);
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.code, RejectReason::kExposureCap);
}

TEST_F(MerchantUnit, InvoiceIdsAreUnique) {
  const auto a = dep->merchant().make_invoice(1, 1, now, 1000);
  const auto b = dep->merchant().make_invoice(1, 1, now, 1000);
  EXPECT_NE(a.invoice_id, b.invoice_id);
}

TEST(CustomerUnit, BindingNoncesIncrement) {
  DeploymentConfig cfg;
  cfg.seed = 315;
  cfg.funded_coins = 2;
  Deployment dep(cfg);
  const auto now = static_cast<std::uint64_t>(dep.simulator().now());
  const auto invoice =
      dep.merchant().make_invoice(btc::kCoin, cfg.compensation, now, 10ULL * 60 * 1000);
  const auto coins = sim::find_spendable(dep.customer_node().chain(),
                                         dep.customer().btc_identity().script);
  auto p1 = dep.customer().create_fastpay(invoice, coins[0].first,
                                          coins[0].second.out.value, now, cfg.binding_ttl_ms);
  auto p2 = dep.customer().create_fastpay(invoice, coins[1].first,
                                          coins[1].second.out.value, now, cfg.binding_ttl_ms);
  EXPECT_EQ(p1.binding.binding.nonce + 1, p2.binding.binding.nonce);
  EXPECT_EQ(dep.customer().bindings_issued(), 2u);
}

TEST(ProtocolUnit, PackageSerializationRoundTrip) {
  DeploymentConfig cfg;
  cfg.seed = 316;
  Deployment dep(cfg);
  const auto now = static_cast<std::uint64_t>(dep.simulator().now());
  const auto invoice =
      dep.merchant().make_invoice(btc::kCoin, cfg.compensation, now, 10ULL * 60 * 1000);
  const auto coins = sim::find_spendable(dep.customer_node().chain(),
                                         dep.customer().btc_identity().script);
  const auto pkg = dep.customer().create_fastpay(invoice, coins[0].first,
                                                 coins[0].second.out.value, now,
                                                 cfg.binding_ttl_ms);
  const auto back = FastPayPackage::deserialize(pkg.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payment_tx, pkg.payment_tx);
  EXPECT_EQ(back->binding, pkg.binding);
  // The decoded binding still verifies.
  EXPECT_TRUE(back->binding.verify(dep.customer().btc_identity().pub));
}

TEST(ProtocolUnit, BindingDigestDomainSeparated) {
  PaymentBinding b;
  b.escrow_id = 1;
  b.compensation = 5;
  const auto digest = b.signing_digest();
  // Not equal to a plain hash of the serialization (domain tag matters).
  EXPECT_NE(digest, crypto::sha256(b.serialize()));
  // And sensitive to every field.
  PaymentBinding c = b;
  c.nonce = 1;
  EXPECT_NE(c.signing_digest(), digest);
}

}  // namespace
}  // namespace btcfast::core
