// Network torture tests for the TCP gateway front end (src/net):
//
//   1. FrameAssembler — every pathological delivery pattern a TCP stream
//      can produce: frames split at every byte boundary, coalesced
//      frames, a length prefix dripped one byte per poll, zero- and
//      max-length payloads, framing violations (bad magic, oversized
//      length announcements).
//   2. Connection over socketpairs with a fake clock — reassembly across
//      fragmentation, EOF mid-frame, bounded write buffering, idle and
//      frame-stall timeout arithmetic.
//   3. The full TcpServer against a live gateway deployment over
//      loopback — byte parity with direct GatewayPipeline::serve() for
//      scripted frame sequences under every fragmentation, shed
//      backpressure, and the adversarial clients: slow-loris drip,
//      write-stall (never drains responses), garbage/oversized framing
//      (score -> ban), and reconnect-after-ban.
//
// The server is driven with poll_once() on the test thread and a scripted
// clock, so every timeout fires by arithmetic, not by sleeping.
#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "btcfast/customer.h"
#include "btcfast/orchestrator.h"
#include "common/thread_pool.h"
#include "gateway/pipeline.h"
#include "gateway/wire.h"
#include "net/ban_list.h"
#include "net/connection.h"
#include "net/frame_assembler.h"
#include "net/server.h"

namespace btcfast::net {
namespace {

using gateway::Frame;
using gateway::make_frame;
using gateway::MsgType;

// ------------------------------------------------------------ helpers

Bytes concat(const std::vector<Bytes>& frames) {
  Bytes out;
  for (const auto& f : frames) append(out, f);
  return out;
}

/// Feed a stream into an assembler in fixed-size chunks, draining
/// complete frames after every feed (exactly how Connection uses it).
std::vector<Bytes> feed_chunked(FrameAssembler& a, ByteSpan stream, std::size_t chunk) {
  std::vector<Bytes> out;
  for (std::size_t off = 0; off < stream.size(); off += chunk) {
    const std::size_t n = std::min(chunk, stream.size() - off);
    if (!a.feed(stream.subspan(off, n))) break;
    while (auto f = a.next_frame()) out.push_back(std::move(*f));
  }
  return out;
}

/// A scripted frame mix: every request type, a zero-length payload, an
/// unknown-but-framed type, and a garbage payload — all of which must
/// reassemble byte-exactly (the gateway answers the bad ones).
std::vector<Bytes> sample_frames() {
  std::vector<Bytes> frames;
  frames.push_back(make_frame(MsgType::kQueryEscrow, 1,
                              gateway::QueryEscrowRequest{42}.serialize()));
  frames.push_back(make_frame(MsgType::kGetReceipt, 2, gateway::GetReceiptRequest{7}.serialize()));
  frames.push_back(make_frame(MsgType::kQueryEscrow, 3, Bytes{}));  // zero-length payload
  {
    // Unknown type, valid framing: the assembler must deliver it intact.
    gateway::Frame f;
    f.type = static_cast<MsgType>(0x7f);
    f.request_id = 4;
    f.payload = {0xde, 0xad};
    frames.push_back(f.serialize());
  }
  {
    Bytes big(300, 0xab);  // 3-byte varint length prefix
    frames.push_back(make_frame(MsgType::kSubmitFastPay, 5, std::move(big)));
  }
  return frames;
}

int make_socketpair(int fds[2]) { return ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds); }

void write_all(int fd, ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

// ----------------------------------------------------- FrameAssembler

TEST(FrameAssembler, ReassemblesAtEveryByteBoundary) {
  const auto frames = sample_frames();
  const Bytes stream = concat(frames);
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    FrameAssembler a;
    const auto got = feed_chunked(a, stream, chunk);
    ASSERT_EQ(got.size(), frames.size()) << "chunk size " << chunk;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(got[i], frames[i]) << "chunk size " << chunk << ", frame " << i;
    }
    EXPECT_FALSE(a.poisoned());
    EXPECT_EQ(a.buffered(), 0u);
  }
}

TEST(FrameAssembler, CoalescedFramesInOneFeed) {
  const auto frames = sample_frames();
  FrameAssembler a;
  ASSERT_TRUE(a.feed(concat(frames)));
  for (const auto& want : frames) {
    auto got = a.next_frame();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want);
  }
  EXPECT_FALSE(a.next_frame().has_value());
}

TEST(FrameAssembler, LengthPrefixDrippedOneBytePerFeed) {
  // 300-byte payload: the varint is 0xfd + u16le, so the length itself
  // spans three polls.
  const Bytes frame = make_frame(MsgType::kSubmitFastPay, 9, Bytes(300, 0x5a));
  FrameAssembler a;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    ASSERT_TRUE(a.feed({&frame[i], 1}));
    EXPECT_FALSE(a.next_frame().has_value()) << "completed early at byte " << i;
  }
  ASSERT_TRUE(a.feed({&frame[frame.size() - 1], 1}));
  const auto got = a.next_frame();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
}

TEST(FrameAssembler, ZeroAndMaxLengthFrames) {
  const Bytes zero = make_frame(MsgType::kQueryEscrow, 1, Bytes{});
  const Bytes max = make_frame(MsgType::kSubmitFastPay, 2, Bytes(gateway::kMaxFramePayload, 0x77));
  const Bytes stream = concat({zero, max, zero});
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{4096},
                                  stream.size()}) {
    FrameAssembler a;
    const auto got = feed_chunked(a, stream, chunk);
    ASSERT_EQ(got.size(), 3u) << "chunk " << chunk;
    EXPECT_EQ(got[0], zero);
    EXPECT_EQ(got[1], max);
    EXPECT_EQ(got[2], zero);
  }
}

TEST(FrameAssembler, OversizedLengthPoisonsWithRequestId) {
  Writer w;
  w.u32le(gateway::kWireMagic);
  w.u8(static_cast<std::uint8_t>(MsgType::kSubmitFastPay));
  w.u64le(0xfeedfacecafebeefull);
  w.varint(gateway::kMaxFramePayload + 1);
  FrameAssembler a;
  ASSERT_TRUE(a.feed(std::move(w).take()));
  EXPECT_FALSE(a.next_frame().has_value());
  EXPECT_EQ(a.error(), FrameAssembler::Error::kOversizedLength);
  EXPECT_EQ(a.error_request_id(), 0xfeedfacecafebeefull);
  // Poisoned: everything after is dropped.
  EXPECT_FALSE(a.feed(Bytes{0x00}));
  EXPECT_FALSE(a.next_frame().has_value());
}

TEST(FrameAssembler, BadMagicPoisonsOnFirstWrongByte) {
  FrameAssembler a;
  ASSERT_TRUE(a.feed(Bytes{0x31}));  // correct first magic byte
  EXPECT_FALSE(a.next_frame().has_value());
  EXPECT_FALSE(a.poisoned());
  ASSERT_TRUE(a.feed(Bytes{0x00}));  // wrong second byte
  EXPECT_FALSE(a.next_frame().has_value());
  EXPECT_EQ(a.error(), FrameAssembler::Error::kBadMagic);
  EXPECT_EQ(a.error_request_id(), 0u);  // header never became readable
}

TEST(FrameAssembler, GarbageAfterValidFramePoisonsButKeepsFrame) {
  const Bytes good = make_frame(MsgType::kGetReceipt, 11, gateway::GetReceiptRequest{1}.serialize());
  Bytes stream = good;
  append(stream, Bytes{0xff, 0xfe, 0xfd});
  FrameAssembler a;
  ASSERT_TRUE(a.feed(stream));
  const auto got = a.next_frame();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, good);
  EXPECT_FALSE(a.next_frame().has_value());
  EXPECT_EQ(a.error(), FrameAssembler::Error::kBadMagic);
}

// --------------------------------------------- Connection (socketpair)

TEST(Connection, ReassemblesAcrossArbitraryFragmentation) {
  int fds[2];
  ASSERT_EQ(make_socketpair(fds), 0);
  Connection conn(fds[0], "test-peer", ConnConfig{}, /*now_ms=*/0);
  const auto frames = sample_frames();
  const Bytes stream = concat(frames);

  std::vector<Bytes> got;
  // 7-byte fragments with a read between each: worst-case interleaving
  // of partial headers and partial payloads.
  for (std::size_t off = 0; off < stream.size(); off += 7) {
    const std::size_t n = std::min<std::size_t>(7, stream.size() - off);
    write_all(fds[1], {stream.data() + off, n});
    auto ev = conn.on_readable(off);
    EXPECT_FALSE(ev.eof);
    EXPECT_FALSE(ev.framing_error);
    for (auto& f : ev.frames) got.push_back(std::move(f));
  }
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) EXPECT_EQ(got[i], frames[i]);
  ::close(fds[1]);
}

TEST(Connection, EofMidFrameDropsPartialWithoutFabricating) {
  int fds[2];
  ASSERT_EQ(make_socketpair(fds), 0);
  Connection conn(fds[0], "test-peer", ConnConfig{}, 0);
  const Bytes frame = make_frame(MsgType::kQueryEscrow, 3, gateway::QueryEscrowRequest{1}.serialize());
  write_all(fds[1], {frame.data(), frame.size() / 2});
  ::close(fds[1]);
  const auto ev = conn.on_readable(10);
  EXPECT_TRUE(ev.eof);
  EXPECT_TRUE(ev.frames.empty());
  EXPECT_FALSE(ev.framing_error);
}

TEST(Connection, CompleteFramesBeforeEofStillDelivered) {
  int fds[2];
  ASSERT_EQ(make_socketpair(fds), 0);
  Connection conn(fds[0], "test-peer", ConnConfig{}, 0);
  const Bytes full = make_frame(MsgType::kGetReceipt, 4, gateway::GetReceiptRequest{9}.serialize());
  Bytes stream = full;
  append(stream, {full.data(), 5});  // half a header, then EOF
  write_all(fds[1], stream);
  ::close(fds[1]);
  const auto ev = conn.on_readable(0);
  EXPECT_TRUE(ev.eof);
  ASSERT_EQ(ev.frames.size(), 1u);
  EXPECT_EQ(ev.frames[0], full);
}

TEST(Connection, WriteBufferHardCapRefusesQueueing) {
  int fds[2];
  ASSERT_EQ(make_socketpair(fds), 0);
  ConnConfig cfg;
  cfg.write_buffer_hard = 4096;
  Connection conn(fds[0], "test-peer", cfg, 0);
  const Bytes resp = make_frame(MsgType::kError, 1, Bytes(100, 0x00));
  bool refused = false;
  for (int i = 0; i < 100; ++i) {
    if (!conn.queue_response(resp)) {
      refused = true;
      break;
    }
    EXPECT_LE(conn.write_buffered(), cfg.write_buffer_hard);
  }
  EXPECT_TRUE(refused);
  EXPECT_LE(conn.write_buffered(), cfg.write_buffer_hard);
  ::close(fds[1]);
}

TEST(Connection, SoftWatermarkPausesReadsUntilDrained) {
  int fds[2];
  ASSERT_EQ(make_socketpair(fds), 0);
  ConnConfig cfg;
  cfg.write_buffer_soft = 64;
  Connection conn(fds[0], "test-peer", cfg, 0);
  EXPECT_TRUE(conn.wants_read(0));
  ASSERT_TRUE(conn.queue_response(make_frame(MsgType::kError, 1, Bytes(200, 0x00))));
  EXPECT_FALSE(conn.wants_read(0));  // above the watermark
  ASSERT_EQ(conn.on_writable(), Connection::WriteResult::kDrained);
  EXPECT_TRUE(conn.wants_read(0));
  ::close(fds[1]);
}

TEST(Connection, TimeoutArithmetic) {
  int fds[2];
  ASSERT_EQ(make_socketpair(fds), 0);
  ConnConfig cfg;
  cfg.idle_timeout_ms = 1000;
  cfg.frame_timeout_ms = 100;
  Connection conn(fds[0], "test-peer", cfg, /*now_ms=*/0);
  EXPECT_EQ(conn.check_timeout(999), Connection::TimeoutKind::kNone);
  EXPECT_EQ(conn.check_timeout(1000), Connection::TimeoutKind::kIdle);

  // One byte of a frame arrives at t=500: the stall clock starts there.
  const Bytes frame = make_frame(MsgType::kQueryEscrow, 1, Bytes{});
  write_all(fds[1], {frame.data(), 1});
  (void)conn.on_readable(500);
  EXPECT_EQ(conn.check_timeout(599), Connection::TimeoutKind::kNone);
  EXPECT_EQ(conn.check_timeout(600), Connection::TimeoutKind::kFrameStall);

  // Completing the frame clears the stall clock; idle now binds from the
  // last byte received.
  write_all(fds[1], {frame.data() + 1, frame.size() - 1});
  (void)conn.on_readable(550);
  EXPECT_EQ(conn.check_timeout(700), Connection::TimeoutKind::kNone);
  EXPECT_EQ(conn.check_timeout(1550), Connection::TimeoutKind::kIdle);
  ::close(fds[1]);
}

// ------------------------------------------------------------ BanList

TEST(BanList, ScoreAccumulatesBansAndExpires) {
  BanConfig cfg;
  cfg.threshold = 100;
  cfg.duration_ms = 1000;
  BanList bans(cfg);
  EXPECT_FALSE(bans.misbehave("10.0.0.7", 50, 0));
  EXPECT_FALSE(bans.is_banned("10.0.0.7", 1));
  EXPECT_TRUE(bans.misbehave("10.0.0.7", 50, 2));
  EXPECT_TRUE(bans.is_banned("10.0.0.7", 3));
  EXPECT_EQ(bans.bans_issued(), 1u);
  // Another address is unaffected.
  EXPECT_FALSE(bans.is_banned("10.0.0.8", 3));
  // Ban expiry clears the entry, score included.
  EXPECT_FALSE(bans.is_banned("10.0.0.7", 1002));
  EXPECT_EQ(bans.score("10.0.0.7"), 0u);
}

TEST(BanList, RotatingAddressesStayBoundedAndScoresDecay) {
  BanConfig cfg;
  cfg.threshold = 100;
  cfg.duration_ms = 1000;
  cfg.max_entries = 64;
  BanList bans(cfg);
  // A botnet rotating source addresses, one sub-threshold offence each:
  // the ledger must stay capped, not grow per distinct address.
  for (int i = 0; i < 10'000; ++i) {
    const std::string addr =
        "10.1." + std::to_string(i / 256) + "." + std::to_string(i % 256);
    EXPECT_FALSE(bans.misbehave(addr, 10, 5));
  }
  EXPECT_LE(bans.tracked(), cfg.max_entries);

  // Cap pressure evicts stale sub-threshold entries, never an active ban.
  bans.ban("10.9.9.9", 10);
  for (int i = 0; i < 1000; ++i) {
    (void)bans.misbehave("10.2.0." + std::to_string(i % 256), 10, 11);
  }
  EXPECT_LE(bans.tracked(), cfg.max_entries);
  EXPECT_TRUE(bans.is_banned("10.9.9.9", 12));

  // A sub-threshold score quiet for a full ban window is forgotten (the
  // amortized sweep rides on any later call).
  bans.clear();
  EXPECT_FALSE(bans.misbehave("10.3.0.1", 50, 100));
  EXPECT_EQ(bans.score("10.3.0.1"), 50u);
  EXPECT_FALSE(bans.is_banned("10.8.8.8", 100 + 2 * cfg.duration_ms));
  EXPECT_EQ(bans.score("10.3.0.1"), 0u);
  EXPECT_EQ(bans.tracked(), 0u);
}

// ------------------------------------------- server + gateway harness

/// Live-deployment fixture (same world as GatewayUnit in gateway_test):
/// one funded escrow, several distinct fast-pay packages, and *two*
/// gateways over the same merchant — one behind the TCP server, one
/// served directly — so every scripted byte stream can be checked for
/// response parity.
struct NetGatewayUnit : ::testing::Test {
  NetGatewayUnit() {
    core::DeploymentConfig cfg;
    cfg.seed = 1313;
    cfg.funded_coins = 8;
    cfg.collateral = cfg.compensation * 16;
    dep = std::make_unique<core::Deployment>(cfg);
    now = static_cast<std::uint64_t>(dep->simulator().now());
    coins = sim::find_spendable(dep->customer_node().chain(),
                                dep->customer().btc_identity().script);
    for (std::size_t i = 0; i < 4 && i < coins.size(); ++i) {
      core::Invoice inv = dep->merchant().make_invoice(2 * btc::kCoin, dep->config().compensation,
                                                       now, 10ULL * 60 * 1000);
      pkgs.push_back(dep->customer().create_fastpay(inv, coins[i].first,
                                                    coins[i].second.out.value, now,
                                                    dep->config().binding_ttl_ms));
      invoices.push_back(std::move(inv));
    }
  }

  std::unique_ptr<gateway::Gateway> make_gateway(gateway::GatewayConfig cfg = {}) {
    auto gw = std::make_unique<gateway::Gateway>(dep->merchant(), pool, cfg);
    for (const auto& inv : invoices) gw->register_invoice(inv);
    gw->track_escrow(dep->customer().escrow_id());
    return gw;
  }

  [[nodiscard]] Bytes submit_frame(std::uint64_t request_id, std::size_t i) const {
    gateway::SubmitFastPayRequest req;
    req.invoice_id = invoices[i].invoice_id;
    req.package = pkgs[i];
    return make_frame(MsgType::kSubmitFastPay, request_id, req.serialize());
  }

  /// Connect a blocking loopback client to `port`. TCP_NODELAY, or the
  /// per-byte fragmentation tests deadlock on Nagle + delayed ACK once
  /// the first response flows back.
  static int connect_client(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  /// Read whatever is available right now (non-blocking peek).
  static Bytes drain_client(int fd) {
    Bytes out;
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n <= 0) break;
      out.insert(out.end(), buf, buf + n);
    }
    return out;
  }

  common::ThreadPool pool{0};
  std::unique_ptr<core::Deployment> dep;
  std::uint64_t now = 0;
  std::vector<std::pair<btc::OutPoint, btc::Coin>> coins;
  std::vector<core::Invoice> invoices;
  std::vector<core::FastPayPackage> pkgs;
};

/// Scripted-clock server harness: poll_once() on the test thread, time
/// advanced by assignment.
struct ScriptedServer {
  ScriptedServer(gateway::Gateway& gw, std::uint64_t sim_now, ServerConfig cfg = {})
      : handler(gw) {
    handler.pin_time(sim_now);
    server = std::make_unique<TcpServer>(handler, cfg, [this] { return fake_now_ms; });
    started = server->start();
  }

  /// One poll + client-side drain through the same FrameAssembler.
  void pump_once(int fd, FrameAssembler& rx, std::vector<Bytes>& got) {
    (void)server->poll_once(0);
    const Bytes bytes = NetGatewayUnit::drain_client(fd);
    if (!bytes.empty()) {
      (void)rx.feed(bytes);
      while (auto f = rx.next_frame()) got.push_back(std::move(*f));
    }
  }

  /// Poll until `fd` has delivered `want` complete frames (or attempts
  /// run out).
  void pump_until(int fd, std::size_t want, FrameAssembler& rx, std::vector<Bytes>& got,
                  int attempts = 2000) {
    while (got.size() < want && attempts-- > 0) pump_once(fd, rx, got);
  }

  GatewayHandler handler;
  std::unique_ptr<TcpServer> server;
  std::uint64_t fake_now_ms = 1;
  bool started = false;
};

TEST_F(NetGatewayUnit, LoopbackByteParityUnderEveryFragmentation) {
  // The scripted sequence direct serve() will answer: a real submit, a
  // query, a receipt lookup, framed garbage (undecodable payload), an
  // unknown-but-framed type, and a second real submit.
  std::vector<Bytes> script;
  script.push_back(submit_frame(101, 0));
  script.push_back(make_frame(MsgType::kQueryEscrow, 102,
                              gateway::QueryEscrowRequest{dep->customer().escrow_id()}.serialize()));
  script.push_back(make_frame(MsgType::kGetReceipt, 103, gateway::GetReceiptRequest{101}.serialize()));
  script.push_back(make_frame(MsgType::kSubmitFastPay, 104, Bytes{0x01, 0x02, 0x03}));
  {
    gateway::Frame f;
    f.type = static_cast<MsgType>(0x7f);
    f.request_id = 105;
    f.payload = {0xaa};
    script.push_back(f.serialize());
  }
  script.push_back(submit_frame(106, 1));
  const Bytes stream = concat(script);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                                  std::size_t{64}, stream.size()}) {
    auto gw_net = make_gateway();
    auto gw_ref = make_gateway();
    std::vector<Bytes> expected;
    for (const auto& frame : script) expected.push_back(gw_ref->serve(frame, now));

    ScriptedServer srv(*gw_net, now);
    ASSERT_TRUE(srv.started);
    const int fd = connect_client(srv.server->port());
    ASSERT_GE(fd, 0);

    FrameAssembler rx;
    std::vector<Bytes> got;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      write_all(fd, {stream.data() + off, n});
      srv.pump_once(fd, rx, got);  // server sees the fragment before the next
    }
    srv.pump_until(fd, expected.size(), rx, got);
    ASSERT_EQ(got.size(), expected.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "chunk " << chunk << ", response " << i;
    }
    const auto st = srv.server->stats();
    EXPECT_EQ(st.frames_in, script.size());
    EXPECT_EQ(st.framing_errors, 0u);
    ::close(fd);
  }
}

TEST_F(NetGatewayUnit, PipelinedFramesInOneWriteMatchDirectServe) {
  auto gw_net = make_gateway();
  auto gw_ref = make_gateway();
  std::vector<Bytes> script;
  for (std::size_t i = 0; i < pkgs.size(); ++i) script.push_back(submit_frame(200 + i, i));
  std::vector<Bytes> expected;
  for (const auto& frame : script) expected.push_back(gw_ref->serve(frame, now));

  ScriptedServer srv(*gw_net, now);
  ASSERT_TRUE(srv.started);
  const int fd = connect_client(srv.server->port());
  ASSERT_GE(fd, 0);
  write_all(fd, concat(script));  // all frames coalesce into one batch

  FrameAssembler rx;
  std::vector<Bytes> got;
  srv.pump_until(fd, expected.size(), rx, got);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(got[i], expected[i]);
  // All accepts really landed in the gateway behind the socket.
  EXPECT_EQ(gw_net->stats().accepts(), gw_ref->stats().accepts());
  ::close(fd);
}

TEST_F(NetGatewayUnit, ShedResponsesPauseReadsAndMatchDirectServe) {
  gateway::GatewayConfig gcfg;
  gcfg.max_inflight = 0;  // shed everything
  auto gw_net = make_gateway(gcfg);
  auto gw_ref = make_gateway(gcfg);
  const Bytes frame = submit_frame(42, 0);
  const Bytes expected = gw_ref->serve(frame, now);

  ServerConfig scfg;
  scfg.shed_backoff_ms = 500;
  ScriptedServer srv(*gw_net, now, scfg);
  ASSERT_TRUE(srv.started);
  const int fd = connect_client(srv.server->port());
  ASSERT_GE(fd, 0);

  write_all(fd, frame);
  FrameAssembler rx;
  std::vector<Bytes> got;
  srv.pump_until(fd, 1, rx, got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], expected);

  const auto st = srv.server->stats();
  EXPECT_EQ(st.sheds_seen, 1u);
  EXPECT_EQ(st.read_pauses, 1u);

  // While the backoff window is open the server must not read the next
  // frame; once the scripted clock passes it, service resumes.
  write_all(fd, frame);
  for (int i = 0; i < 20; ++i) (void)srv.server->poll_once(0);
  EXPECT_EQ(srv.server->stats().frames_in, 1u) << "read during backoff window";
  srv.fake_now_ms += 1000;
  srv.pump_until(fd, 2, rx, got);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], expected);
  ::close(fd);
}

// ------------------------------------------------- adversarial clients

TEST_F(NetGatewayUnit, SlowLorisStallsAreCutScoredAndEventuallyBanned) {
  auto gw = make_gateway();
  ServerConfig scfg;
  scfg.conn.frame_timeout_ms = 1000;
  scfg.conn.idle_timeout_ms = 60'000;
  scfg.score_stall = 40;
  scfg.ban.threshold = 100;
  scfg.ban.duration_ms = 10'000;
  ScriptedServer srv(*gw, now, scfg);
  ASSERT_TRUE(srv.started);
  const Bytes frame = submit_frame(1, 0);

  int cut_connections = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const int fd = connect_client(srv.server->port());
    ASSERT_GE(fd, 0);
    (void)srv.server->poll_once(0);  // accept
    ASSERT_EQ(srv.server->connection_count(), 1u) << "attempt " << attempt;
    // Drip one header byte per 200 fake ms — always under the idle
    // timeout, never completing a frame.
    bool cut = false;
    for (std::size_t i = 0; i < 10 && !cut; ++i) {
      write_all(fd, {frame.data() + i, 1});
      srv.fake_now_ms += 200;
      (void)srv.server->poll_once(0);
      cut = srv.server->connection_count() == 0;
    }
    EXPECT_TRUE(cut) << "slow-loris survived the frame deadline";
    cut_connections += cut ? 1 : 0;
    ::close(fd);
  }
  const auto st = srv.server->stats();
  EXPECT_EQ(st.timeouts_stall, 3u);
  EXPECT_EQ(cut_connections, 3);
  // 40 + 40 -> 80, third stall crosses 100: banned.
  EXPECT_GE(st.bans_issued, 1u);
  EXPECT_TRUE(srv.server->bans().is_banned("127.0.0.1", srv.fake_now_ms));

  // Banned: the next connection is refused at accept.
  const int fd = connect_client(srv.server->port());
  ASSERT_GE(fd, 0);
  (void)srv.server->poll_once(0);
  EXPECT_EQ(srv.server->connection_count(), 0u);
  EXPECT_GE(srv.server->stats().conns_refused_banned, 1u);
  ::close(fd);
}

TEST_F(NetGatewayUnit, WriteStallClientIsDisconnectedWithBoundedBuffer) {
  auto gw = make_gateway();
  ServerConfig scfg;
  scfg.conn.so_sndbuf = 4096;          // tiny kernel buffer: stalls are real
  scfg.conn.write_buffer_hard = 16384; // bounded userspace buffer
  scfg.conn.write_buffer_soft = 4096;
  ScriptedServer srv(*gw, now, scfg);
  ASSERT_TRUE(srv.started);
  const int fd = connect_client(srv.server->port());
  ASSERT_GE(fd, 0);

  // Thousands of pipelined receipt lookups, responses never drained:
  // ~35 B per response adds up far beyond sndbuf + hard cap.
  Bytes burst;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    append(burst, make_frame(MsgType::kGetReceipt, i, gateway::GetReceiptRequest{i}.serialize()));
  }
  write_all(fd, burst);
  for (int i = 0; i < 200 && srv.server->stats().write_overflows == 0; ++i) {
    (void)srv.server->poll_once(0);
  }
  const auto st = srv.server->stats();
  EXPECT_EQ(st.write_overflows, 1u) << "write-stall client not disconnected";
  EXPECT_EQ(srv.server->connection_count(), 0u);
  // Bounded memory: the server refused to buffer the full response stream —
  // it disconnected long before all 4000 responses were queued.
  EXPECT_LT(st.responses_out, 4000u);
  ::close(fd);
}

TEST_F(NetGatewayUnit, WriteOverflowMidBatchDoesNotShiftOtherConnectionsResponses) {
  auto gw_net = make_gateway();
  auto gw_ref = make_gateway();
  ServerConfig scfg;
  scfg.conn.so_sndbuf = 4096;
  scfg.conn.write_buffer_hard = 8192;
  scfg.conn.write_buffer_soft = 4096;
  ScriptedServer srv(*gw_net, now, scfg);
  ASSERT_TRUE(srv.started);

  const int fd_stall = connect_client(srv.server->port());
  ASSERT_GE(fd_stall, 0);
  (void)srv.server->poll_once(0);  // accept first: lower tag, dispatched first
  const int fd_victim = connect_client(srv.server->port());
  ASSERT_GE(fd_victim, 0);
  (void)srv.server->poll_once(0);
  ASSERT_EQ(srv.server->connection_count(), 2u);

  // The stalling connection floods receipt lookups and never drains its
  // responses; the victim sends one query. Both land in the same poll
  // batch, so the staller's mid-batch overflow close must not shift the
  // victim onto the dead connection's leftover responses.
  Bytes burst;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    append(burst, make_frame(MsgType::kGetReceipt, i, gateway::GetReceiptRequest{i}.serialize()));
  }
  write_all(fd_stall, burst);
  const Bytes victim_frame =
      make_frame(MsgType::kQueryEscrow, 990001,
                 gateway::QueryEscrowRequest{dep->customer().escrow_id()}.serialize());
  const Bytes expected = gw_ref->serve(victim_frame, now);
  write_all(fd_victim, victim_frame);

  FrameAssembler rx;
  std::vector<Bytes> got;
  for (int i = 0; i < 200 && (srv.server->stats().write_overflows == 0 || got.empty()); ++i) {
    srv.pump_once(fd_victim, rx, got);
  }
  EXPECT_EQ(srv.server->stats().write_overflows, 1u) << "staller was not cut";
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], expected);
  const auto resp = Frame::deserialize(got[0]);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->request_id, 990001u);
  ::close(fd_stall);
  ::close(fd_victim);
}

TEST_F(NetGatewayUnit, GarbageFramesScoreThenBanThenExpire) {
  auto gw = make_gateway();
  ServerConfig scfg;
  scfg.score_framing = 50;
  scfg.ban.threshold = 100;
  scfg.ban.duration_ms = 5'000;
  ScriptedServer srv(*gw, now, scfg);
  ASSERT_TRUE(srv.started);

  const auto attack_once = [&](bool oversized) {
    const int fd = connect_client(srv.server->port());
    EXPECT_GE(fd, 0);
    if (oversized) {
      Writer w;
      w.u32le(gateway::kWireMagic);
      w.u8(static_cast<std::uint8_t>(MsgType::kSubmitFastPay));
      w.u64le(77);
      w.varint(gateway::kMaxFramePayload + 1);
      write_all(fd, std::move(w).take());
    } else {
      write_all(fd, Bytes(32, 0x00));  // garbage: wrong magic
    }
    // The server answers with one typed kError frame, then closes.
    FrameAssembler rx;
    std::vector<Bytes> got;
    srv.pump_until(fd, 1, rx, got, 200);
    EXPECT_EQ(got.size(), 1u);
    if (!got.empty()) {
      const auto resp = Frame::deserialize(got[0]);
      ASSERT_TRUE(resp.has_value());
      EXPECT_EQ(resp->type, MsgType::kError);
      if (oversized) {
        EXPECT_EQ(resp->request_id, 77u);  // echoed from the header
      }
    }
    for (int i = 0; i < 20 && srv.server->connection_count() > 0; ++i) {
      (void)srv.server->poll_once(0);
    }
    EXPECT_EQ(srv.server->connection_count(), 0u);
    ::close(fd);
  };

  attack_once(/*oversized=*/false);  // score 50
  EXPECT_EQ(srv.server->bans().score("127.0.0.1"), 50u);
  attack_once(/*oversized=*/true);  // score 100 -> ban
  EXPECT_EQ(srv.server->stats().bans_issued, 1u);
  EXPECT_EQ(srv.server->stats().framing_errors, 2u);

  // Reconnect while banned: refused without a byte of service.
  const int fd = connect_client(srv.server->port());
  ASSERT_GE(fd, 0);
  (void)srv.server->poll_once(0);
  EXPECT_EQ(srv.server->connection_count(), 0u);
  EXPECT_EQ(srv.server->stats().conns_refused_banned, 1u);
  ::close(fd);

  // After the ban expires the peer starts clean and is served again.
  srv.fake_now_ms += 6'000;
  auto gw_ref = make_gateway();
  const Bytes query = make_frame(
      MsgType::kQueryEscrow, 9, gateway::QueryEscrowRequest{dep->customer().escrow_id()}.serialize());
  const Bytes expected = gw_ref->serve(query, now);
  const int fd2 = connect_client(srv.server->port());
  ASSERT_GE(fd2, 0);
  write_all(fd2, query);
  FrameAssembler rx;
  std::vector<Bytes> got;
  srv.pump_until(fd2, 1, rx, got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], expected);
  ::close(fd2);
}

TEST_F(NetGatewayUnit, IdleConnectionsAreReaped) {
  auto gw = make_gateway();
  ServerConfig scfg;
  scfg.conn.idle_timeout_ms = 1000;
  ScriptedServer srv(*gw, now, scfg);
  ASSERT_TRUE(srv.started);
  const int fd = connect_client(srv.server->port());
  ASSERT_GE(fd, 0);
  (void)srv.server->poll_once(0);
  EXPECT_EQ(srv.server->connection_count(), 1u);
  srv.fake_now_ms += 2000;
  (void)srv.server->poll_once(0);
  EXPECT_EQ(srv.server->connection_count(), 0u);
  EXPECT_EQ(srv.server->stats().timeouts_idle, 1u);
  // Idle is rude, not hostile: no misbehavior score.
  EXPECT_EQ(srv.server->bans().score("127.0.0.1"), 0u);
  ::close(fd);
}

TEST_F(NetGatewayUnit, MaxConnectionLimitRefusesTheOverflowPeer) {
  auto gw = make_gateway();
  ServerConfig scfg;
  scfg.max_connections = 2;
  ScriptedServer srv(*gw, now, scfg);
  ASSERT_TRUE(srv.started);
  const int a = connect_client(srv.server->port());
  const int b = connect_client(srv.server->port());
  const int c = connect_client(srv.server->port());
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_GE(c, 0);
  for (int i = 0; i < 10; ++i) (void)srv.server->poll_once(0);
  EXPECT_EQ(srv.server->connection_count(), 2u);
  EXPECT_EQ(srv.server->stats().conns_refused_full, 1u);
  ::close(a);
  ::close(b);
  ::close(c);
}

TEST_F(NetGatewayUnit, NetCountersFoldIntoGatewayStatsJson) {
  auto gw = make_gateway();
  ScriptedServer srv(*gw, now);
  ASSERT_TRUE(srv.started);
  const int fd = connect_client(srv.server->port());
  ASSERT_GE(fd, 0);
  write_all(fd, submit_frame(1, 0));
  FrameAssembler rx;
  std::vector<Bytes> got;
  srv.pump_until(fd, 1, rx, got);
  ASSERT_EQ(got.size(), 1u);

  srv.server->fold_into(*gw);
  const auto st = gw->stats();
  EXPECT_EQ(st.net_conns_accepted(), 1u);
  EXPECT_EQ(st.net_frames_in(), 1u);
  const std::string json = st.to_json();
  EXPECT_NE(json.find("\"net\""), std::string::npos);
  EXPECT_NE(json.find("\"conns_accepted\": 1"), std::string::npos);
  ::close(fd);
}

}  // namespace
}  // namespace btcfast::net
