// Contract-level tests for PayJudger: the escrow state machine, binding
// verification, PoW evidence validation, and the judgment rule. Drives
// the contract directly on a PscChain with evidence mined on a real (sim)
// Bitcoin chain.
#include <gtest/gtest.h>

#include "btc/pow.h"
#include "btcfast/customer.h"
#include "common/thread_pool.h"
#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcsim/scenario.h"

namespace btcfast::core {
namespace {

using sim::Party;

constexpr std::uint64_t kHour = 60ULL * 60 * 1000;

struct JudgerFixture : ::testing::Test {
  JudgerFixture()
      : params(btc::ChainParams::regtest()),
        btc_chain(params),
        customer_party(Party::make(11)),
        merchant_party(Party::make(22)) {
    // Fund the customer and mature the coinbase.
    for (const auto& b :
         sim::build_funding_chain(params, {customer_party.script}, /*blocks_each=*/2)) {
      EXPECT_EQ(btc_chain.submit_block(b), btc::SubmitResult::kActiveTip);
    }

    cfg.pow_limit = params.pow_limit;
    cfg.initial_checkpoint = btc_chain.tip_hash();
    cfg.required_depth = 3;
    cfg.evidence_window_ms = kHour;
    cfg.min_collateral = 1'000;
    cfg.dispute_bond = 500;
    judger = psc.deploy("payjudger", std::make_unique<PayJudger>(cfg));

    psc.mint(customer_psc, 1'000'000'000);
    psc.mint(merchant_psc, 1'000'000'000);
    psc.mint(other_psc, 1'000'000'000);

    wallet = std::make_unique<CustomerWallet>(customer_party, customer_psc, /*escrow_id=*/1);
  }

  /// Mines `txs` into a block on the btc chain.
  void mine_block_with(std::vector<btc::Transaction> txs) {
    btc::Block b;
    b.header.prev_hash = btc_chain.tip_hash();
    b.header.time = btc_chain.tip_header().time + 600;
    b.header.bits = params.genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = btc_chain.height() + 1;
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, merchant_party.script});
    b.txs.push_back(cb);
    for (auto& tx : txs) b.txs.push_back(std::move(tx));
    ASSERT_TRUE(btc::mine_block(b, params));
    ASSERT_EQ(btc_chain.submit_block(b), btc::SubmitResult::kActiveTip);
  }

  psc::Receipt deposit(psc::Value collateral = 100'000, std::uint64_t when = 0,
                       std::uint64_t unlock_delay = 24 * kHour) {
    return psc.execute_now(wallet->make_deposit_tx(judger, collateral, unlock_delay), when);
  }

  /// A signed binding for a payment of the customer's first coin.
  SignedBinding make_binding(psc::Value compensation, std::uint64_t expiry,
                             btc::Transaction* out_tx = nullptr) {
    const auto coins = sim::find_spendable(btc_chain, customer_party.script);
    EXPECT_FALSE(coins.empty());
    const auto [op, coin] = coins.front();
    Invoice inv;
    inv.amount_sat = coin.out.value / 2;
    inv.compensation = compensation;
    inv.pay_to = merchant_party.script;
    inv.merchant_psc = merchant_psc;
    inv.expires_at_ms = expiry;
    FastPayPackage pkg = wallet->create_fastpay(inv, op, coin.out.value, 0, expiry);
    if (out_tx != nullptr) *out_tx = pkg.payment_tx;
    return pkg.binding;
  }

  psc::Receipt open_dispute(const SignedBinding& binding, std::uint64_t when,
                            psc::Address from = {}, psc::Value bond = 500) {
    psc::PscTx tx;
    tx.from = from.is_zero() ? merchant_psc : from;
    tx.to = judger;
    tx.value = bond;
    tx.method = "openDispute";
    tx.args = encode_open_dispute_args(1, binding);
    return psc.execute_now(tx, when);
  }

  psc::Receipt submit_merchant_evidence(const std::vector<btc::BlockHeader>& headers,
                                        std::uint64_t when) {
    psc::PscTx tx;
    tx.from = merchant_psc;
    tx.to = judger;
    tx.method = "submitMerchantEvidence";
    tx.args = encode_merchant_evidence_args(1, headers);
    tx.gas_limit = 8'000'000;
    return psc.execute_now(tx, when);
  }

  psc::Receipt submit_customer_evidence(const InclusionEvidence& ev, std::uint64_t when) {
    psc::PscTx tx;
    tx.from = customer_psc;
    tx.to = judger;
    tx.method = "submitCustomerEvidence";
    tx.args = encode_customer_evidence_args(1, ev.headers, ev.proof, ev.header_index);
    tx.gas_limit = 8'000'000;
    return psc.execute_now(tx, when);
  }

  psc::Receipt judge_now(std::uint64_t when, psc::Address from = {}) {
    psc::PscTx tx;
    tx.from = from.is_zero() ? merchant_psc : from;
    tx.to = judger;
    tx.method = "judge";
    tx.args = encode_escrow_id_arg(1);
    return psc.execute_now(tx, when);
  }

  std::optional<EscrowView> view() {
    psc::PscTx q;
    q.from = customer_psc;
    q.to = judger;
    q.method = "getEscrow";
    q.args = encode_escrow_id_arg(1);
    const auto r = psc.view_call(q);
    if (!r.success) return std::nullopt;
    return PayJudger::decode_escrow_view(r.return_data);
  }

  btc::ChainParams params;
  btc::Chain btc_chain;
  Party customer_party;
  Party merchant_party;
  psc::PscChain psc;
  PayJudgerConfig cfg;
  psc::Address judger;
  psc::Address customer_psc = psc::Address::from_label("customer");
  psc::Address merchant_psc = psc::Address::from_label("merchant");
  psc::Address other_psc = psc::Address::from_label("other");
  std::unique_ptr<CustomerWallet> wallet;
};

TEST_F(JudgerFixture, DepositActivatesEscrow) {
  const auto r = deposit();
  ASSERT_TRUE(r.success) << r.revert_reason;
  const auto v = view();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->state, EscrowState::kActive);
  EXPECT_EQ(v->collateral, 100'000u);
  EXPECT_EQ(v->customer, customer_psc);
  const auto expected_key = customer_party.pub.serialize();
  EXPECT_TRUE(equal_bytes({v->customer_btc_key.data(), 33}, {expected_key.data(), 33}));
}

TEST_F(JudgerFixture, DepositRejectsDuplicateAndDust) {
  ASSERT_TRUE(deposit().success);
  EXPECT_EQ(deposit().revert_reason, "escrow-exists");

  CustomerWallet other(Party::make(33), other_psc, /*escrow_id=*/2);
  auto tx = other.make_deposit_tx(judger, /*collateral=*/10, 0);  // below min
  EXPECT_FALSE(psc.execute_now(tx, 0).success);
}

TEST_F(JudgerFixture, DepositRejectsInvalidPubkey) {
  ByteArray<33> bogus{};
  bogus[0] = 0x07;
  psc::PscTx tx;
  tx.from = customer_psc;
  tx.to = judger;
  tx.value = 100'000;
  tx.method = "deposit";
  tx.args = encode_deposit_args(5, 0, bogus);
  const auto r = psc.execute_now(tx, 0);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.revert_reason, "bad-pubkey");
}

TEST_F(JudgerFixture, WithdrawAfterUnlock) {
  ASSERT_TRUE(deposit(100'000, 0, /*unlock_delay=*/1000).success);
  // Too early.
  EXPECT_FALSE(psc.execute_now(wallet->make_withdraw_tx(judger), 500).success);
  // Wrong caller.
  psc::PscTx stolen = wallet->make_withdraw_tx(judger);
  stolen.from = merchant_psc;
  EXPECT_FALSE(psc.execute_now(stolen, 5000).success);
  // Rightful withdraw.
  const psc::Value before = psc.state().balance(customer_psc);
  const auto r = psc.execute_now(wallet->make_withdraw_tx(judger), 5000);
  ASSERT_TRUE(r.success) << r.revert_reason;
  EXPECT_EQ(psc.state().balance(customer_psc), before + 100'000 - r.gas_used);
  EXPECT_EQ(view()->state, EscrowState::kEmpty);
}

TEST_F(JudgerFixture, TopUpIncreasesCollateral) {
  ASSERT_TRUE(deposit().success);
  const auto r = psc.execute_now(wallet->make_topup_tx(judger, 50'000), 10);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(view()->collateral, 150'000u);
}

TEST_F(JudgerFixture, OpenDisputeHappyPath) {
  ASSERT_TRUE(deposit().success);
  const auto binding = make_binding(40'000, /*expiry=*/10 * kHour);
  const auto r = open_dispute(binding, /*when=*/kHour);
  ASSERT_TRUE(r.success) << r.revert_reason;
  const auto v = view();
  EXPECT_EQ(v->state, EscrowState::kDisputed);
  EXPECT_EQ(v->dispute_merchant, merchant_psc);
  EXPECT_EQ(v->dispute_compensation, 40'000u);
  EXPECT_EQ(v->disputed_txid, binding.binding.btc_txid);
  EXPECT_EQ(v->dispute_anchor, cfg.initial_checkpoint);
  EXPECT_EQ(v->dispute_deadline_ms, kHour + cfg.evidence_window_ms);
}

TEST_F(JudgerFixture, OpenDisputeValidation) {
  ASSERT_TRUE(deposit().success);

  // Wrong caller (not the binding's merchant).
  auto b1 = make_binding(40'000, 10 * kHour);
  EXPECT_EQ(open_dispute(b1, kHour, other_psc).revert_reason, "not-binding-merchant");

  // Expired binding.
  auto b2 = make_binding(40'000, /*expiry=*/10);
  EXPECT_EQ(open_dispute(b2, kHour).revert_reason, "binding-expired");

  // Compensation exceeding collateral.
  auto b3 = make_binding(1'000'000, 10 * kHour);
  EXPECT_EQ(open_dispute(b3, kHour).revert_reason, "compensation-exceeds-collateral");

  // Tampered signature.
  auto b4 = make_binding(40'000, 10 * kHour);
  b4.customer_sig[3] ^= 1;
  EXPECT_EQ(open_dispute(b4, kHour).revert_reason, "bad-binding-signature");

  // Insufficient bond.
  auto b5 = make_binding(40'000, 10 * kHour);
  EXPECT_EQ(open_dispute(b5, kHour, {}, /*bond=*/1).revert_reason, "bond-too-small");
}

TEST_F(JudgerFixture, MerchantEvidenceAcceptedAndWeighed) {
  ASSERT_TRUE(deposit().success);
  const auto binding = make_binding(40'000, 10 * kHour);
  ASSERT_TRUE(open_dispute(binding, kHour).success);

  // Mine 4 blocks after the checkpoint (payment NOT included).
  for (int i = 0; i < 4; ++i) mine_block_with({});
  const auto headers = headers_since(btc_chain, cfg.initial_checkpoint);
  ASSERT_TRUE(headers.has_value());
  ASSERT_EQ(headers->size(), 4u);

  const auto r = submit_merchant_evidence(*headers, kHour + 1000);
  ASSERT_TRUE(r.success) << r.revert_reason;
  const auto v = view();
  EXPECT_EQ(v->merchant_work, btc::header_work(params.genesis_bits) * crypto::U256(4));
}

TEST_F(JudgerFixture, EvidenceRejectsForgery) {
  ASSERT_TRUE(deposit().success);
  const auto binding = make_binding(40'000, 10 * kHour);
  ASSERT_TRUE(open_dispute(binding, kHour).success);

  for (int i = 0; i < 3; ++i) mine_block_with({});
  auto headers = *headers_since(btc_chain, cfg.initial_checkpoint);

  // Broken link.
  auto broken = headers;
  broken[1].prev_hash.bytes[0] ^= 1;
  EXPECT_EQ(submit_merchant_evidence(broken, kHour + 1000).revert_reason,
            "evidence-broken-link");

  // Fake PoW (re-linked but not mined).
  auto fake = headers;
  fake[1].nonce ^= 0x77;
  fake[2].prev_hash = fake[1].hash();
  EXPECT_EQ(submit_merchant_evidence(fake, kHour + 1000).revert_reason, "evidence-bad-pow");

  // After the window closes.
  EXPECT_EQ(submit_merchant_evidence(headers, kHour + cfg.evidence_window_ms + 1).revert_reason,
            "evidence-window-closed");
}

TEST_F(JudgerFixture, CustomerEvidenceWithInclusionProof) {
  ASSERT_TRUE(deposit().success);
  btc::Transaction payment;
  const auto binding = make_binding(40'000, 10 * kHour, &payment);
  ASSERT_TRUE(open_dispute(binding, kHour).success);

  // Confirm the payment 1 block after the anchor, then bury it k-1 deeper.
  mine_block_with({payment});
  for (std::uint32_t i = 1; i < cfg.required_depth; ++i) mine_block_with({});

  const auto ev = build_inclusion_evidence(btc_chain, cfg.initial_checkpoint,
                                           payment.txid(), cfg.required_depth);
  ASSERT_TRUE(ev.has_value());
  const auto r = submit_customer_evidence(*ev, kHour + 1000);
  ASSERT_TRUE(r.success) << r.revert_reason;
  const auto v = view();
  EXPECT_TRUE(v->customer_proved);
  EXPECT_EQ(v->customer_work, btc::header_work(params.genesis_bits) *
                                  crypto::U256(cfg.required_depth));
}

TEST_F(JudgerFixture, CustomerEvidenceRejectsShallowProof) {
  ASSERT_TRUE(deposit().success);
  btc::Transaction payment;
  const auto binding = make_binding(40'000, 10 * kHour, &payment);
  ASSERT_TRUE(open_dispute(binding, kHour).success);

  mine_block_with({payment});  // only depth 1 < required 3
  const auto headers = *headers_since(btc_chain, cfg.initial_checkpoint);
  const auto block = btc_chain.block_at_height(btc_chain.height());
  const auto proof = btc::make_inclusion_proof(*block, payment.txid());
  ASSERT_TRUE(proof.has_value());
  InclusionEvidence ev{headers, *proof, 0};
  const auto r = submit_customer_evidence(ev, kHour + 1000);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.revert_reason.find("proof-too-shallow"), std::string::npos);
}

TEST_F(JudgerFixture, CustomerEvidenceRejectsWrongTx) {
  ASSERT_TRUE(deposit().success);
  btc::Transaction payment;
  const auto binding = make_binding(40'000, 10 * kHour, &payment);
  ASSERT_TRUE(open_dispute(binding, kHour).success);

  // Confirm a DIFFERENT tx and try to pass its proof off.
  mine_block_with({});
  for (std::uint32_t i = 1; i < cfg.required_depth; ++i) mine_block_with({});
  const auto headers = *headers_since(btc_chain, cfg.initial_checkpoint);
  const auto block = btc_chain.block_at_height(
      btc_chain.height() - cfg.required_depth + 1);
  const auto proof = btc::make_inclusion_proof(*block, block->txs[0].txid());
  ASSERT_TRUE(proof.has_value());
  InclusionEvidence ev{headers, *proof, 0};
  const auto r = submit_customer_evidence(ev, kHour + 1000);
  EXPECT_EQ(r.revert_reason, "proof-wrong-txid");
}

TEST_F(JudgerFixture, JudgeForMerchantWhenCustomerSilent) {
  ASSERT_TRUE(deposit().success);
  const auto binding = make_binding(40'000, 10 * kHour);
  ASSERT_TRUE(open_dispute(binding, kHour).success);

  for (int i = 0; i < 4; ++i) mine_block_with({});
  ASSERT_TRUE(
      submit_merchant_evidence(*headers_since(btc_chain, cfg.initial_checkpoint), kHour + 1)
          .success);

  // Too early.
  EXPECT_EQ(judge_now(kHour + 10).revert_reason, "evidence-window-open");

  const psc::Value merchant_before = psc.state().balance(merchant_psc);
  const auto r = judge_now(kHour + cfg.evidence_window_ms + 1);
  ASSERT_TRUE(r.success) << r.revert_reason;
  // Merchant receives compensation + bond back.
  EXPECT_EQ(psc.state().balance(merchant_psc),
            merchant_before + 40'000 + cfg.dispute_bond - r.gas_used);
  const auto v = view();
  EXPECT_EQ(v->state, EscrowState::kActive);
  EXPECT_EQ(v->collateral, 60'000u);
}

TEST_F(JudgerFixture, JudgeForCustomerWithProof) {
  ASSERT_TRUE(deposit().success);
  btc::Transaction payment;
  const auto binding = make_binding(40'000, 10 * kHour, &payment);
  ASSERT_TRUE(open_dispute(binding, kHour).success);

  mine_block_with({payment});
  for (std::uint32_t i = 1; i < cfg.required_depth + 1; ++i) mine_block_with({});

  // Merchant submits (the same, honest) chain — it can't help but include
  // the payment's block; the customer proves inclusion on it.
  const auto headers = *headers_since(btc_chain, cfg.initial_checkpoint);
  ASSERT_TRUE(submit_merchant_evidence(headers, kHour + 1).success);
  const auto ev = build_inclusion_evidence(btc_chain, cfg.initial_checkpoint, payment.txid(),
                                           cfg.required_depth);
  ASSERT_TRUE(ev.has_value());
  ASSERT_TRUE(submit_customer_evidence(*ev, kHour + 2).success);

  const psc::Value customer_before = psc.state().balance(customer_psc);
  const auto r = judge_now(kHour + cfg.evidence_window_ms + 1, other_psc);
  ASSERT_TRUE(r.success) << r.revert_reason;
  // Customer wins: collateral intact, bond forfeited to the customer.
  const auto v = view();
  EXPECT_EQ(v->state, EscrowState::kActive);
  EXPECT_EQ(v->collateral, 100'000u);
  EXPECT_EQ(psc.state().balance(customer_psc), customer_before + cfg.dispute_bond);
}

TEST_F(JudgerFixture, FraudulentCustomerChainLosesOnWeight) {
  ASSERT_TRUE(deposit().success);
  btc::Transaction payment;
  const auto binding = make_binding(40'000, 10 * kHour, &payment);
  ASSERT_TRUE(open_dispute(binding, kHour).success);

  // Honest chain: 6 empty blocks (payment missing) — merchant evidence.
  for (int i = 0; i < 6; ++i) mine_block_with({});
  ASSERT_TRUE(
      submit_merchant_evidence(*headers_since(btc_chain, cfg.initial_checkpoint), kHour + 1)
          .success);

  // Fraudulent customer: a private 3-block fork containing the payment.
  btc::Chain fork(params);
  for (const auto& b : sim::build_funding_chain(params, {customer_party.script}, 2)) {
    ASSERT_EQ(fork.submit_block(b), btc::SubmitResult::kActiveTip);
  }
  ASSERT_EQ(fork.tip_hash(), cfg.initial_checkpoint);
  {
    btc::Block b;
    b.header.prev_hash = fork.tip_hash();
    b.header.time = fork.tip_header().time + 600;
    b.header.bits = params.genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = 0x7000;
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, customer_party.script});
    b.txs.push_back(cb);
    b.txs.push_back(payment);
    ASSERT_TRUE(btc::mine_block(b, params));
    ASSERT_EQ(fork.submit_block(b), btc::SubmitResult::kActiveTip);
    // Extend the fork privately to depth 3.
    btc::BlockHash parent = b.hash();
    std::uint32_t t = b.header.time;
    std::vector<btc::Block> fork_blocks{b};
    for (int i = 0; i < 2; ++i) {
      btc::Block c;
      c.header.prev_hash = parent;
      c.header.time = ++t;
      c.header.bits = params.genesis_bits;
      btc::Transaction cb2;
      btc::TxIn in2;
      in2.prevout.index = 0xffffffff;
      in2.sequence = 0x7100 + static_cast<std::uint32_t>(i);
      cb2.inputs.push_back(in2);
      cb2.outputs.push_back(btc::TxOut{params.subsidy, customer_party.script});
      c.txs.push_back(cb2);
      ASSERT_TRUE(btc::mine_block(c, params));
      parent = c.hash();
      fork_blocks.push_back(c);
    }

    // Customer submits the fraudulent fork evidence (3 headers, proof in #0).
    std::vector<btc::BlockHeader> fraud_headers;
    for (const auto& fb : fork_blocks) fraud_headers.push_back(fb.header);
    const auto proof = btc::make_inclusion_proof(fork_blocks[0], payment.txid());
    ASSERT_TRUE(proof.has_value());
    InclusionEvidence ev{fraud_headers, *proof, 0};
    ASSERT_TRUE(submit_customer_evidence(ev, kHour + 2).success);
  }

  // Judgment: fraud chain (3 blocks) < honest chain (6 blocks) → merchant.
  const auto r = judge_now(kHour + cfg.evidence_window_ms + 1);
  ASSERT_TRUE(r.success);
  const auto v = view();
  EXPECT_EQ(v->collateral, 60'000u);
  bool merchant_won = false;
  for (const auto& log : psc.logs()) merchant_won |= (log.topic == "JudgedForMerchant");
  EXPECT_TRUE(merchant_won);
}

TEST_F(JudgerFixture, BindingReplayBlocked) {
  ASSERT_TRUE(deposit().success);
  const auto binding = make_binding(10'000, 10 * kHour);
  ASSERT_TRUE(open_dispute(binding, kHour).success);
  ASSERT_TRUE(judge_now(kHour + cfg.evidence_window_ms + 1).success);  // merchant wins by default
  EXPECT_EQ(view()->state, EscrowState::kActive);
  // Same binding cannot be disputed twice.
  EXPECT_EQ(open_dispute(binding, kHour + cfg.evidence_window_ms + 2).revert_reason,
            "binding-already-disputed");
}

TEST_F(JudgerFixture, CheckpointUpdateAdvances) {
  for (int i = 0; i < 5; ++i) mine_block_with({});
  const auto headers = *headers_since(btc_chain, cfg.initial_checkpoint);

  psc::PscTx tx;
  tx.from = other_psc;
  tx.to = judger;
  tx.method = "updateCheckpoint";
  tx.args = encode_checkpoint_args(headers);
  tx.gas_limit = 8'000'000;
  const auto r = psc.execute_now(tx, 0);
  ASSERT_TRUE(r.success) << r.revert_reason;

  // Read it back.
  psc::PscTx q;
  q.from = other_psc;
  q.to = judger;
  q.method = "getCheckpoint";
  const auto view_r = psc.view_call(q);
  ASSERT_TRUE(view_r.success);
  Reader reader({view_r.return_data.data(), view_r.return_data.size()});
  const auto hash = reader.bytes(32);
  const auto height = reader.u64le();
  ASSERT_TRUE(hash && height);
  EXPECT_TRUE(equal_bytes({hash->data(), 32}, {btc_chain.tip_hash().bytes.data(), 32}));
  EXPECT_EQ(*height, 5u);

  // A dispute opened now anchors at the new checkpoint.
  ASSERT_TRUE(deposit().success);
  const auto binding = make_binding(10'000, 10 * kHour);
  ASSERT_TRUE(open_dispute(binding, kHour).success);
  EXPECT_EQ(view()->dispute_anchor, btc_chain.tip_hash());
}

TEST_F(JudgerFixture, WithdrawBlockedDuringDispute) {
  ASSERT_TRUE(deposit(100'000, 0, /*unlock_delay=*/1).success);
  const auto binding = make_binding(10'000, 10 * kHour);
  ASSERT_TRUE(open_dispute(binding, kHour).success);
  const auto r = psc.execute_now(wallet->make_withdraw_tx(judger), 2 * kHour);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.revert_reason.find("escrow-not-active"), std::string::npos);
}

TEST_F(JudgerFixture, EvidenceExactlyAtDeadlineCounts) {
  // The window is inclusive: evidence landing at the exact deadline
  // millisecond must count for BOTH sides, and judgment stays blocked
  // until strictly after it.
  ASSERT_TRUE(deposit().success);
  btc::Transaction payment;
  const auto binding = make_binding(40'000, 10 * kHour, &payment);
  ASSERT_TRUE(open_dispute(binding, kHour).success);
  const std::uint64_t deadline = view()->dispute_deadline_ms;
  EXPECT_EQ(deadline, kHour + cfg.evidence_window_ms);

  mine_block_with({payment});
  for (std::uint32_t i = 1; i < cfg.required_depth; ++i) mine_block_with({});

  const auto headers = *headers_since(btc_chain, cfg.initial_checkpoint);
  ASSERT_TRUE(submit_merchant_evidence(headers, deadline).success);
  const auto ev = build_inclusion_evidence(btc_chain, cfg.initial_checkpoint, payment.txid(),
                                           cfg.required_depth);
  ASSERT_TRUE(ev.has_value());
  ASSERT_TRUE(submit_customer_evidence(*ev, deadline).success);
  EXPECT_TRUE(view()->customer_proved);

  // One millisecond later the window is closed for evidence...
  const auto late = submit_merchant_evidence(headers, deadline + 1);
  EXPECT_FALSE(late.success);
  EXPECT_NE(late.revert_reason.find("evidence-window-closed"), std::string::npos);
  // ...while judgment flips the other way across the same boundary.
  EXPECT_EQ(judge_now(deadline).revert_reason, "evidence-window-open");
  ASSERT_TRUE(judge_now(deadline + 1).success);
  EXPECT_EQ(view()->state, EscrowState::kActive);
}

TEST_F(JudgerFixture, DuplicateOpenDisputeRejected) {
  // One dispute at a time: a second openDispute while the escrow is
  // DISPUTED reverts (same binding or a fresh one), and the failed
  // call's bond is rolled back with the revert.
  ASSERT_TRUE(deposit().success);
  const auto binding = make_binding(40'000, 10 * kHour);
  ASSERT_TRUE(open_dispute(binding, kHour).success);

  const psc::Value merchant_before = psc.state().balance(merchant_psc);
  const auto dup = open_dispute(binding, kHour + 1000);
  EXPECT_FALSE(dup.success);
  EXPECT_NE(dup.revert_reason.find("escrow-not-active"), std::string::npos);
  EXPECT_EQ(psc.state().balance(merchant_psc), merchant_before - dup.gas_used);

  const auto other_binding = make_binding(20'000, 10 * kHour);
  const auto second = open_dispute(other_binding, kHour + 2000);
  EXPECT_FALSE(second.success);
  EXPECT_NE(second.revert_reason.find("escrow-not-active"), std::string::npos);
  // Still exactly one dispute recorded against the original binding.
  const auto v = view();
  EXPECT_EQ(v->state, EscrowState::kDisputed);
  EXPECT_EQ(v->dispute_compensation, 40'000u);
}

TEST_F(JudgerFixture, DisputeAfterWithdrawalRejected) {
  // A binding can outlive the escrow: once the customer withdraws, a
  // later openDispute must revert and cost the merchant nothing but gas.
  // (The merchant fast path refuses such bindings up front by requiring
  // unlock_time >= binding expiry; this is the contract-level backstop.)
  ASSERT_TRUE(deposit(100'000, 0, /*unlock_delay=*/1000).success);
  const auto binding = make_binding(40'000, 10 * kHour);
  ASSERT_TRUE(psc.execute_now(wallet->make_withdraw_tx(judger), 5000).success);
  EXPECT_EQ(view()->state, EscrowState::kEmpty);

  const psc::Value merchant_before = psc.state().balance(merchant_psc);
  const auto r = open_dispute(binding, 6000);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.revert_reason.find("escrow-not-active"), std::string::npos);
  EXPECT_EQ(psc.state().balance(merchant_psc), merchant_before - r.gas_used);
  EXPECT_EQ(view()->state, EscrowState::kEmpty);
  EXPECT_EQ(view()->collateral, 0u);
}

TEST_F(JudgerFixture, GasCostsAreSane) {
  const auto r = deposit();
  ASSERT_TRUE(r.success);
  // A deposit should cost the same order as an ERC-20-ish state write op:
  // tens of thousands of gas, not millions.
  EXPECT_GT(r.gas_used, 21'000u);
  EXPECT_LT(r.gas_used, 400'000u);
}

// Counts provider calls and serves correct digests — the contract-side
// seam the dispute storm engine plugs into. Gas and verdicts must not
// depend on whether a provider is attached or how many pool threads run.
struct CountingProvider final : HeaderDigestProvider {
  std::size_t calls = 0;
  std::size_t headers = 0;
  void batch_digests(const std::vector<btc::BlockHeader>& hs,
                     crypto::Sha256Digest* out) override {
    ++calls;
    headers += hs.size();
    for (std::size_t i = 0; i < hs.size(); ++i) {
      std::uint8_t ser[80];
      hs[i].serialize_into(ser);
      out[i] = crypto::sha256d_80(ser);
    }
  }
};

TEST(EvidenceGasDeterminism, ThreadsAndDigestProviderChangeNothing) {
  struct World : JudgerFixture {
    void TestBody() override {}
  };
  struct Outcome {
    bool ok = false;
    std::string reason;
    psc::Gas gas = 0;
    psc::Gas total_gas = 0;
    crypto::U256 work;
  };
  const auto run = [](std::size_t threads, bool with_provider) {
    common::ThreadPool::configure_global(threads);
    World w;
    EXPECT_TRUE(w.deposit().success);
    btc::Transaction pay_tx;
    const auto binding = w.make_binding(400, 2 * kHour, &pay_tx);
    EXPECT_TRUE(w.open_dispute(binding, 10).success);
    w.mine_block_with({pay_tx});
    for (int i = 0; i < 5; ++i) w.mine_block_with({});

    CountingProvider provider;
    auto* judger = dynamic_cast<PayJudger*>(w.psc.contract(w.judger));
    EXPECT_NE(judger, nullptr);
    if (with_provider) judger->set_digest_provider(&provider);

    const auto headers = headers_since(w.btc_chain, w.cfg.initial_checkpoint);
    EXPECT_TRUE(headers.has_value());
    Outcome o;
    if (headers) {
      const auto r = w.submit_merchant_evidence(*headers, 20);
      o.ok = r.success;
      o.reason = r.revert_reason;
      o.gas = r.gas_used;
    }
    o.total_gas = w.psc.total_gas_used();
    if (const auto v = w.view()) o.work = v->merchant_work;
    if (with_provider) {
      EXPECT_EQ(provider.calls, 1u);
      EXPECT_GT(provider.headers, 0u);
      judger->set_digest_provider(nullptr);
    } else {
      EXPECT_EQ(provider.calls, 0u);
    }
    return o;
  };

  const Outcome reference = run(0, false);
  EXPECT_TRUE(reference.ok) << reference.reason;
  EXPECT_GT(reference.gas, 0u);
  EXPECT_NE(reference.work, crypto::U256::zero());
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}, std::size_t{8}}) {
    for (const bool with_provider : {false, true}) {
      const Outcome o = run(threads, with_provider);
      EXPECT_EQ(o.ok, reference.ok) << threads << "/" << with_provider;
      EXPECT_EQ(o.reason, reference.reason) << threads << "/" << with_provider;
      EXPECT_EQ(o.gas, reference.gas) << threads << "/" << with_provider;
      EXPECT_EQ(o.total_gas, reference.total_gas) << threads << "/" << with_provider;
      EXPECT_EQ(o.work, reference.work) << threads << "/" << with_provider;
    }
  }
  common::ThreadPool::configure_global(0);
}

}  // namespace
}  // namespace btcfast::core
