// Tests for the PSC chain substrate: world state, gas metering, tx
// execution semantics (success, revert, out-of-gas, fees), value
// transfer, logs and view calls.
#include <gtest/gtest.h>

#include "common/serialize.h"
#include "psc/chain.h"

namespace btcfast::psc {
namespace {

/// Toy contract: a counter with a paid increment and a method that burns
/// unbounded gas, plus a payout method. Exercises the host surface.
class Counter final : public Contract {
 public:
  Status call(HostContext& host, const std::string& method, ByteSpan args, Bytes* ret) override {
    const Slot key = crypto::U256(1);
    if (method == "increment") {
      const Slot cur = host.sload(key);
      host.sstore(key, crypto::U256(cur.low64() + 1));
      host.emit_log("Incremented");
      return Status::success();
    }
    if (method == "get") {
      const Slot cur = host.sload(key);
      Writer w;
      w.u64le(cur.low64());
      *ret = std::move(w).take();
      return Status::success();
    }
    if (method == "spin") {
      for (;;) host.charge_compute(1'000);  // burns gas until OutOfGas
    }
    if (method == "fail") return make_error("deliberate-failure");
    if (method == "payout") {
      Reader r(args);
      auto amount = r.u64le();
      auto to = r.bytes(20);
      if (!amount || !to) return make_error("bad-args");
      Address dest;
      dest.bytes = to_array<20>(*to);
      if (!host.transfer_out(dest, *amount)) return make_error("insufficient");
      return Status::success();
    }
    if (method == "hash") {
      (void)host.sha256(args);
      return Status::success();
    }
    return make_error("unknown-method", method);
  }
};

struct PscFixture : ::testing::Test {
  PscFixture() {
    contract = chain.deploy("counter", std::make_unique<Counter>());
    chain.mint(alice, 10'000'000);
    chain.mint(bob, 5'000'000);
  }

  PscTx make_call(const std::string& method, Bytes args = {}, Value value = 0) {
    PscTx tx;
    tx.from = alice;
    tx.to = contract;
    tx.method = method;
    tx.args = std::move(args);
    tx.value = value;
    return tx;
  }

  PscChain chain;
  Address contract;
  Address alice = Address::from_label("alice");
  Address bob = Address::from_label("bob");
};

TEST_F(PscFixture, PlainTransferMovesValue) {
  PscTx tx;
  tx.from = alice;
  tx.to = bob;
  tx.value = 1000;
  const Receipt r = chain.execute_now(tx, 0);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(chain.state().balance(bob), 5'001'000u);
  EXPECT_EQ(r.gas_used, chain.schedule().tx_base);
}

TEST_F(PscFixture, FeesAreDeducted) {
  PscTx tx;
  tx.from = alice;
  tx.to = bob;
  tx.value = 1000;
  tx.gas_price = 2;
  const Value before = chain.state().balance(alice);
  const Receipt r = chain.execute_now(tx, 0);
  EXPECT_EQ(chain.state().balance(alice), before - 1000 - r.gas_used * 2);
}

TEST_F(PscFixture, ContractCallMutatesStorage) {
  EXPECT_TRUE(chain.execute_now(make_call("increment"), 0).success);
  EXPECT_TRUE(chain.execute_now(make_call("increment"), 0).success);
  const Receipt r = chain.execute_now(make_call("get"), 0);
  ASSERT_TRUE(r.success);
  Reader reader({r.return_data.data(), r.return_data.size()});
  EXPECT_EQ(reader.u64le().value(), 2u);
}

TEST_F(PscFixture, RevertUndoesEverything) {
  ASSERT_TRUE(chain.execute_now(make_call("increment"), 0).success);
  const Value alice_before = chain.state().balance(alice);

  // A failing call with attached value: value must bounce back.
  const Receipt r = chain.execute_now(make_call("fail", {}, 500), 0);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.revert_reason, "deliberate-failure");
  EXPECT_EQ(chain.state().balance(contract), 0u);
  // Alice lost only the gas fee, not the value.
  EXPECT_EQ(chain.state().balance(alice), alice_before - r.gas_used * 1);

  // Counter unchanged.
  const Receipt g = chain.execute_now(make_call("get"), 0);
  Reader reader({g.return_data.data(), g.return_data.size()});
  EXPECT_EQ(reader.u64le().value(), 1u);
}

TEST_F(PscFixture, OutOfGasChargesFullLimit) {
  PscTx tx = make_call("spin");
  tx.gas_limit = 100'000;
  const Value before = chain.state().balance(alice);
  const Receipt r = chain.execute_now(tx, 0);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.revert_reason, "out of gas");
  EXPECT_EQ(r.gas_used, 100'000u);
  EXPECT_EQ(chain.state().balance(alice), before - 100'000);
}

TEST_F(PscFixture, IntrinsicGasRejection) {
  PscTx tx = make_call("increment");
  tx.gas_limit = 100;  // below tx_base
  const Receipt r = chain.execute_now(tx, 0);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.revert_reason, "intrinsic gas exceeds limit");
}

TEST_F(PscFixture, InsufficientBalanceRejected) {
  PscTx tx;
  tx.from = Address::from_label("pauper");
  tx.to = bob;
  tx.value = 1;
  const Receipt r = chain.execute_now(tx, 0);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(chain.state().balance(bob), 5'000'000u);
}

TEST_F(PscFixture, ValueReachesContractAndCanBePaidOut) {
  ASSERT_TRUE(chain.execute_now(make_call("increment", {}, 2000), 0).success);
  EXPECT_EQ(chain.state().balance(contract), 2000u);

  Writer w;
  w.u64le(1500);
  w.bytes({bob.bytes.data(), bob.bytes.size()});
  const Receipt r = chain.execute_now(make_call("payout", std::move(w).take()), 0);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(chain.state().balance(contract), 500u);
  EXPECT_EQ(chain.state().balance(bob), 5'001'500u);
}

TEST_F(PscFixture, PayoutBeyondBalanceReverts) {
  Writer w;
  w.u64le(999'999);
  w.bytes({bob.bytes.data(), bob.bytes.size()});
  const Receipt r = chain.execute_now(make_call("payout", std::move(w).take()), 0);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(chain.state().balance(bob), 5'000'000u);
}

TEST_F(PscFixture, LogsRecordedOnSuccessOnly) {
  ASSERT_TRUE(chain.execute_now(make_call("increment"), 0).success);
  ASSERT_FALSE(chain.execute_now(make_call("fail"), 0).success);
  std::size_t incremented = 0;
  for (const auto& log : chain.logs()) incremented += (log.topic == "Incremented");
  EXPECT_EQ(incremented, 1u);
}

TEST_F(PscFixture, ViewCallLeavesStateUntouched) {
  ASSERT_TRUE(chain.execute_now(make_call("increment"), 0).success);
  const Receipt r = chain.view_call(make_call("increment"));
  EXPECT_TRUE(r.success);
  // State unchanged by the view.
  const Receipt g = chain.execute_now(make_call("get"), 0);
  Reader reader({g.return_data.data(), g.return_data.size()});
  EXPECT_EQ(reader.u64le().value(), 1u);
}

TEST_F(PscFixture, Sha256HostOpChargesByWord) {
  PscTx small = make_call("hash", Bytes(32, 0xab));
  PscTx large = make_call("hash", Bytes(320, 0xab));
  const Receipt rs = chain.execute_now(small, 0);
  const Receipt rl = chain.execute_now(large, 0);
  ASSERT_TRUE(rs.success);
  ASSERT_TRUE(rl.success);
  // 9 extra words of hashing plus extra calldata.
  const Gas extra_data = (320 - 32) * chain.schedule().tx_data_byte;
  const Gas extra_hash = 9 * chain.schedule().sha256_word;
  EXPECT_EQ(rl.gas_used - rs.gas_used, extra_data + extra_hash);
}

TEST_F(PscFixture, BlocksBatchPendingTxs) {
  (void)chain.submit(make_call("increment"));
  (void)chain.submit(make_call("increment"));
  EXPECT_EQ(chain.pending_txs(), 2u);
  chain.produce_block(1000);
  EXPECT_EQ(chain.pending_txs(), 0u);
  EXPECT_EQ(chain.block_number(), 1u);
  const Receipt g = chain.execute_now(make_call("get"), 2000);
  Reader reader({g.return_data.data(), g.return_data.size()});
  EXPECT_EQ(reader.u64le().value(), 2u);
}

TEST_F(PscFixture, NonceBumpsPerTransaction) {
  EXPECT_EQ(chain.state().nonce(alice), 0u);
  (void)chain.execute_now(make_call("increment"), 0);
  (void)chain.execute_now(make_call("fail"), 0);  // failed txs bump the nonce too
  EXPECT_EQ(chain.state().nonce(alice), 2u);
}

TEST(WorldState, StorageLifecycle) {
  WorldState state;
  const Address c = Address::from_label("c");
  const Slot key = crypto::U256(7);
  EXPECT_TRUE(state.storage_load(c, key).is_zero());
  EXPECT_TRUE(state.storage_store(c, key, crypto::U256(5)));   // zero -> nonzero
  EXPECT_FALSE(state.storage_store(c, key, crypto::U256(6)));  // update
  EXPECT_EQ(state.storage_load(c, key).low64(), 6u);
  EXPECT_FALSE(state.storage_store(c, key, crypto::U256(0)));  // clear
  EXPECT_TRUE(state.storage_load(c, key).is_zero());
}

TEST(GasMeter, ThrowsAtLimit) {
  GasMeter meter(100, GasSchedule::istanbul());
  meter.charge(60);
  meter.charge(40);
  EXPECT_EQ(meter.remaining(), 0u);
  EXPECT_THROW(meter.charge(1), OutOfGas);
}

TEST(GasMeter, Sha256PricingMatchesSchedule) {
  GasMeter meter(1'000'000, GasSchedule::istanbul());
  meter.charge_sha256(0);
  EXPECT_EQ(meter.used(), 60u);
  meter.charge_sha256(33);  // 2 words
  EXPECT_EQ(meter.used(), 60u + 60 + 24);
}

}  // namespace
}  // namespace btcfast::psc
