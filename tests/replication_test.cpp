// Replication subsystem tests: WAL-shipping parity (followers
// byte-identical to the primary), fail-closed batch validation (gaps,
// CRC flips, stale epochs, cross-epoch divergence), quorum semantics
// including the quorum=0 degradation and unreachable-quorum rejection,
// crash-point-exhaustive failover (kill the primary at every ship
// boundary and prove the promoted store is byte-exact for every acked
// record), catch-up after follower restart, snapshot install past
// compaction, and the rendezvous escrow router's remap bound plus the
// partitioned front's single-partition byte parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "gateway/wire.h"
#include "replication/failover.h"
#include "replication/follower.h"
#include "replication/log_ship.h"
#include "replication/router.h"
#include "store/recovery.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace btcfast::replication {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("btcfast-repl-test-" + tag + "-" +
                      std::to_string(static_cast<unsigned long>(::getpid())));
  fs::remove_all(p);
  return p.string();
}

store::StoreOptions no_fsync() {
  store::StoreOptions o;
  o.policy = store::FsyncPolicy::kNone;
  return o;
}

store::StoreRecord reserve_rec(store::ReservationId rid) {
  store::StoreRecord r;
  r.kind = store::RecordKind::kReserve;
  r.reservation_id = rid;
  r.escrow_id = 7;
  r.amount = 1000 + rid;
  r.expires_at_ms = 50'000 + rid;
  r.txid[0] = static_cast<std::uint8_t>(rid);
  return r;
}

store::StoreRecord release_rec(store::ReservationId rid) {
  store::StoreRecord r;
  r.kind = store::RecordKind::kRelease;
  r.reservation_id = rid;
  r.cause = store::ReleaseCause::kRejected;
  return r;
}

/// A primary + N followers rig with local in-process links, everything
/// fsync-free (tests simulate crashes by dropping handles, not power).
struct Rig {
  Rig() = default;
  Rig(Rig&&) = default;
  Rig& operator=(Rig&&) = default;

  std::unique_ptr<store::DurableStore> primary;
  std::vector<std::unique_ptr<Follower>> followers;
  std::vector<std::unique_ptr<LocalFollowerLink>> links;
  std::vector<std::string> dirs;
  std::string primary_dir;

  static Rig make(const std::string& tag, std::size_t n_followers,
                  store::StoreOptions primary_opts) {
    Rig rig;
    rig.primary_dir = scratch_dir(tag + "-primary");
    rig.primary = store::DurableStore::open(rig.primary_dir, primary_opts);
    EXPECT_NE(rig.primary, nullptr);
    for (std::size_t i = 0; i < n_followers; ++i) {
      rig.dirs.push_back(scratch_dir(tag + "-f" + std::to_string(i)));
      Follower::Options fopts;
      fopts.store = no_fsync();
      std::string err;
      rig.followers.push_back(Follower::open(rig.dirs[i], fopts, &err));
      EXPECT_NE(rig.followers[i], nullptr) << err;
      rig.links.push_back(std::make_unique<LocalFollowerLink>(rig.followers[i].get()));
    }
    return rig;
  }

  ~Rig() {
    for (const auto& d : dirs) fs::remove_all(d);
    if (!primary_dir.empty()) fs::remove_all(primary_dir);
  }
};

/// Rebuild the primary's state image at `upto` by replaying its WAL
/// from sequence 1 — the byte-exact control for failover assertions.
store::StateImage replay_primary_to(store::DurableStore& primary, std::uint64_t upto) {
  store::StateImage img;
  const auto scan = primary.read_range(1, 1 << 20);
  EXPECT_TRUE(scan.ok()) << scan.error;
  EXPECT_FALSE(scan.pruned) << "control replay needs the full WAL (snapshot_every=0)";
  for (const auto& wr : scan.records) {
    if (wr.seq > upto) break;
    const auto rec = store::StoreRecord::deserialize(wr.payload);
    EXPECT_TRUE(rec.has_value());
    EXPECT_TRUE(store::apply_record(img, *rec, wr.seq));
  }
  return img;
}

// ------------------------------------------------------------ shipping

TEST(LogShip, FollowersConvergeByteIdentical) {
  Rig rig = Rig::make("parity", 2, no_fsync());
  LogShipper shipper(LogShipper::Options{});
  shipper.attach_primary(rig.primary.get());
  shipper.add_follower(rig.links[0].get());
  shipper.add_follower(rig.links[1].get());

  for (store::ReservationId rid = 1; rid <= 40; ++rid) {
    ASSERT_TRUE(rig.primary->append(reserve_rec(rid)).has_value());
    if (rid % 3 == 0) {
      ASSERT_TRUE(rig.primary->append(release_rec(rid)).has_value());
    }
    ASSERT_TRUE(rig.primary->commit());
    if (rid % 5 == 0) shipper.pump(rid);
  }
  shipper.pump(1000);

  const Bytes want = rig.primary->image_copy().serialize();
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(rig.followers[i]->store()->image_copy().serialize(), want) << "follower " << i;
    EXPECT_EQ(rig.followers[i]->cursor().last_seq, rig.primary->last_committed_seq());
  }
  EXPECT_EQ(shipper.acked_watermark(2), rig.primary->last_committed_seq());
  EXPECT_GT(shipper.stats().batches_shipped, 0u);
}

TEST(LogShip, ReshipIsIdempotent) {
  Rig rig = Rig::make("reship", 1, no_fsync());
  ASSERT_TRUE(rig.primary->append(reserve_rec(1)).has_value());
  ASSERT_TRUE(rig.primary->commit());

  Bytes framed;
  {
    const auto scan = rig.primary->read_range(1, 16);
    ASSERT_TRUE(scan.ok());
    for (const auto& wr : scan.records) store::append_wal_record(framed, wr.seq, wr.payload);
  }
  ShipBatch batch;
  batch.epoch = 0;
  batch.first_seq = 1;
  batch.count = 1;
  batch.framed = framed;

  ASSERT_TRUE(rig.followers[0]->append_batch(batch).ok);
  const auto again = rig.followers[0]->append_batch(batch);
  EXPECT_TRUE(again.ok) << static_cast<int>(again.error);
  EXPECT_EQ(again.next_seq, 2u);
  EXPECT_EQ(rig.followers[0]->store()->image_copy().serialize(),
            rig.primary->image_copy().serialize());
}

// ------------------------------------------------- fail-closed intake

class FollowerRejects : public ::testing::Test {
 protected:
  void SetUp() override {
    rig_ = std::make_unique<Rig>(Rig::make("reject", 1, no_fsync()));
    ASSERT_TRUE(rig_->primary->append(reserve_rec(1)).has_value());
    ASSERT_TRUE(rig_->primary->append(reserve_rec(2)).has_value());
    ASSERT_TRUE(rig_->primary->commit());
    const auto scan = rig_->primary->read_range(1, 16);
    ASSERT_TRUE(scan.ok());
    for (const auto& wr : scan.records) {
      store::append_wal_record(batch_.framed, wr.seq, wr.payload);
    }
    batch_.epoch = 0;
    batch_.first_seq = 1;
    batch_.count = 2;
  }

  std::unique_ptr<Rig> rig_;
  ShipBatch batch_;
};

TEST_F(FollowerRejects, SequenceGapFailsClosed) {
  // A well-formed batch starting past the follower's next sequence: the
  // same payloads re-framed (valid CRCs) at seqs 5 and 6.
  ShipBatch gap;
  gap.epoch = 0;
  gap.first_seq = 5;  // follower expects 1
  gap.count = 2;
  const auto scan = rig_->primary->read_range(1, 16);
  ASSERT_TRUE(scan.ok());
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    store::append_wal_record(gap.framed, 5 + i, scan.records[i].payload);
  }
  const auto ack = rig_->followers[0]->append_batch(gap);
  EXPECT_FALSE(ack.ok);
  EXPECT_EQ(ack.error, ShipError::kSequenceGap);
  EXPECT_EQ(ack.next_seq, 1u);
  EXPECT_EQ(rig_->followers[0]->store()->last_committed_seq(), 0u);
}

TEST_F(FollowerRejects, EveryCrcFlipFailsClosed) {
  for (std::size_t i = 0; i < batch_.framed.size(); ++i) {
    ShipBatch bad = batch_;
    bad.framed[i] ^= 0x01;
    const auto ack = rig_->followers[0]->append_batch(bad);
    EXPECT_FALSE(ack.ok) << "flip at " << i;
    EXPECT_EQ(rig_->followers[0]->store()->last_committed_seq(), 0u) << "flip at " << i;
  }
  // The pristine batch still lands: nothing was half-applied.
  EXPECT_TRUE(rig_->followers[0]->append_batch(batch_).ok);
  EXPECT_EQ(rig_->followers[0]->store()->last_committed_seq(), 2u);
}

TEST_F(FollowerRejects, StaleEpochFailsClosed) {
  ASSERT_TRUE(rig_->followers[0]->fence(3));
  const auto ack = rig_->followers[0]->append_batch(batch_);  // epoch 0 < fence 3
  EXPECT_FALSE(ack.ok);
  EXPECT_EQ(ack.error, ShipError::kStaleEpoch);
  EXPECT_EQ(rig_->followers[0]->store()->last_committed_seq(), 0u);
}

TEST_F(FollowerRejects, CrossEpochOverlapIsDivergence) {
  ASSERT_TRUE(rig_->followers[0]->append_batch(batch_).ok);
  ShipBatch newer = batch_;
  newer.epoch = 2;  // a promoted primary re-shipping seq 1 = histories split
  const auto ack = rig_->followers[0]->append_batch(newer);
  EXPECT_FALSE(ack.ok);
  EXPECT_EQ(ack.error, ShipError::kDiverged);
}

TEST_F(FollowerRejects, FencePersistsAcrossRestart) {
  ASSERT_TRUE(rig_->followers[0]->fence(9));
  const std::string dir = rig_->followers[0]->dir();
  rig_->followers[0].reset();
  Follower::Options fopts;
  fopts.store = no_fsync();
  auto reopened = Follower::open(dir, fopts);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->fenced_epoch(), 9u);
  const auto ack = reopened->append_batch(batch_);
  EXPECT_EQ(ack.error, ShipError::kStaleEpoch);
}

// --------------------------------------------------------- quorum gate

TEST(ReplicationGroup, QuorumZeroIsSingleNode) {
  Rig rig = Rig::make("q0", 0, no_fsync());
  ReplicationConfig cfg;
  cfg.quorum = 0;
  ReplicationGroup group(cfg);
  group.attach_primary(rig.primary.get());
  const auto seq = rig.primary->append(reserve_rec(1));
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(rig.primary->commit());
  EXPECT_TRUE(group.quorum_commit(*seq, 1));
  group.detach_primary();
}

TEST(ReplicationGroup, UnreachableQuorumFailsClosed) {
  Rig rig = Rig::make("qdown", 1, no_fsync());
  ReplicationConfig cfg;
  cfg.quorum = 1;
  ReplicationGroup group(cfg);
  group.attach_primary(rig.primary.get());
  group.add_follower(rig.links[0].get());

  rig.links[0]->set_down(true);
  const auto seq = rig.primary->append(reserve_rec(1));
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(rig.primary->commit());
  EXPECT_FALSE(group.quorum_commit(*seq, 1));
  EXPECT_GT(group.stats().quorum_failures, 0u);

  // The follower coming back heals the gate without operator action.
  rig.links[0]->set_down(false);
  EXPECT_TRUE(group.quorum_commit(*seq, 10'000));
  EXPECT_EQ(group.acked_high(), *seq);
  group.detach_primary();
}

TEST(ReplicationGroup, QuorumOneNeedsOnlyFastestFollower) {
  Rig rig = Rig::make("q1of2", 2, no_fsync());
  ReplicationConfig cfg;
  cfg.quorum = 1;
  ReplicationGroup group(cfg);
  group.attach_primary(rig.primary.get());
  group.add_follower(rig.links[0].get());
  group.add_follower(rig.links[1].get());

  rig.links[1]->set_down(true);  // slow replica lost; group stays writable
  const auto seq = rig.primary->append(reserve_rec(1));
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(rig.primary->commit());
  EXPECT_TRUE(group.quorum_commit(*seq, 1));
  EXPECT_EQ(rig.followers[0]->cursor().last_seq, *seq);
  EXPECT_EQ(rig.followers[1]->cursor().last_seq, 0u);
  group.detach_primary();
}

// ------------------------------------------------------------ failover

// Kill the primary at every ship boundary k (k committed records were
// quorum-acked, the rest never shipped) and promote the follower. The
// promoted store must (a) cover every acked sequence and (b) be
// byte-identical to replaying the primary's WAL to its promoted_seq —
// with the new epoch, whose record the promotion itself writes.
TEST(Failover, CrashPointExhaustiveByteExactPromotion) {
  constexpr std::uint64_t kRecords = 7;
  for (std::uint64_t k = 0; k <= kRecords; ++k) {
    Rig rig = Rig::make("fo" + std::to_string(k), 1, no_fsync());
    ReplicationConfig cfg;
    cfg.quorum = 1;
    ReplicationGroup group(cfg);
    group.attach_primary(rig.primary.get());
    group.add_follower(rig.links[0].get());

    for (std::uint64_t i = 1; i <= kRecords; ++i) {
      const auto seq = rig.primary->append(reserve_rec(i));
      ASSERT_TRUE(seq.has_value());
      ASSERT_TRUE(rig.primary->commit());
      if (i <= k) {
        ASSERT_TRUE(group.quorum_commit(*seq, i)) << "k=" << k << " i=" << i;
      }
    }
    const std::uint64_t acked_high = group.acked_high();
    ASSERT_EQ(acked_high, k);

    const auto plan = group.plan_promotion();
    ASSERT_TRUE(plan.ok()) << plan.error;
    EXPECT_EQ(plan.new_epoch, 1u);
    group.detach_primary();

    auto promo = promote_follower(*rig.followers[plan.index], plan.new_epoch);
    ASSERT_TRUE(promo.ok()) << promo.error;
    ASSERT_NE(promo.store, nullptr);
    EXPECT_GE(promo.promoted_seq, acked_high) << "acked record lost at k=" << k;

    store::StateImage want = replay_primary_to(*rig.primary, promo.promoted_seq);
    want.epoch = plan.new_epoch;
    want.last_seq = promo.store->last_committed_seq();  // + the kEpochChange record
    EXPECT_EQ(promo.store->image_copy().serialize(), want.serialize()) << "k=" << k;

    // The promoted node is fenced: it refuses the deposed primary's epoch.
    const auto img = promo.store->image_copy();
    EXPECT_EQ(img.epoch, plan.new_epoch);
  }
}

TEST(Failover, DeposedPrimaryIsFencedOut) {
  Rig rig = Rig::make("fence", 1, no_fsync());
  ReplicationConfig cfg;
  cfg.quorum = 1;
  ReplicationGroup group(cfg);
  group.attach_primary(rig.primary.get());
  group.add_follower(rig.links[0].get());

  const auto seq = rig.primary->append(reserve_rec(1));
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(rig.primary->commit());
  ASSERT_TRUE(group.quorum_commit(*seq, 1));

  // Promotion happens "elsewhere": the follower is fenced at epoch 1.
  ASSERT_TRUE(rig.followers[0]->fence(1));

  // The old primary's next quorum_commit must fail — and latch.
  const auto seq2 = rig.primary->append(reserve_rec(2));
  ASSERT_TRUE(seq2.has_value());
  ASSERT_TRUE(rig.primary->commit());
  EXPECT_FALSE(group.quorum_commit(*seq2, 2));
  EXPECT_TRUE(group.stats().fenced_out);
  group.detach_primary();
}

TEST(Failover, CatchUpAfterFollowerRestart) {
  Rig rig = Rig::make("catchup", 1, no_fsync());
  LogShipper shipper(LogShipper::Options{});
  shipper.attach_primary(rig.primary.get());
  shipper.add_follower(rig.links[0].get());

  ASSERT_TRUE(rig.primary->append(reserve_rec(1)).has_value());
  ASSERT_TRUE(rig.primary->commit());
  shipper.pump(1);
  ASSERT_EQ(rig.followers[0]->cursor().last_seq, 1u);

  // Follower process dies; primary keeps committing.
  rig.links[0]->set_follower(nullptr);
  for (store::ReservationId rid = 2; rid <= 10; ++rid) {
    ASSERT_TRUE(rig.primary->append(reserve_rec(rid)).has_value());
    ASSERT_TRUE(rig.primary->commit());
    shipper.pump(rid);  // all NACK as unreachable
  }

  // Restart from its own disk; the shipper replays the delta.
  rig.followers[0].reset();
  Follower::Options fopts;
  fopts.store = no_fsync();
  rig.followers[0] = Follower::open(rig.dirs[0], fopts);
  ASSERT_NE(rig.followers[0], nullptr);
  EXPECT_EQ(rig.followers[0]->cursor().last_seq, 1u);
  rig.links[0]->set_follower(rig.followers[0].get());

  shipper.pump(100'000);  // past any backoff
  EXPECT_EQ(rig.followers[0]->store()->image_copy().serialize(),
            rig.primary->image_copy().serialize());
}

TEST(Failover, SnapshotInstallWhenLogIsPruned) {
  store::StoreOptions popts = no_fsync();
  Rig rig = Rig::make("install", 1, popts);
  for (store::ReservationId rid = 1; rid <= 20; ++rid) {
    ASSERT_TRUE(rig.primary->append(reserve_rec(rid)).has_value());
    ASSERT_TRUE(rig.primary->commit());
  }
  // Compaction drops the shipped history before the follower ever sees it.
  ASSERT_TRUE(rig.primary->take_snapshot());
  ASSERT_TRUE(rig.primary->append(reserve_rec(21)).has_value());
  ASSERT_TRUE(rig.primary->commit());

  LogShipper shipper(LogShipper::Options{});
  shipper.attach_primary(rig.primary.get());
  shipper.add_follower(rig.links[0].get());
  shipper.pump(1);

  EXPECT_GE(shipper.stats().snapshot_installs, 1u);
  EXPECT_EQ(rig.followers[0]->store()->image_copy().serialize(),
            rig.primary->image_copy().serialize());

  // And the installed follower keeps tailing normally afterwards.
  ASSERT_TRUE(rig.primary->append(reserve_rec(22)).has_value());
  ASSERT_TRUE(rig.primary->commit());
  shipper.pump(100'000);
  EXPECT_EQ(rig.followers[0]->store()->image_copy().serialize(),
            rig.primary->image_copy().serialize());
}

// -------------------------------------------------------------- router

TEST(EscrowRouter, DeterministicAndOrderIndependent) {
  EscrowRouter a({1, 2, 3, 4});
  EscrowRouter b({4, 2, 3, 1});
  for (std::uint64_t key = 0; key < 500; ++key) {
    const auto ra = a.route(key);
    ASSERT_TRUE(ra.has_value());
    EXPECT_EQ(ra, b.route(key)) << key;
  }
  EXPECT_FALSE(EscrowRouter{}.route(42).has_value());
}

TEST(EscrowRouter, AddPartitionRemapsAboutOneOverP) {
  constexpr std::uint64_t kKeys = 4000;
  for (std::size_t p = 1; p <= 8; ++p) {
    EscrowRouter before;
    for (std::size_t i = 0; i < p; ++i) before.add_partition(100 + i);
    EscrowRouter after = before;
    after.add_partition(100 + p);

    std::uint64_t moved = 0, moved_elsewhere = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      const auto rb = before.route(key);
      const auto ra = after.route(key);
      if (rb != ra) {
        ++moved;
        if (ra != 100 + p) ++moved_elsewhere;
      }
    }
    // Rendezvous guarantee: keys only ever move TO the new partition,
    // and roughly 1/(P+1) of them do (generous 2x tolerance).
    EXPECT_EQ(moved_elsewhere, 0u) << "p=" << p;
    const double expect = static_cast<double>(kKeys) / static_cast<double>(p + 1);
    EXPECT_GT(static_cast<double>(moved), expect * 0.5) << "p=" << p;
    EXPECT_LT(static_cast<double>(moved), expect * 2.0) << "p=" << p;
  }
}

TEST(EscrowRouter, RemoveOnlyReassignsOwnedKeys) {
  EscrowRouter before({1, 2, 3, 4});
  EscrowRouter after = before;
  ASSERT_TRUE(after.remove_partition(3));
  for (std::uint64_t key = 0; key < 2000; ++key) {
    const auto rb = before.route(key);
    if (rb != 3) {
      EXPECT_EQ(after.route(key), rb) << key;
    }
  }
}

TEST(PartitionedFront, SinglePartitionIsByteIdentical) {
  std::vector<Bytes> seen;
  PartitionedFront front;
  front.add_partition(1, [&seen](ByteSpan frame, std::uint64_t) {
    seen.emplace_back(frame.begin(), frame.end());
    return Bytes{0xaa, 0xbb};
  });

  gateway::QueryEscrowRequest q;
  q.escrow_id = 99;
  const Bytes frame = gateway::make_frame(gateway::MsgType::kQueryEscrow, 5, q.serialize());
  const Bytes resp = front.serve(frame, 1);
  EXPECT_EQ(resp, (Bytes{0xaa, 0xbb}));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], frame);  // the frame reaches the partition unmodified

  // Malformed input also lands on the only partition (canonical error).
  (void)front.serve(Bytes{0x01, 0x02}, 1);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(front.stats().fallthroughs, 1u);
}

TEST(PartitionedFront, RoutesByEscrowAndProbesReceipts) {
  std::vector<int> hits(3, 0);
  PartitionedFront front;
  for (std::uint64_t p = 0; p < 3; ++p) {
    front.add_partition(p, [&hits, p](ByteSpan, std::uint64_t) {
      ++hits[p];
      gateway::ReceiptInfoResponse r;
      r.found = (p == 2);  // only partition 2 knows this receipt
      return gateway::make_frame(gateway::MsgType::kReceiptInfo, 1, r.serialize());
    });
  }

  // Same escrow always lands on the same partition.
  gateway::QueryEscrowRequest q;
  q.escrow_id = 1234;
  const Bytes frame = gateway::make_frame(gateway::MsgType::kQueryEscrow, 1, q.serialize());
  (void)front.serve(frame, 1);
  (void)front.serve(frame, 2);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 2);
  EXPECT_EQ(hits[0] + hits[1] + hits[2], 2);
  EXPECT_EQ(front.stats().routed_queries, 2u);

  // Receipt lookups are keyed by request id, not escrow: probe until hit.
  std::fill(hits.begin(), hits.end(), 0);
  gateway::GetReceiptRequest gr;
  gr.request_id = 1;
  const Bytes rframe = gateway::make_frame(gateway::MsgType::kGetReceipt, 9, gr.serialize());
  const Bytes resp = front.serve(rframe, 3);
  const auto parsed = gateway::Frame::deserialize(resp);
  ASSERT_TRUE(parsed.has_value());
  const auto info = gateway::ReceiptInfoResponse::deserialize(parsed->payload);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->found);
  EXPECT_GE(front.stats().receipt_probes, 1u);
}

}  // namespace
}  // namespace btcfast::replication
