// Tests for the on-chain payment-reservation extension (reserved mode):
// per-binding collateral locking, release on settlement, interaction with
// disputes and withdraw, and the cross-merchant double-booking scenario
// it exists to prevent.
#include <gtest/gtest.h>

#include "btc/pow.h"
#include "btcfast/customer.h"
#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcfast/orchestrator.h"
#include "btcsim/scenario.h"

namespace btcfast::core {
namespace {

using sim::Party;

constexpr std::uint64_t kHourMs = 60ULL * 60 * 1000;

struct ReservationFixture : ::testing::Test {
  ReservationFixture()
      : params(btc::ChainParams::regtest()),
        btc_chain(params),
        customer_party(Party::make(11)),
        merchant_a(Party::make(22)),
        merchant_b(Party::make(33)) {
    for (const auto& b : sim::build_funding_chain(params, {customer_party.script}, 3)) {
      EXPECT_EQ(btc_chain.submit_block(b), btc::SubmitResult::kActiveTip);
    }
    cfg.pow_limit = params.pow_limit;
    cfg.initial_checkpoint = btc_chain.tip_hash();
    cfg.required_depth = 3;
    cfg.evidence_window_ms = kHourMs;
    cfg.min_collateral = 1'000;
    cfg.dispute_bond = 500;
    judger = psc.deploy("payjudger", std::make_unique<PayJudger>(cfg));
    psc.mint(customer_psc, 1'000'000'000);
    psc.mint(merchant_a_psc, 1'000'000'000);
    psc.mint(merchant_b_psc, 1'000'000'000);
    wallet = std::make_unique<CustomerWallet>(customer_party, customer_psc, 1);
    EXPECT_TRUE(psc.execute_now(wallet->make_deposit_tx(judger, 100'000, 100 * kHourMs), 0)
                    .success);
  }

  /// A binding paying merchant A or B using the idx-th customer coin.
  SignedBinding make_binding(psc::Value compensation, const Party& merchant,
                             const psc::Address& merchant_addr, std::size_t coin_idx) {
    const auto coins = sim::find_spendable(btc_chain, customer_party.script);
    EXPECT_GT(coins.size(), coin_idx);
    const auto [op, coin] = coins.at(coin_idx);
    Invoice inv;
    inv.amount_sat = coin.out.value / 2;
    inv.compensation = compensation;
    inv.pay_to = merchant.script;
    inv.merchant_psc = merchant_addr;
    inv.expires_at_ms = 50 * kHourMs;
    return wallet->create_fastpay(inv, op, coin.out.value, 0, 50 * kHourMs).binding;
  }

  psc::Receipt call_with_binding(const std::string& method, const psc::Address& from,
                                 const SignedBinding& binding, std::uint64_t when,
                                 psc::Value value = 0) {
    psc::PscTx tx;
    tx.from = from;
    tx.to = judger;
    tx.value = value;
    tx.method = method;
    tx.args = encode_open_dispute_args(1, binding);
    return psc.execute_now(tx, when);
  }

  std::optional<EscrowView> view() {
    psc::PscTx q;
    q.from = customer_psc;
    q.to = judger;
    q.method = "getEscrow";
    q.args = encode_escrow_id_arg(1);
    const auto r = psc.view_call(q);
    if (!r.success) return std::nullopt;
    return PayJudger::decode_escrow_view(r.return_data);
  }

  btc::ChainParams params;
  btc::Chain btc_chain;
  Party customer_party;
  Party merchant_a;
  Party merchant_b;
  psc::PscChain psc;
  PayJudgerConfig cfg;
  psc::Address judger;
  psc::Address customer_psc = psc::Address::from_label("customer");
  psc::Address merchant_a_psc = psc::Address::from_label("merchant-a");
  psc::Address merchant_b_psc = psc::Address::from_label("merchant-b");
  std::unique_ptr<CustomerWallet> wallet;
};

TEST_F(ReservationFixture, ReserveLocksCollateral) {
  const auto b = make_binding(60'000, merchant_a, merchant_a_psc, 0);
  const auto r = call_with_binding("reservePayment", merchant_a_psc, b, 10);
  ASSERT_TRUE(r.success) << r.revert_reason;
  const auto v = view();
  EXPECT_EQ(v->reserved, 60'000u);
  EXPECT_EQ(v->collateral, 100'000u);
}

TEST_F(ReservationFixture, CrossMerchantDoubleBookingBlocked) {
  // Merchant A reserves 60k of the 100k collateral...
  const auto ba = make_binding(60'000, merchant_a, merchant_a_psc, 0);
  ASSERT_TRUE(call_with_binding("reservePayment", merchant_a_psc, ba, 10).success);
  // ...so merchant B's 60k reservation no longer fits.
  const auto bb = make_binding(60'000, merchant_b, merchant_b_psc, 1);
  const auto r = call_with_binding("reservePayment", merchant_b_psc, bb, 11);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.revert_reason, "insufficient-unreserved-collateral");
  // A smaller one does.
  const auto bb2 = make_binding(40'000, merchant_b, merchant_b_psc, 2);
  EXPECT_TRUE(call_with_binding("reservePayment", merchant_b_psc, bb2, 12).success);
  EXPECT_EQ(view()->reserved, 100'000u);
}

TEST_F(ReservationFixture, DuplicateReservationRejected) {
  const auto b = make_binding(30'000, merchant_a, merchant_a_psc, 0);
  ASSERT_TRUE(call_with_binding("reservePayment", merchant_a_psc, b, 10).success);
  const auto r = call_with_binding("reservePayment", merchant_a_psc, b, 11);
  EXPECT_EQ(r.revert_reason, "binding-already-reserved");
}

TEST_F(ReservationFixture, OnlyBindingMerchantMayReserve) {
  const auto b = make_binding(30'000, merchant_a, merchant_a_psc, 0);
  const auto r = call_with_binding("reservePayment", merchant_b_psc, b, 10);
  EXPECT_EQ(r.revert_reason, "not-binding-merchant");
}

TEST_F(ReservationFixture, ReleaseFreesCollateral) {
  const auto b = make_binding(30'000, merchant_a, merchant_a_psc, 0);
  ASSERT_TRUE(call_with_binding("reservePayment", merchant_a_psc, b, 10).success);
  ASSERT_TRUE(call_with_binding("releaseReservation", merchant_a_psc, b, 20).success);
  EXPECT_EQ(view()->reserved, 0u);
  // Releasing twice fails.
  EXPECT_EQ(call_with_binding("releaseReservation", merchant_a_psc, b, 21).revert_reason,
            "no-reservation");
}

TEST_F(ReservationFixture, DisputeConsumesReservation) {
  const auto b = make_binding(30'000, merchant_a, merchant_a_psc, 0);
  ASSERT_TRUE(call_with_binding("reservePayment", merchant_a_psc, b, 10).success);
  ASSERT_TRUE(call_with_binding("openDispute", merchant_a_psc, b, 20, cfg.dispute_bond)
                  .success);
  const auto v = view();
  EXPECT_EQ(v->state, EscrowState::kDisputed);
  EXPECT_EQ(v->reserved, 0u);  // reservation consumed by the dispute
}

TEST_F(ReservationFixture, OptimisticDisputeMustFitUnreservedCollateral) {
  // Merchant A reserves 80k; merchant B disputes an optimistic 30k
  // binding — only 20k is unreserved, so it must be refused.
  const auto ba = make_binding(80'000, merchant_a, merchant_a_psc, 0);
  ASSERT_TRUE(call_with_binding("reservePayment", merchant_a_psc, ba, 10).success);
  const auto bb = make_binding(30'000, merchant_b, merchant_b_psc, 1);
  const auto r = call_with_binding("openDispute", merchant_b_psc, bb, 20, cfg.dispute_bond);
  EXPECT_EQ(r.revert_reason, "compensation-exceeds-collateral");
}

TEST_F(ReservationFixture, WithdrawBlockedWhileReserved) {
  const auto b = make_binding(30'000, merchant_a, merchant_a_psc, 0);
  ASSERT_TRUE(call_with_binding("reservePayment", merchant_a_psc, b, 10).success);
  const auto r = psc.execute_now(wallet->make_withdraw_tx(judger), 120 * kHourMs);
  EXPECT_EQ(r.revert_reason, "reservations-outstanding");
  // After release, withdraw goes through.
  ASSERT_TRUE(call_with_binding("releaseReservation", merchant_a_psc, b, 30).success);
  EXPECT_TRUE(psc.execute_now(wallet->make_withdraw_tx(judger), 121 * kHourMs).success);
}

TEST_F(ReservationFixture, DisputedBindingCannotBeReserved) {
  const auto b = make_binding(30'000, merchant_a, merchant_a_psc, 0);
  ASSERT_TRUE(call_with_binding("openDispute", merchant_a_psc, b, 10, cfg.dispute_bond)
                  .success);
  // judge to get back to ACTIVE
  psc::PscTx judge;
  judge.from = merchant_a_psc;
  judge.to = judger;
  judge.method = "judge";
  judge.args = encode_escrow_id_arg(1);
  ASSERT_TRUE(psc.execute_now(judge, 10 + cfg.evidence_window_ms + 1).success);
  const auto r = call_with_binding("reservePayment", merchant_a_psc, b,
                                   10 + cfg.evidence_window_ms + 2);
  EXPECT_EQ(r.revert_reason, "binding-already-disputed");
}

TEST(ReservedModeE2E, FullFlowReservesAndReleases) {
  DeploymentConfig cfg;
  cfg.seed = 99;
  cfg.reserve_payments = true;
  cfg.settle_confirmations = 3;
  Deployment dep(cfg);

  const auto r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted) << r.reject_reason;

  // The reservation lands with the next PSC block.
  dep.run_for(60 * 1000);
  auto v = dep.escrow_view();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->reserved, cfg.compensation);

  // After settlement the merchant releases it.
  dep.run_for(3 * 60 * 60 * 1000);
  v = dep.escrow_view();
  EXPECT_EQ(v->reserved, 0u);
  EXPECT_EQ(dep.summarize().payments_settled, 1u);
  EXPECT_EQ(dep.receipts_for("reservePayment").size(), 1u);
  EXPECT_EQ(dep.receipts_for("releaseReservation").size(), 1u);
}

}  // namespace
}  // namespace btcfast::core
