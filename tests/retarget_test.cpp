// Difficulty-retargeting tests: the consensus rule adjusting the PoW
// target every retarget_interval blocks by the period's actual timespan.
#include <gtest/gtest.h>

#include "btc/chain.h"
#include "btc/pow.h"
#include "btcsim/scenario.h"

namespace btcfast::btc {
namespace {

/// Mines a block with inter-block spacing `dt` seconds on `chain`'s tip.
Block mine_spaced(Chain& chain, std::uint32_t dt, const ScriptPubKey& dest) {
  Block b;
  b.header.prev_hash = chain.tip_hash();
  b.header.time = chain.tip_header().time + dt;
  b.header.bits = chain.next_work_required(b.header.prev_hash);
  Transaction cb;
  TxIn in;
  in.prevout.index = 0xffffffff;
  in.sequence = chain.height() + 1;
  cb.inputs.push_back(in);
  cb.outputs.push_back(TxOut{chain.params().subsidy, dest});
  b.txs.push_back(cb);
  EXPECT_TRUE(mine_block(b, chain.params()));
  return b;
}

TEST(Retarget, StaticDifficultyWhenDisabled) {
  Chain chain(ChainParams::regtest());
  EXPECT_EQ(chain.params().retarget_interval, 0u);
  const auto dest = sim::Party::make(1).script;
  for (int i = 0; i < 5; ++i) {
    Block b = mine_spaced(chain, 600, dest);
    EXPECT_EQ(b.header.bits, chain.params().genesis_bits);
    ASSERT_EQ(chain.submit_block(b), SubmitResult::kActiveTip);
  }
}

TEST(Retarget, FastBlocksHardenDifficulty) {
  const std::uint32_t interval = 8;
  Chain chain(ChainParams::regtest_retarget(interval));
  const auto dest = sim::Party::make(1).script;
  const auto start_target = *bits_to_target(chain.params().genesis_bits);

  // Blocks at 2x speed (300 s instead of 600 s) until past the boundary.
  while (chain.height() < interval) {
    Block b = mine_spaced(chain, 300, dest);
    ASSERT_EQ(chain.submit_block(b), SubmitResult::kActiveTip);
  }
  const auto new_target = *bits_to_target(chain.tip_header().bits);
  EXPECT_LT(new_target, start_target);
  // Roughly halved: actual timespan was (interval-1)*300 of interval*600.
  const auto expected = (start_target * crypto::U256((interval - 1) * 300)) /
                        crypto::U256(interval * 600);
  EXPECT_EQ(target_to_bits(new_target), target_to_bits(expected));
}

TEST(Retarget, SlowBlocksEaseDifficultyUpToLimit) {
  const std::uint32_t interval = 4;
  Chain chain(ChainParams::regtest_retarget(interval));
  const auto dest = sim::Party::make(1).script;
  const auto start_target = *bits_to_target(chain.params().genesis_bits);

  while (chain.height() < interval) {
    Block b = mine_spaced(chain, 2400, dest);  // 4x slow
    ASSERT_EQ(chain.submit_block(b), SubmitResult::kActiveTip);
  }
  const auto eased = *bits_to_target(chain.tip_header().bits);
  EXPECT_GT(eased, start_target);
  EXPECT_LE(eased, chain.params().pow_limit);
}

TEST(Retarget, ClampBoundsAdjustment) {
  const std::uint32_t interval = 4;
  Chain chain(ChainParams::regtest_retarget(interval));
  const auto dest = sim::Party::make(1).script;
  const auto start_target = *bits_to_target(chain.params().genesis_bits);

  // Absurdly fast blocks (1 s apart): adjustment clamps at 4x harder.
  while (chain.height() < interval) {
    Block b = mine_spaced(chain, 1, dest);
    ASSERT_EQ(chain.submit_block(b), SubmitResult::kActiveTip);
  }
  const auto clamped = *bits_to_target(chain.tip_header().bits);
  // No harder than start/4 (up to compact-bits rounding).
  EXPECT_GE(clamped, (start_target >> 2) - (start_target >> 10));
}

TEST(Retarget, WrongBitsRejected) {
  const std::uint32_t interval = 4;
  Chain chain(ChainParams::regtest_retarget(interval));
  const auto dest = sim::Party::make(1).script;
  while (chain.height() < interval - 1) {
    Block b = mine_spaced(chain, 300, dest);
    ASSERT_EQ(chain.submit_block(b), SubmitResult::kActiveTip);
  }
  // The boundary block must use the retargeted bits; claiming the old
  // (easier) target is a consensus violation.
  Block bad;
  bad.header.prev_hash = chain.tip_hash();
  bad.header.time = chain.tip_header().time + 300;
  bad.header.bits = chain.params().genesis_bits;  // stale difficulty
  Transaction cb;
  TxIn in;
  in.prevout.index = 0xffffffff;
  in.sequence = 999;
  cb.inputs.push_back(in);
  cb.outputs.push_back(TxOut{chain.params().subsidy, dest});
  bad.txs.push_back(cb);
  ASSERT_TRUE(mine_block(bad, chain.params()));
  std::string why;
  EXPECT_EQ(chain.submit_block(bad, &why), SubmitResult::kInvalid);
  EXPECT_NE(why.find("bad-diffbits"), std::string::npos);
}

TEST(Retarget, HigherDifficultyMeansMoreChainWork) {
  // After a hardening retarget, each block contributes more work — so a
  // shorter hard chain can outweigh a longer easy one (the property the
  // PayJudger weight comparison relies on).
  const std::uint32_t interval = 4;
  Chain chain(ChainParams::regtest_retarget(interval));
  const auto dest = sim::Party::make(1).script;
  while (chain.height() < interval) {
    Block b = mine_spaced(chain, 150, dest);  // 4x fast -> 4x harder
    ASSERT_EQ(chain.submit_block(b), SubmitResult::kActiveTip);
  }
  const auto easy_work = header_work(chain.params().genesis_bits);
  const auto hard_work = header_work(chain.tip_header().bits);
  EXPECT_GE(hard_work, easy_work + easy_work);  // at least 2x per block
}

}  // namespace
}  // namespace btcfast::btc
