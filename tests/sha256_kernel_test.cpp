// Hashing-engine tests: NIST SHA-256 vectors, the specialized
// sha256d_64/sha256d_80/midstate kernels pinned byte-identical to the
// streaming implementation over random inputs, scalar-vs-dispatched
// kernel equivalence, the finalize() auto-reset contract, and the
// thread-pooled Merkle root's thread-count independence.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/hex.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace {

using namespace btcfast;
using namespace btcfast::crypto;

std::string digest_hex(const Sha256Digest& d) { return to_hex({d.data(), d.size()}); }

/// Streaming double-hash reference: never touches the specialized kernels'
/// padding math, so a kernel bug can't cancel out.
Sha256Digest sha256d_streaming(ByteSpan data) {
  Sha256 h;
  h.update(data);
  const auto first = h.finalize();
  h.update({first.data(), first.size()});
  return h.finalize();
}

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

TEST(Sha256Nist, ShortVectors) {
  // FIPS 180-4 / NIST CAVP examples.
  EXPECT_EQ(digest_hex(sha256(as_bytes(std::string("")))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(digest_hex(sha256(as_bytes(std::string("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(digest_hex(sha256(as_bytes(
                std::string("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(digest_hex(sha256(as_bytes(std::string(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")))),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Nist, MillionA) {
  const std::string chunk(1000, 'a');
  Sha256 h;
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Contract, FinalizeAutoResets) {
  Sha256 h;
  h.update(as_bytes(std::string("abc")));
  const auto first = h.finalize();
  EXPECT_EQ(digest_hex(first),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // After finalize() the hasher is in the fresh state: a second finalize
  // yields the empty-message digest, and reuse needs no explicit reset.
  EXPECT_EQ(digest_hex(h.finalize()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  h.update(as_bytes(std::string("abc")));
  EXPECT_EQ(h.finalize(), first);
}

TEST(Sha256Contract, SplitUpdatesMatchOneShot) {
  Rng rng(0x5eed);
  for (int iter = 0; iter < 50; ++iter) {
    const Bytes data = random_bytes(rng, 1 + static_cast<std::size_t>(rng.next() % 300));
    const auto want = sha256(data);
    Sha256 h;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.next() % 97, data.size() - off);
      h.update({data.data() + off, take});
      off += take;
    }
    EXPECT_EQ(h.finalize(), want);
  }
}

TEST(Sha256Kernels, Sha256d64MatchesStreaming) {
  Rng rng(64);
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes data = random_bytes(rng, 64);
    EXPECT_EQ(sha256d_64(data.data()), sha256d_streaming(data));
    EXPECT_EQ(sha256d(data), sha256d_streaming(data));  // generic entry dispatches too
  }
}

TEST(Sha256Kernels, Sha256d80MatchesStreaming) {
  Rng rng(80);
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes data = random_bytes(rng, 80);
    EXPECT_EQ(sha256d_80(data.data()), sha256d_streaming(data));
    EXPECT_EQ(sha256d(data), sha256d_streaming(data));
  }
}

TEST(Sha256Kernels, MidstateMatchesStreaming) {
  Rng rng(16);
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes data = random_bytes(rng, 80);
    const auto midstate = Sha256Midstate::of_first_block(data.data());
    EXPECT_EQ(midstate.sha256d_tail16(data.data() + 64), sha256d_streaming(data));
  }
}

TEST(Sha256Kernels, MidstateReusableAcrossTails) {
  // One midstate, many tails — the mining access pattern.
  Rng rng(17);
  const Bytes head = random_bytes(rng, 80);
  const auto midstate = Sha256Midstate::of_first_block(head.data());
  for (int iter = 0; iter < 100; ++iter) {
    Bytes msg = head;
    for (int i = 64; i < 80; ++i) msg[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(midstate.sha256d_tail16(msg.data() + 64), sha256d_streaming(msg));
  }
}

TEST(Sha256Dispatch, ScalarAndAcceleratedAgree) {
  // On machines without SHA-NI both sides run scalar and the test is
  // vacuous but still green; on SHA-NI machines this pins the intrinsic
  // kernel to the portable one, bit for bit.
  Rng rng(0xd15);
  const bool prev = sha256_force_scalar(true);
  ASSERT_STREQ(sha256_impl_name(), "scalar");
  std::vector<std::pair<Bytes, Sha256Digest>> scalar_results;
  for (int iter = 0; iter < 200; ++iter) {
    const Bytes data = random_bytes(rng, 1 + static_cast<std::size_t>(rng.next() % 257));
    scalar_results.emplace_back(data, sha256(data));
  }
  const Bytes hdr = random_bytes(rng, 80);
  const auto scalar_d64 = sha256d_64(hdr.data());
  const auto scalar_d80 = sha256d_80(hdr.data());
  const auto scalar_mid = Sha256Midstate::of_first_block(hdr.data());
  const auto scalar_mid_digest = scalar_mid.sha256d_tail16(hdr.data() + 64);

  sha256_force_scalar(false);  // restore runtime dispatch (no-op under sanitizers)
  for (const auto& [data, want] : scalar_results) EXPECT_EQ(sha256(data), want);
  EXPECT_EQ(sha256d_64(hdr.data()), scalar_d64);
  EXPECT_EQ(sha256d_80(hdr.data()), scalar_d80);
  EXPECT_EQ(Sha256Midstate::of_first_block(hdr.data()).sha256d_tail16(hdr.data() + 64),
            scalar_mid_digest);
  (void)sha256_force_scalar(prev);
}

TEST(MerkleParallel, RootIndependentOfThreadCount) {
  Rng rng(0xa11);
  // Sizes straddling kMerkleParallelPairs, including odd counts.
  for (const std::size_t n : {1u, 2u, 3u, 255u, 511u, 512u, 513u, 1024u, 2000u}) {
    std::vector<Hash32> leaves(n);
    for (auto& leaf : leaves) {
      const Bytes b = random_bytes(rng, 32);
      std::memcpy(leaf.data(), b.data(), 32);
    }
    common::ThreadPool::configure_global(0);
    const Hash32 serial = merkle_root(leaves);
    const auto serial_branch = merkle_branch(leaves, static_cast<std::uint32_t>(n / 2));
    common::ThreadPool::configure_global(4);
    EXPECT_EQ(merkle_root(leaves), serial) << "n=" << n;
    EXPECT_EQ(merkle_branch(leaves, static_cast<std::uint32_t>(n / 2)), serial_branch);
    EXPECT_TRUE(merkle_verify(leaves[n / 2], serial_branch, serial));
  }
  common::ThreadPool::configure_global(0);
}

}  // namespace
