// Signature-verification cache: hit/miss behaviour, bounded eviction,
// and — the safety property — no false positives for mutated triples.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"
#include "crypto/sigcache.h"

namespace btcfast::crypto {
namespace {

struct Triple {
  Sha256Digest digest{};
  ByteArray<33> pubkey{};
  ByteArray<64> sig{};
};

Triple make_valid_triple(std::uint64_t seed) {
  Rng rng(seed);
  const auto raw = rng.bytes<32>();
  U256 scalar = U256::from_be_bytes({raw.data(), raw.size()});
  if (scalar.is_zero() || scalar >= secp::order_n()) scalar = U256(seed * 2 + 1);
  const auto key = *PrivateKey::from_scalar(scalar);
  const auto msg = rng.bytes<40>();
  Triple t;
  t.digest = sha256({msg.data(), msg.size()});
  t.pubkey = PublicKey::derive(key).serialize();
  t.sig = ecdsa_sign(key, t.digest).serialize();
  return t;
}

bool check(SigCache& cache, const Triple& t) {
  return ecdsa_verify_cached(&cache, {t.pubkey.data(), t.pubkey.size()}, t.digest,
                             {t.sig.data(), t.sig.size()});
}

TEST(SigCache, MissThenHit) {
  SigCache cache;
  const auto t = make_valid_triple(1);
  EXPECT_TRUE(check(cache, t));  // miss: full verification, then insert
  EXPECT_TRUE(check(cache, t));  // hit
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SigCache, InvalidTripleNeverInserted) {
  SigCache cache;
  auto t = make_valid_triple(2);
  t.sig[10] ^= 0x01;  // corrupt the signature
  EXPECT_FALSE(check(cache, t));
  EXPECT_FALSE(check(cache, t));  // still false — nothing was cached
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(SigCache, MutatedTripleIsNotAHit) {
  SigCache cache;
  const auto t = make_valid_triple(3);
  ASSERT_TRUE(check(cache, t));

  // Any single-byte mutation of sig, pubkey, or digest must produce a
  // different cache key and therefore a miss -> fresh (failing) verify.
  auto sig_mut = t;
  sig_mut.sig[5] ^= 0x80;
  EXPECT_FALSE(check(cache, sig_mut));

  auto digest_mut = t;
  digest_mut.digest[0] ^= 0x01;
  EXPECT_FALSE(check(cache, digest_mut));

  auto pub_mut = t;
  pub_mut.pubkey[1] ^= 0x40;
  EXPECT_FALSE(check(cache, pub_mut));
}

TEST(SigCache, KeyDependsOnEveryComponent) {
  const auto t = make_valid_triple(4);
  const auto base = SigCache::make_key(t.digest, {t.pubkey.data(), t.pubkey.size()},
                                       {t.sig.data(), t.sig.size()});
  auto d2 = t.digest;
  d2[31] ^= 1;
  EXPECT_NE(base, SigCache::make_key(d2, {t.pubkey.data(), t.pubkey.size()},
                                     {t.sig.data(), t.sig.size()}));
  auto p2 = t.pubkey;
  p2[32] ^= 1;
  EXPECT_NE(base, SigCache::make_key(t.digest, {p2.data(), p2.size()},
                                     {t.sig.data(), t.sig.size()}));
  auto s2 = t.sig;
  s2[63] ^= 1;
  EXPECT_NE(base,
            SigCache::make_key(t.digest, {t.pubkey.data(), t.pubkey.size()}, {s2.data(), s2.size()}));
}

TEST(SigCache, BoundedEviction) {
  // Tiny cache (rounded up to one entry per shard = 16): inserting many
  // keys must evict, never grow past the bound.
  SigCache cache(1);
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    SigCache::Key key = rng.bytes<32>();
    cache.insert(key);
    EXPECT_LE(cache.size(), cache.max_entries());
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.size(), cache.max_entries());
}

TEST(SigCache, EvictionKeepsRecentInsertFindable) {
  SigCache cache(16);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    SigCache::Key key = rng.bytes<32>();
    cache.insert(key);
    EXPECT_TRUE(cache.contains(key));  // the just-inserted key always resides
  }
}

TEST(SigCache, NullCacheDegradesToPlainVerify) {
  const auto t = make_valid_triple(5);
  EXPECT_TRUE(ecdsa_verify_cached(nullptr, {t.pubkey.data(), t.pubkey.size()}, t.digest,
                                  {t.sig.data(), t.sig.size()}));
  auto bad = t;
  bad.sig[0] ^= 1;
  EXPECT_FALSE(ecdsa_verify_cached(nullptr, {bad.pubkey.data(), bad.pubkey.size()}, bad.digest,
                                   {bad.sig.data(), bad.sig.size()}));
}

TEST(SigCache, ParsedKeyOverloadSharesEntries) {
  SigCache cache;
  const auto t = make_valid_triple(6);
  const auto pub = *PublicKey::parse({t.pubkey.data(), t.pubkey.size()});
  // Insert via the span overload, hit via the parsed-key overload.
  ASSERT_TRUE(check(cache, t));
  cache.reset_stats();
  EXPECT_TRUE(ecdsa_verify_cached(&cache, pub, t.digest, {t.sig.data(), t.sig.size()}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(SigCache, RejectsMalformedSizes) {
  SigCache cache;
  const auto t = make_valid_triple(7);
  EXPECT_FALSE(ecdsa_verify_cached(&cache, {t.pubkey.data(), 32}, t.digest,
                                   {t.sig.data(), t.sig.size()}));
  EXPECT_FALSE(
      ecdsa_verify_cached(&cache, {t.pubkey.data(), t.pubkey.size()}, t.digest, {t.sig.data(), 63}));
}

TEST(SigCache, ClearDropsEntriesButKeepsStats) {
  SigCache cache;
  const auto t = make_valid_triple(8);
  ASSERT_TRUE(check(cache, t));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_TRUE(check(cache, t));  // re-verifies and re-inserts
  EXPECT_EQ(cache.stats().insertions, 2u);
}

// --- PubkeyPrecompCache: two-touch build policy, warm-path soundness,
// bounded eviction, disable knob. ---

/// Distinct valid triples for ONE key (a repeat payer).
Triple make_triple_for_key(const PrivateKey& key, std::uint64_t msg_seed) {
  Rng rng(msg_seed);
  const auto msg = rng.bytes<40>();
  Triple t;
  t.digest = sha256({msg.data(), msg.size()});
  t.pubkey = PublicKey::derive(key).serialize();
  t.sig = ecdsa_sign(key, t.digest).serialize();
  return t;
}

bool check_pre(SigCache* cache, PubkeyPrecompCache& pre, const Triple& t) {
  return ecdsa_verify_cached(cache, {t.pubkey.data(), t.pubkey.size()}, t.digest,
                             {t.sig.data(), t.sig.size()}, &pre);
}

TEST(PubkeyPrecompCache, TwoTouchBuildThenWarmHits) {
  PubkeyPrecompCache pre;
  const auto key = *PrivateKey::from_scalar(U256(0x5151));
  const auto pk = PublicKey::derive(key).serialize();

  // First verified sighting: marker only, no tables yet.
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 1)));
  EXPECT_EQ(pre.lookup(pk), nullptr);
  EXPECT_EQ(pre.stats().insertions, 0u);

  // Second: tables built and published.
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 2)));
  EXPECT_NE(pre.lookup(pk), nullptr);
  EXPECT_EQ(pre.stats().insertions, 1u);

  // Third: served warm, and the warm kernel agrees with the cold one.
  pre.reset_stats();
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 3)));
  EXPECT_EQ(pre.stats().hits, 1u);
  EXPECT_EQ(pre.stats().misses, 0u);
}

TEST(PubkeyPrecompCache, WarmPathStillRejectsInvalidSignatures) {
  PubkeyPrecompCache pre;
  const auto key = *PrivateKey::from_scalar(U256(0x7272));
  // Warm the key, then corrupt a fresh signature: the wide-table kernel
  // must reject exactly like the cold path.
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 10)));
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 11)));
  auto bad = make_triple_for_key(key, 12);
  bad.sig[9] ^= 0x04;
  EXPECT_FALSE(check_pre(nullptr, pre, bad));
  auto bad_digest = make_triple_for_key(key, 13);
  bad_digest.digest[3] ^= 0x40;
  EXPECT_FALSE(check_pre(nullptr, pre, bad_digest));
}

TEST(PubkeyPrecompCache, InvalidVerifiesAreNeverNoted) {
  PubkeyPrecompCache pre;
  const auto key = *PrivateKey::from_scalar(U256(0x9393));
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto bad = make_triple_for_key(key, 20 + i);
    bad.sig[1] ^= 0x10;
    EXPECT_FALSE(check_pre(nullptr, pre, bad));
  }
  EXPECT_EQ(pre.size(), 0u);  // not even a marker
}

TEST(PubkeyPrecompCache, BoundedEviction) {
  PubkeyPrecompCache pre(8);  // tiny: forces displacement
  for (std::uint64_t k = 1; k <= 64; ++k) {
    const auto key = *PrivateKey::from_scalar(U256(k * 7 + 1));
    // Two touches so some keys get real tables, not just markers.
    EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, k * 2)));
    EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, k * 2 + 1)));
    EXPECT_LE(pre.size(), 16u);  // per-shard cap rounds 8 up across 16 shards
  }
  EXPECT_GT(pre.stats().evictions, 0u);
}

TEST(PubkeyPrecompCache, ZeroCapacityDisables) {
  PubkeyPrecompCache pre(0);
  const auto key = *PrivateKey::from_scalar(U256(0xabcd));
  const auto pk = PublicKey::derive(key).serialize();
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 30)));
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 31)));
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 32)));
  EXPECT_EQ(pre.lookup(pk), nullptr);
  EXPECT_EQ(pre.size(), 0u);
  const auto st = pre.stats();
  EXPECT_EQ(st.hits + st.misses + st.insertions + st.evictions, 0u);

  // Re-enabling via set_capacity brings the machinery back.
  pre.set_capacity(64);
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 33)));
  EXPECT_TRUE(check_pre(nullptr, pre, make_triple_for_key(key, 34)));
  EXPECT_NE(pre.lookup(pk), nullptr);
}

TEST(PubkeyPrecompCache, SigCacheAndPrecompCompose) {
  SigCache cache;
  PubkeyPrecompCache pre;
  const auto key = *PrivateKey::from_scalar(U256(0x4242));
  const auto t1 = make_triple_for_key(key, 40);
  const auto t2 = make_triple_for_key(key, 41);
  // Two distinct messages: both verify cold-ish, second touch builds.
  EXPECT_TRUE(check_pre(&cache, pre, t1));
  EXPECT_TRUE(check_pre(&cache, pre, t2));
  // Replay of t1 is a SigCache hit — the precomp cache is not consulted.
  pre.reset_stats();
  EXPECT_TRUE(check_pre(&cache, pre, t1));
  EXPECT_EQ(pre.stats().hits + pre.stats().misses, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // A third fresh message rides the warm precomp path and lands in the
  // SigCache too.
  const auto t3 = make_triple_for_key(key, 42);
  EXPECT_TRUE(check_pre(&cache, pre, t3));
  EXPECT_EQ(pre.stats().hits, 1u);
  EXPECT_TRUE(check_pre(&cache, pre, t3));  // now a SigCache hit
}

}  // namespace
}  // namespace btcfast::crypto
