// Signature-verification cache: hit/miss behaviour, bounded eviction,
// and — the safety property — no false positives for mutated triples.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"
#include "crypto/sigcache.h"

namespace btcfast::crypto {
namespace {

struct Triple {
  Sha256Digest digest{};
  ByteArray<33> pubkey{};
  ByteArray<64> sig{};
};

Triple make_valid_triple(std::uint64_t seed) {
  Rng rng(seed);
  const auto raw = rng.bytes<32>();
  U256 scalar = U256::from_be_bytes({raw.data(), raw.size()});
  if (scalar.is_zero() || scalar >= secp::order_n()) scalar = U256(seed * 2 + 1);
  const auto key = *PrivateKey::from_scalar(scalar);
  const auto msg = rng.bytes<40>();
  Triple t;
  t.digest = sha256({msg.data(), msg.size()});
  t.pubkey = PublicKey::derive(key).serialize();
  t.sig = ecdsa_sign(key, t.digest).serialize();
  return t;
}

bool check(SigCache& cache, const Triple& t) {
  return ecdsa_verify_cached(&cache, {t.pubkey.data(), t.pubkey.size()}, t.digest,
                             {t.sig.data(), t.sig.size()});
}

TEST(SigCache, MissThenHit) {
  SigCache cache;
  const auto t = make_valid_triple(1);
  EXPECT_TRUE(check(cache, t));  // miss: full verification, then insert
  EXPECT_TRUE(check(cache, t));  // hit
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SigCache, InvalidTripleNeverInserted) {
  SigCache cache;
  auto t = make_valid_triple(2);
  t.sig[10] ^= 0x01;  // corrupt the signature
  EXPECT_FALSE(check(cache, t));
  EXPECT_FALSE(check(cache, t));  // still false — nothing was cached
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(SigCache, MutatedTripleIsNotAHit) {
  SigCache cache;
  const auto t = make_valid_triple(3);
  ASSERT_TRUE(check(cache, t));

  // Any single-byte mutation of sig, pubkey, or digest must produce a
  // different cache key and therefore a miss -> fresh (failing) verify.
  auto sig_mut = t;
  sig_mut.sig[5] ^= 0x80;
  EXPECT_FALSE(check(cache, sig_mut));

  auto digest_mut = t;
  digest_mut.digest[0] ^= 0x01;
  EXPECT_FALSE(check(cache, digest_mut));

  auto pub_mut = t;
  pub_mut.pubkey[1] ^= 0x40;
  EXPECT_FALSE(check(cache, pub_mut));
}

TEST(SigCache, KeyDependsOnEveryComponent) {
  const auto t = make_valid_triple(4);
  const auto base = SigCache::make_key(t.digest, {t.pubkey.data(), t.pubkey.size()},
                                       {t.sig.data(), t.sig.size()});
  auto d2 = t.digest;
  d2[31] ^= 1;
  EXPECT_NE(base, SigCache::make_key(d2, {t.pubkey.data(), t.pubkey.size()},
                                     {t.sig.data(), t.sig.size()}));
  auto p2 = t.pubkey;
  p2[32] ^= 1;
  EXPECT_NE(base, SigCache::make_key(t.digest, {p2.data(), p2.size()},
                                     {t.sig.data(), t.sig.size()}));
  auto s2 = t.sig;
  s2[63] ^= 1;
  EXPECT_NE(base,
            SigCache::make_key(t.digest, {t.pubkey.data(), t.pubkey.size()}, {s2.data(), s2.size()}));
}

TEST(SigCache, BoundedEviction) {
  // Tiny cache (rounded up to one entry per shard = 16): inserting many
  // keys must evict, never grow past the bound.
  SigCache cache(1);
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    SigCache::Key key = rng.bytes<32>();
    cache.insert(key);
    EXPECT_LE(cache.size(), cache.max_entries());
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.size(), cache.max_entries());
}

TEST(SigCache, EvictionKeepsRecentInsertFindable) {
  SigCache cache(16);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    SigCache::Key key = rng.bytes<32>();
    cache.insert(key);
    EXPECT_TRUE(cache.contains(key));  // the just-inserted key always resides
  }
}

TEST(SigCache, NullCacheDegradesToPlainVerify) {
  const auto t = make_valid_triple(5);
  EXPECT_TRUE(ecdsa_verify_cached(nullptr, {t.pubkey.data(), t.pubkey.size()}, t.digest,
                                  {t.sig.data(), t.sig.size()}));
  auto bad = t;
  bad.sig[0] ^= 1;
  EXPECT_FALSE(ecdsa_verify_cached(nullptr, {bad.pubkey.data(), bad.pubkey.size()}, bad.digest,
                                   {bad.sig.data(), bad.sig.size()}));
}

TEST(SigCache, ParsedKeyOverloadSharesEntries) {
  SigCache cache;
  const auto t = make_valid_triple(6);
  const auto pub = *PublicKey::parse({t.pubkey.data(), t.pubkey.size()});
  // Insert via the span overload, hit via the parsed-key overload.
  ASSERT_TRUE(check(cache, t));
  cache.reset_stats();
  EXPECT_TRUE(ecdsa_verify_cached(&cache, pub, t.digest, {t.sig.data(), t.sig.size()}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(SigCache, RejectsMalformedSizes) {
  SigCache cache;
  const auto t = make_valid_triple(7);
  EXPECT_FALSE(ecdsa_verify_cached(&cache, {t.pubkey.data(), 32}, t.digest,
                                   {t.sig.data(), t.sig.size()}));
  EXPECT_FALSE(
      ecdsa_verify_cached(&cache, {t.pubkey.data(), t.pubkey.size()}, t.digest, {t.sig.data(), 63}));
}

TEST(SigCache, ClearDropsEntriesButKeepsStats) {
  SigCache cache;
  const auto t = make_valid_triple(8);
  ASSERT_TRUE(check(cache, t));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_TRUE(check(cache, t));  // re-verifies and re-inserts
  EXPECT_EQ(cache.stats().insertions, 2u);
}

}  // namespace
}  // namespace btcfast::crypto
