// Durable store tests: CRC32C vectors, record codecs, WAL framing and
// the two corruption classes (torn tail tolerated, mid-log fails
// closed), crash-consistency via the FaultFile shim (recovery after
// every prefix of a commit), snapshot atomicity and total decoding, and
// DurableStore end-to-end — replay, compaction/pruning, byte-exact
// recovery at every crash point, and the gateway's accept/flush
// durability boundary against a live deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "btcfast/customer.h"
#include "btcfast/orchestrator.h"
#include "common/thread_pool.h"
#include "gateway/pipeline.h"
#include "gateway/wire.h"
#include "store/crc32c.h"
#include "store/fault_file.h"
#include "store/recovery.h"

namespace btcfast::store {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("btcfast-store-test-" + tag + "-" +
                      std::to_string(static_cast<unsigned long>(::getpid())));
  fs::remove_all(p);
  return p.string();
}

// ------------------------------------------------------------------ crc

TEST(Crc32c, KnownVector) {
  const char* msg = "123456789";
  EXPECT_EQ(crc32c({reinterpret_cast<const std::uint8_t*>(msg), 9}), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c(ByteSpan{}), 0u); }

TEST(Crc32c, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i * 7 + 3));
  const auto whole = crc32c(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{8}, std::size_t{150},
                            std::size_t{299}, data.size()}) {
    const auto part = crc32c({data.data() + split, data.size() - split},
                             crc32c({data.data(), split}));
    EXPECT_EQ(part, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsEverySingleByteFlip) {
  Bytes data(64, 0xa5);
  const auto base = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    Bytes mutated = data;
    mutated[i] ^= 0x01;
    EXPECT_NE(crc32c(mutated), base) << "flip at " << i;
  }
}

// -------------------------------------------------------------- records

StoreRecord reserve_rec(ReservationId rid, EscrowId eid, std::uint64_t amount) {
  StoreRecord r;
  r.kind = RecordKind::kReserve;
  r.reservation_id = rid;
  r.escrow_id = eid;
  r.amount = amount;
  r.expires_at_ms = 10'000 + rid;
  r.txid[0] = static_cast<std::uint8_t>(rid);
  r.txid[31] = static_cast<std::uint8_t>(eid);
  return r;
}

StoreRecord release_rec(ReservationId rid, ReleaseCause cause) {
  StoreRecord r;
  r.kind = RecordKind::kRelease;
  r.reservation_id = rid;
  r.cause = cause;
  return r;
}

StoreRecord accept_rec(ReservationId rid) {
  StoreRecord r;
  r.kind = RecordKind::kAcceptCommit;
  r.reservation_id = rid;
  r.accepted_at_ms = 77'000;
  r.package = {0xde, 0xad, 0xbe, 0xef};
  r.invoice = {0x01, 0x02};
  return r;
}

StoreRecord dispute_open_rec(EscrowId eid, std::uint8_t txid_tag) {
  StoreRecord r;
  r.kind = RecordKind::kDisputeOpen;
  r.escrow_id = eid;
  r.amount = 500;
  r.expires_at_ms = 99'000;
  r.txid[5] = txid_tag;
  return r;
}

StoreRecord dispute_resolve_rec(EscrowId eid, std::uint8_t txid_tag) {
  StoreRecord r;
  r.kind = RecordKind::kDisputeResolve;
  r.escrow_id = eid;
  r.txid[5] = txid_tag;
  return r;
}

StoreRecord epoch_rec(std::uint64_t epoch) {
  StoreRecord r;
  r.kind = RecordKind::kEpochChange;
  r.epoch = epoch;
  return r;
}

StoreRecord header_rec(std::uint8_t tag) {
  StoreRecord r;
  r.kind = RecordKind::kHeaderAccept;
  for (std::size_t i = 0; i < r.header.size(); ++i) {
    r.header[i] = static_cast<std::uint8_t>(tag + i);
  }
  return r;
}

TEST(StoreRecords, EveryKindRoundTrips) {
  const StoreRecord samples[] = {
      reserve_rec(0x1203, 9, 12345), release_rec(0x1203, ReleaseCause::kExpired),
      accept_rec(0x1203), dispute_open_rec(9, 0x42), dispute_resolve_rec(9, 0x42),
      epoch_rec(3), header_rec(0x50)};
  for (const auto& rec : samples) {
    const auto back = StoreRecord::deserialize(rec.serialize());
    ASSERT_TRUE(back.has_value()) << "kind " << static_cast<int>(rec.kind);
    EXPECT_EQ(*back, rec) << "kind " << static_cast<int>(rec.kind);
  }
}

TEST(StoreRecords, RejectsTruncationAndTrailingBytes) {
  for (const auto& rec : {reserve_rec(1, 2, 3), accept_rec(7), dispute_open_rec(3, 1)}) {
    const Bytes full = rec.serialize();
    for (std::size_t len = 0; len < full.size(); ++len) {
      EXPECT_FALSE(StoreRecord::deserialize({full.data(), len}).has_value())
          << "kind " << static_cast<int>(rec.kind) << " prefix " << len;
    }
    Bytes extra = full;
    extra.push_back(0x00);
    EXPECT_FALSE(StoreRecord::deserialize(extra).has_value());
  }
}

TEST(StoreRecords, RejectsBadEnums) {
  Bytes bad_kind = reserve_rec(1, 2, 3).serialize();
  bad_kind[0] = 0x77;
  EXPECT_FALSE(StoreRecord::deserialize(bad_kind).has_value());

  Bytes bad_cause = release_rec(1, ReleaseCause::kResolved).serialize();
  bad_cause.back() = 0x09;  // cause is the final byte
  EXPECT_FALSE(StoreRecord::deserialize(bad_cause).has_value());
}

// ------------------------------------------------------------------ wal

/// A Wal writing into an owned-but-observable FaultFile.
struct MemWal {
  explicit MemWal(WalOptions opts = {}, std::uint64_t next_seq = 1) {
    auto f = std::make_unique<FaultFile>();
    file = f.get();
    wal = std::make_unique<Wal>(std::move(f), opts, next_seq);
  }
  FaultFile* file = nullptr;
  std::unique_ptr<Wal> wal;
};

Bytes payload_n(std::uint8_t n, std::size_t len = 24) {
  Bytes p(len, 0);
  for (std::size_t i = 0; i < len; ++i) p[i] = static_cast<std::uint8_t>(n + i);
  return p;
}

TEST(WalFormat, AppendCommitScanRoundTrip) {
  MemWal w;
  for (std::uint8_t i = 0; i < 5; ++i) EXPECT_EQ(w.wal->append(payload_n(i)), i + 1u);
  ASSERT_TRUE(w.wal->commit());
  const auto scan = scan_wal(w.file->written(), 1);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_FALSE(scan.truncated_tail);
  ASSERT_EQ(scan.records.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(scan.records[i].seq, i + 1);
    EXPECT_EQ(scan.records[i].payload, payload_n(static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(scan.valid_bytes, w.file->written().size());
}

TEST(WalFormat, FsyncPolicyNeverChangesBytes) {
  // Durability policy is about when data becomes stable, never about what
  // is written: all three policies must produce identical files.
  Bytes images[3];
  const FsyncPolicy policies[] = {FsyncPolicy::kAlways, FsyncPolicy::kBatch, FsyncPolicy::kNone};
  for (int p = 0; p < 3; ++p) {
    WalOptions opts;
    opts.policy = policies[p];
    opts.batch_records = 2;
    MemWal w(opts);
    for (std::uint8_t i = 0; i < 7; ++i) {
      (void)w.wal->append(payload_n(i));
      ASSERT_TRUE(w.wal->commit());
    }
    images[p] = w.file->written();
  }
  EXPECT_EQ(images[0], images[1]);
  EXPECT_EQ(images[0], images[2]);
}

TEST(WalFormat, SyncCountsFollowPolicy) {
  WalOptions always;
  always.policy = FsyncPolicy::kAlways;
  MemWal a(always);
  for (std::uint8_t i = 0; i < 4; ++i) {
    (void)a.wal->append(payload_n(i));
    ASSERT_TRUE(a.wal->commit());
  }
  EXPECT_EQ(a.wal->syncs(), 4u);

  WalOptions batch;
  batch.policy = FsyncPolicy::kBatch;
  batch.batch_records = 3;
  MemWal b(batch);
  for (std::uint8_t i = 0; i < 7; ++i) {
    (void)b.wal->append(payload_n(i));
    ASSERT_TRUE(b.wal->commit());
  }
  EXPECT_EQ(b.wal->syncs(), 2u);  // after records 3 and 6

  WalOptions none;
  none.policy = FsyncPolicy::kNone;
  MemWal c(none);
  for (std::uint8_t i = 0; i < 4; ++i) {
    (void)c.wal->append(payload_n(i));
    ASSERT_TRUE(c.wal->commit());
  }
  EXPECT_EQ(c.wal->syncs(), 0u);
  ASSERT_TRUE(c.wal->sync());  // explicit sync forces it even under kNone
  EXPECT_EQ(c.wal->syncs(), 1u);
}

TEST(WalFormat, TornTailAtEveryCutOffset) {
  // Build a clean 3-record image, then scan every byte prefix: the reader
  // must return exactly the records whose bytes are fully present, flag
  // the torn tail otherwise, and never error — a prefix is always a
  // plausible crash artifact.
  Bytes full;
  append_wal_header(full);
  std::vector<std::size_t> boundaries{full.size()};
  for (std::uint8_t i = 0; i < 3; ++i) {
    append_wal_record(full, i + 1, payload_n(i));
    boundaries.push_back(full.size());
  }
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const auto scan = scan_wal({full.data(), cut}, 1);
    ASSERT_TRUE(scan.ok()) << "cut " << cut << ": " << scan.error;
    std::size_t expect_records = 0;
    for (std::size_t b = 1; b < boundaries.size(); ++b) {
      if (boundaries[b] <= cut) expect_records = b;
    }
    EXPECT_EQ(scan.records.size(), expect_records) << "cut " << cut;
    const bool at_boundary =
        cut == 0 || std::find(boundaries.begin(), boundaries.end(), cut) != boundaries.end();
    EXPECT_EQ(scan.truncated_tail, !at_boundary) << "cut " << cut;
  }
}

TEST(WalFormat, SingleByteFlipsNeverFabricateRecords) {
  // Flip every byte of a 3-record image. The scan must never invent or
  // alter a record: whatever it returns is a byte-identical prefix of
  // the original stream, and a flip that leaves all three records
  // intact is impossible (every byte is covered by the header check,
  // the framing, or a record checksum).
  Bytes full;
  append_wal_header(full);
  std::vector<Bytes> payloads;
  for (std::uint8_t i = 0; i < 3; ++i) {
    payloads.push_back(payload_n(i));
    append_wal_record(full, i + 1, payloads.back());
  }
  for (std::size_t i = 0; i < full.size(); ++i) {
    Bytes mutated = full;
    mutated[i] ^= 0x10;
    const auto scan = scan_wal(mutated, 1);
    ASSERT_LT(scan.records.size(), 3u) << "flip at " << i << " went unnoticed";
    for (std::size_t r = 0; r < scan.records.size(); ++r) {
      EXPECT_EQ(scan.records[r].seq, r + 1) << "flip at " << i;
      EXPECT_EQ(scan.records[r].payload, payloads[r]) << "flip at " << i;
    }
  }
}

TEST(WalFormat, MidLogChecksumFlipFailsClosedFinalRecordFlipIsTorn) {
  Bytes full;
  append_wal_header(full);
  append_wal_record(full, 1, payload_n(1));
  const std::size_t second_at = full.size();
  append_wal_record(full, 2, payload_n(2));

  // Flip inside record 1's payload: data follows, so this is silent
  // corruption and the scan must refuse the whole log.
  Bytes mid = full;
  mid[kWalHeaderSize + kWalRecordHeaderSize + 3] ^= 0x01;
  const auto mid_scan = scan_wal(mid, 1);
  EXPECT_FALSE(mid_scan.ok());
  EXPECT_TRUE(mid_scan.records.empty());

  // The same flip in the FINAL record is indistinguishable from a torn
  // write: tolerated, record dropped.
  Bytes tail = full;
  tail[second_at + kWalRecordHeaderSize + 3] ^= 0x01;
  const auto tail_scan = scan_wal(tail, 1);
  ASSERT_TRUE(tail_scan.ok()) << tail_scan.error;
  EXPECT_TRUE(tail_scan.truncated_tail);
  ASSERT_EQ(tail_scan.records.size(), 1u);
  EXPECT_EQ(tail_scan.valid_bytes, second_at);
}

TEST(WalFormat, DuplicateAndSkippedSequencesFailClosed) {
  {
    Bytes dup;
    append_wal_header(dup);
    append_wal_record(dup, 1, payload_n(1));
    append_wal_record(dup, 1, payload_n(2));  // replayed write
    const auto scan = scan_wal(dup, 1);
    EXPECT_FALSE(scan.ok());
  }
  {
    Bytes gap;
    append_wal_header(gap);
    append_wal_record(gap, 1, payload_n(1));
    append_wal_record(gap, 3, payload_n(3));  // lost record 2
    const auto scan = scan_wal(gap, 1);
    EXPECT_FALSE(scan.ok());
  }
  {
    Bytes wrong_start;
    append_wal_header(wrong_start);
    append_wal_record(wrong_start, 5, payload_n(5));
    EXPECT_FALSE(scan_wal(wrong_start, 1).ok());
    // Accept-any-start mode tolerates it (snapshot recovery sets the pin).
    EXPECT_TRUE(scan_wal(wrong_start, 0).ok());
    EXPECT_TRUE(scan_wal(wrong_start, 5).ok());
  }
}

TEST(WalFormat, BadHeaderFailsClosed) {
  Bytes image;
  append_wal_header(image);
  append_wal_record(image, 1, payload_n(1));
  Bytes bad_magic = image;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(scan_wal(bad_magic, 1).ok());
  Bytes bad_version = image;
  bad_version[4] = 0x63;
  EXPECT_FALSE(scan_wal(bad_version, 1).ok());
}

// ----------------------------------------------------------- fault file

TEST(FaultFileShim, CrashAtEveryWriteOffsetRecoversPrefix) {
  // Reference run: 6 records, one commit each, no faults.
  MemWal ref;
  for (std::uint8_t i = 0; i < 6; ++i) {
    (void)ref.wal->append(payload_n(i));
    ASSERT_TRUE(ref.wal->commit());
  }
  const Bytes& clean = ref.file->written();

  // Crash runs: cut the file at every possible byte limit. Whatever
  // survived must scan to a prefix of the reference records — recovery
  // can lose the tail of a commit, never the middle. The cut is armed
  // before the Wal exists so even the file header can tear.
  for (std::uint64_t limit = 0; limit <= clean.size(); ++limit) {
    auto f = std::make_unique<FaultFile>();
    FaultFile* ff = f.get();
    ff->cut_writes_at(limit);
    Wal wal(std::move(f), WalOptions{}, 1);
    for (std::uint8_t i = 0; i < 6; ++i) {
      (void)wal.append(payload_n(i));
      (void)wal.commit();  // may fail once the cut hits; keep going
    }
    EXPECT_EQ(ff->written(),
              Bytes(clean.begin(), clean.begin() + static_cast<std::ptrdiff_t>(
                                                       std::min<std::uint64_t>(limit, clean.size()))))
        << "limit " << limit;
    const auto scan = scan_wal(ff->written(), 1);
    ASSERT_TRUE(scan.ok()) << "limit " << limit << ": " << scan.error;
    for (std::size_t r = 0; r < scan.records.size(); ++r) {
      EXPECT_EQ(scan.records[r].payload, payload_n(static_cast<std::uint8_t>(r)));
    }
  }
}

TEST(FaultFileShim, DroppedFsyncLosesOnlyTheUnsyncedSuffix) {
  WalOptions opts;
  opts.policy = FsyncPolicy::kAlways;
  MemWal w(opts);
  (void)w.wal->append(payload_n(0));
  ASSERT_TRUE(w.wal->commit());
  const std::uint64_t synced_after_first = w.file->synced_bytes();

  w.file->drop_syncs(true);  // power rail fails before the second fsync
  (void)w.wal->append(payload_n(1));
  ASSERT_TRUE(w.wal->commit());
  EXPECT_EQ(w.file->synced_bytes(), synced_after_first);

  // The pessimistic post-crash view holds exactly the first record.
  const auto scan = scan_wal(w.file->durable(), 1);
  ASSERT_TRUE(scan.ok()) << scan.error;
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].payload, payload_n(0));
}

// ------------------------------------------------------------- snapshot

StateImage sample_image() {
  StateImage img;
  img.last_seq = 42;
  img.released_count = 3;
  img.resolved_disputes = 1;
  for (std::uint8_t i = 0; i < 3; ++i) {
    ReservationImage r;
    r.id = 0x300u + i;
    r.escrow_id = 7;
    r.amount = 1000u + i;
    r.expires_at_ms = 50'000;
    r.txid[0] = i;
    img.reservations.push_back(r);
  }
  AcceptedImage a;
  a.reservation_id = 0x301;
  a.accepted_at_ms = 12'000;
  a.package = {9, 8, 7};
  a.invoice = {6, 5};
  img.accepted.push_back(a);
  DisputeImage d;
  d.escrow_id = 7;
  d.txid[1] = 0xcc;
  d.amount = 777;
  d.deadline_ms = 60'000;
  img.open_disputes.push_back(d);
  return img;
}

TEST(Snapshot, ImageSerializationIsCanonical) {
  StateImage img = sample_image();
  StateImage shuffled = img;
  std::swap(shuffled.reservations[0], shuffled.reservations[2]);
  EXPECT_EQ(img.serialize(), shuffled.serialize());
  const auto back = StateImage::deserialize(img.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->serialize(), img.serialize());
  EXPECT_EQ(back->last_seq, img.last_seq);
  EXPECT_EQ(back->reservations.size(), img.reservations.size());
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  const StateImage img = sample_image();
  const auto back = decode_snapshot(encode_snapshot(img));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->serialize(), img.serialize());
}

TEST(Snapshot, EveryByteFlipAndTruncationFailsClosed) {
  const Bytes enc = encode_snapshot(sample_image());
  for (std::size_t i = 0; i < enc.size(); ++i) {
    Bytes mutated = enc;
    mutated[i] ^= 0x04;
    EXPECT_FALSE(decode_snapshot(mutated).has_value()) << "flip at " << i;
  }
  for (std::size_t len = 0; len < enc.size(); ++len) {
    EXPECT_FALSE(decode_snapshot({enc.data(), len}).has_value()) << "prefix " << len;
  }
}

TEST(Snapshot, AtomicWriteLeavesNoTempFiles) {
  const std::string dir = scratch_dir("snap-atomic");
  fs::create_directories(dir);
  const std::string path = dir + "/snap-test.snap";
  ASSERT_TRUE(write_snapshot(path, sample_image()));
  const auto back = read_snapshot(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->serialize(), sample_image().serialize());
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(e.path().extension(), ".snap") << e.path();
  }
  EXPECT_EQ(files, 1u);  // the temp file was renamed away, not leaked
  fs::remove_all(dir);
}

TEST(Snapshot, ApplyRecordRejectsImpossibleTransitions) {
  StateImage img;
  EXPECT_FALSE(apply_record(img, release_rec(5, ReleaseCause::kResolved), 1));  // unknown rid
  EXPECT_TRUE(apply_record(img, reserve_rec(5, 1, 100), 1));
  EXPECT_FALSE(apply_record(img, reserve_rec(5, 1, 100), 2));  // double reserve
  EXPECT_TRUE(apply_record(img, accept_rec(5), 2));
  EXPECT_FALSE(apply_record(img, accept_rec(5), 3));  // double commit
  EXPECT_TRUE(apply_record(img, dispute_open_rec(1, 0x11), 3));
  EXPECT_FALSE(apply_record(img, dispute_open_rec(1, 0x11), 4));     // dup dispute
  EXPECT_FALSE(apply_record(img, dispute_resolve_rec(1, 0x22), 4));  // wrong txid
  EXPECT_TRUE(apply_record(img, dispute_resolve_rec(1, 0x11), 4));
  EXPECT_EQ(img.last_seq, 4u);
  EXPECT_EQ(img.resolved_disputes, 1u);
  // Releasing an accepted reservation also retires the accepted entry.
  EXPECT_TRUE(apply_record(img, release_rec(5, ReleaseCause::kResolved), 5));
  EXPECT_TRUE(img.accepted.empty());
  EXPECT_TRUE(img.reservations.empty());
}

TEST(Snapshot, EpochOnlyRatchetsUpAndHeadersStayUnique) {
  StateImage img;
  EXPECT_TRUE(apply_record(img, epoch_rec(2), 1));
  EXPECT_EQ(img.epoch, 2u);
  EXPECT_FALSE(apply_record(img, epoch_rec(2), 2));  // no re-entry
  EXPECT_FALSE(apply_record(img, epoch_rec(1), 2));  // no regression
  EXPECT_TRUE(apply_record(img, epoch_rec(5), 2));
  EXPECT_EQ(img.epoch, 5u);

  EXPECT_TRUE(apply_record(img, header_rec(0x10), 3));
  EXPECT_FALSE(apply_record(img, header_rec(0x10), 4));  // duplicate header
  EXPECT_TRUE(apply_record(img, header_rec(0x20), 4));
  ASSERT_EQ(img.headers.size(), 2u);

  // Headers serialize in insertion order — the order is logical content
  // (restore re-accepts sequentially), unlike the sorted entry sections.
  const auto back = StateImage::deserialize(img.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, 5u);
  ASSERT_EQ(back->headers.size(), 2u);
  EXPECT_EQ(back->headers[0], img.headers[0]);
  EXPECT_EQ(back->headers[1], img.headers[1]);
}

// --------------------------------------------------------- durable store

/// The deterministic event tape used by the crash-point tests: a full
/// reserve/accept/dispute/release lifecycle across two escrows.
std::vector<StoreRecord> event_tape() {
  std::vector<StoreRecord> tape;
  tape.push_back(reserve_rec(0x101, 1, 1000));
  tape.push_back(reserve_rec(0x202, 2, 2000));
  tape.push_back(accept_rec(0x101));
  tape.push_back(dispute_open_rec(1, 0x31));
  tape.push_back(release_rec(0x202, ReleaseCause::kExpired));
  tape.push_back(reserve_rec(0x303, 2, 500));
  tape.push_back(dispute_resolve_rec(1, 0x31));
  tape.push_back(accept_rec(0x303));
  tape.push_back(release_rec(0x101, ReleaseCause::kResolved));
  tape.push_back(dispute_open_rec(2, 0x44));
  return tape;
}

TEST(DurableStoreTest, OpenEmptyAppendReopenReplays) {
  const std::string dir = scratch_dir("replay");
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  RecoveryInfo info;
  {
    auto st = DurableStore::open(dir, opts, &info);
    ASSERT_NE(st, nullptr) << info.error;
    EXPECT_EQ(info.replayed_records, 0u);
    for (const auto& rec : event_tape()) ASSERT_TRUE(st->append(rec).has_value());
    ASSERT_TRUE(st->commit());
    EXPECT_EQ(st->wal_appends(), event_tape().size());
  }
  auto st = DurableStore::open(dir, opts, &info);
  ASSERT_NE(st, nullptr) << info.error;
  EXPECT_EQ(info.replayed_records, event_tape().size());
  EXPECT_EQ(info.snapshot_seq, 0u);
  EXPECT_FALSE(info.truncated_tail);

  StateImage control;
  std::uint64_t seq = 0;
  for (const auto& rec : event_tape()) ASSERT_TRUE(apply_record(control, rec, ++seq));
  EXPECT_EQ(st->image_copy().serialize(), control.serialize());

  // Sequence numbering resumes exactly where the replay ended.
  StoreRecord next = reserve_rec(0x404, 3, 10);
  const auto assigned = st->append(next);
  ASSERT_TRUE(assigned.has_value());
  EXPECT_EQ(*assigned, event_tape().size() + 1);
  fs::remove_all(dir);
}

TEST(DurableStoreTest, AppendRejectsInvalidTransitionWithoutLogging) {
  const std::string dir = scratch_dir("invalid-transition");
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  auto st = DurableStore::open(dir, opts);
  ASSERT_NE(st, nullptr);
  ASSERT_TRUE(st->append(reserve_rec(1, 1, 10)).has_value());
  const auto appends_before = st->wal_appends();
  EXPECT_FALSE(st->append(reserve_rec(1, 1, 10)).has_value());  // double reserve
  EXPECT_EQ(st->wal_appends(), appends_before);  // nothing hit the log
  EXPECT_EQ(st->image_copy().reservations.size(), 1u);
  fs::remove_all(dir);
}

TEST(DurableStoreTest, RecoveryByteExactAtEveryCrashPoint) {
  // The acceptance property: crash after ANY prefix of the event tape and
  // the recovered image must serialize byte-identically to a control
  // image that applied exactly those events and never crashed.
  const auto tape = event_tape();
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  for (std::size_t crash_at = 0; crash_at <= tape.size(); ++crash_at) {
    const std::string dir = scratch_dir("crash-" + std::to_string(crash_at));
    {
      auto st = DurableStore::open(dir, opts);
      ASSERT_NE(st, nullptr);
      for (std::size_t i = 0; i < crash_at; ++i) {
        ASSERT_TRUE(st->append(tape[i]).has_value());
        ASSERT_TRUE(st->commit());
      }
      // Destructor without sync(): the crash. (kNone means the "disk"
      // state is whatever stdio flushed — the close flushes it all, so
      // this models crash-after-commit; torn commits are covered by the
      // FaultFile and prefix tests.)
    }
    RecoveryInfo info;
    auto st = DurableStore::open(dir, opts, &info);
    ASSERT_NE(st, nullptr) << "crash_at " << crash_at << ": " << info.error;
    StateImage control;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < crash_at; ++i) {
      ASSERT_TRUE(apply_record(control, tape[i], ++seq));
    }
    EXPECT_EQ(st->image_copy().serialize(), control.serialize()) << "crash_at " << crash_at;
    st.reset();
    fs::remove_all(dir);
  }
}

TEST(DurableStoreTest, RecoveryFromEveryWalBytePrefix) {
  // Byte-level variant: truncate the WAL segment itself at every offset
  // (the torn-write shape a real crash leaves) and reopen. Recovery must
  // always succeed and yield the image of the complete-record prefix.
  const auto tape = event_tape();
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  const std::string ref_dir = scratch_dir("prefix-ref");
  {
    auto st = DurableStore::open(ref_dir, opts);
    ASSERT_NE(st, nullptr);
    for (const auto& rec : tape) ASSERT_TRUE(st->append(rec).has_value());
    ASSERT_TRUE(st->sync());
  }
  Bytes full;
  {
    std::ifstream in(ref_dir + "/wal-0000000000000001.wal", std::ios::binary);
    ASSERT_TRUE(in.good());
    full.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), kWalHeaderSize);

  const std::string dir = scratch_dir("prefix-run");
  for (std::size_t cut = 0; cut <= full.size(); cut += 3) {  // stride keeps runtime sane
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
      std::ofstream out(dir + "/wal-0000000000000001.wal", std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(full.data()), static_cast<std::streamsize>(cut));
    }
    RecoveryInfo info;
    auto st = DurableStore::open(dir, opts, &info);
    ASSERT_NE(st, nullptr) << "cut " << cut << ": " << info.error;
    const auto scan = scan_wal({full.data(), cut}, 1);
    StateImage control;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      ASSERT_TRUE(apply_record(control, tape[i], ++seq));
    }
    EXPECT_EQ(st->image_copy().serialize(), control.serialize()) << "cut " << cut;
    EXPECT_EQ(info.replayed_records, scan.records.size());
  }
  fs::remove_all(ref_dir);
  fs::remove_all(dir);
}

TEST(DurableStoreTest, TornTailPhysicallyTruncatedOnRecovery) {
  const std::string dir = scratch_dir("torn");
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  {
    auto st = DurableStore::open(dir, opts);
    ASSERT_NE(st, nullptr);
    ASSERT_TRUE(st->append(reserve_rec(1, 1, 10)).has_value());
    ASSERT_TRUE(st->append(reserve_rec(2, 1, 20)).has_value());
    ASSERT_TRUE(st->sync());
  }
  const std::string seg = dir + "/wal-0000000000000001.wal";
  const auto clean_size = fs::file_size(seg);
  {
    std::ofstream out(seg, std::ios::binary | std::ios::app);
    const char junk[] = {0x13, 0x37, 0x00};  // 3 bytes: torn record header
    out.write(junk, sizeof(junk));
  }
  RecoveryInfo info;
  auto st = DurableStore::open(dir, opts, &info);
  ASSERT_NE(st, nullptr) << info.error;
  EXPECT_TRUE(info.truncated_tail);
  EXPECT_EQ(info.replayed_records, 2u);
  // "Truncate at first bad checksum": the junk is gone from disk, so the
  // next open sees a clean log again.
  EXPECT_EQ(fs::file_size(seg), clean_size);
  st.reset();
  RecoveryInfo info2;
  auto st2 = DurableStore::open(dir, opts, &info2);
  ASSERT_NE(st2, nullptr) << info2.error;
  EXPECT_FALSE(info2.truncated_tail);
  EXPECT_EQ(info2.replayed_records, 2u);
  st2.reset();
  fs::remove_all(dir);
}

TEST(DurableStoreTest, MidLogCorruptionFailsClosed) {
  const std::string dir = scratch_dir("midlog");
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  {
    auto st = DurableStore::open(dir, opts);
    ASSERT_NE(st, nullptr);
    for (const auto& rec : event_tape()) ASSERT_TRUE(st->append(rec).has_value());
    ASSERT_TRUE(st->sync());
  }
  const std::string seg = dir + "/wal-0000000000000001.wal";
  {
    // Flip one payload byte of the FIRST record — plenty of valid data
    // follows, so this can only be silent corruption.
    std::fstream f(seg, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(kWalHeaderSize + kWalRecordHeaderSize + 1));
    char b = 0;
    f.read(&b, 1);
    f.seekp(static_cast<std::streamoff>(kWalHeaderSize + kWalRecordHeaderSize + 1));
    b = static_cast<char>(b ^ 0x01);
    f.write(&b, 1);
  }
  RecoveryInfo info;
  auto st = DurableStore::open(dir, opts, &info);
  EXPECT_EQ(st, nullptr);
  EXPECT_FALSE(info.error.empty());
  fs::remove_all(dir);
}

TEST(DurableStoreTest, DuplicateSequenceSegmentFailsClosed) {
  const std::string dir = scratch_dir("dupseq");
  fs::create_directories(dir);
  Bytes image;
  append_wal_header(image);
  append_wal_record(image, 1, reserve_rec(1, 1, 10).serialize());
  append_wal_record(image, 1, reserve_rec(2, 1, 20).serialize());  // duplicate seq
  {
    std::ofstream out(dir + "/wal-0000000000000001.wal", std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
  }
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  RecoveryInfo info;
  EXPECT_EQ(DurableStore::open(dir, opts, &info), nullptr);
  EXPECT_FALSE(info.error.empty());
  fs::remove_all(dir);
}

TEST(DurableStoreTest, SnapshotCompactsPrunesAndBoundsReplay) {
  const std::string dir = scratch_dir("compact");
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  opts.snapshot_every = 4;
  StateImage control;
  std::uint64_t seq = 0;
  {
    auto st = DurableStore::open(dir, opts);
    ASSERT_NE(st, nullptr);
    for (const auto& rec : event_tape()) {
      ASSERT_TRUE(st->append(rec).has_value());
      ASSERT_TRUE(apply_record(control, rec, ++seq));
    }
    ASSERT_TRUE(st->commit());
    EXPECT_GE(st->snapshots_taken(), 2u);  // every 4 of 10 records
    EXPECT_GT(st->snapshot_bytes(), 0u);
  }
  // Pruning: one snapshot survives, and only segments past it.
  std::size_t snaps = 0;
  std::size_t wals = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".snap") ++snaps;
    if (e.path().extension() == ".wal") ++wals;
  }
  EXPECT_EQ(snaps, 1u);
  EXPECT_GE(wals, 1u);

  RecoveryInfo info;
  auto st = DurableStore::open(dir, opts, &info);
  ASSERT_NE(st, nullptr) << info.error;
  EXPECT_EQ(info.snapshot_seq, 8u);        // last auto-snapshot at record 8
  EXPECT_EQ(info.replayed_records, 2u);    // only the suffix replays
  EXPECT_EQ(st->image_copy().serialize(), control.serialize());
  st.reset();
  fs::remove_all(dir);
}

TEST(DurableStoreTest, ReadRangeCursorStreamsIdenticallyAndSurvivesStaleHints) {
  const std::string dir = scratch_dir("cursor");
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  auto st = DurableStore::open(dir, opts);
  ASSERT_NE(st, nullptr);
  constexpr std::uint64_t kPairs = 300;
  for (std::uint64_t i = 1; i <= kPairs; ++i) {
    ASSERT_TRUE(st->append(reserve_rec(i, 1 + (i % 4), 100 * i)).has_value());
    ASSERT_TRUE(st->append(release_rec(i, ReleaseCause::kResolved)).has_value());
  }
  ASSERT_TRUE(st->commit());
  const std::uint64_t committed = st->last_committed_seq();
  ASSERT_EQ(committed, 2 * kPairs);

  // Ground truth: one unhinted read of the whole range.
  const RangeScan full = st->read_range(1, static_cast<std::size_t>(committed));
  ASSERT_TRUE(full.ok()) << full.error;
  ASSERT_EQ(full.records.size(), committed);

  // Cursor-streamed batches must reproduce the exact same records, and
  // every hinted read past the first must be answered from the resume
  // offset, not a fresh segment parse.
  ReadCursor cursor;
  std::size_t streamed = 0;
  while (streamed < committed) {
    const RangeScan batch = st->read_range(streamed + 1, 64, &cursor);
    ASSERT_TRUE(batch.ok()) << batch.error;
    ASSERT_FALSE(batch.records.empty());
    for (const auto& rec : batch.records) {
      ASSERT_LT(streamed, full.records.size());
      EXPECT_EQ(rec.seq, full.records[streamed].seq);
      EXPECT_EQ(rec.payload, full.records[streamed].payload);
      ++streamed;
    }
    cursor = batch.resume;
    EXPECT_EQ(cursor.next_seq, streamed + 1);
    EXPECT_GT(cursor.offset, kWalHeaderSize);
  }
  EXPECT_EQ(streamed, committed);

  // A hint pointing at garbage (mid-record offset) must degrade to the
  // unhinted scan — same records, no error, never wrong bytes.
  ReadCursor stale;
  stale.segment = cursor.segment;
  stale.offset = cursor.offset / 2 + 3;  // almost surely mid-record
  stale.next_seq = 10;
  const RangeScan recovered = st->read_range(10, 16, &stale);
  ASSERT_TRUE(recovered.ok()) << recovered.error;
  ASSERT_EQ(recovered.records.size(), 16u);
  for (std::size_t i = 0; i < recovered.records.size(); ++i) {
    EXPECT_EQ(recovered.records[i].seq, full.records[9 + i].seq);
    EXPECT_EQ(recovered.records[i].payload, full.records[9 + i].payload);
  }

  // A cursor that lags the requested range (buffer-served batches moved
  // from_seq ahead) still resumes: the scan skips forward from the
  // remembered offset instead of failing or rescanning.
  const RangeScan early = st->read_range(1, 8, nullptr);
  ASSERT_TRUE(early.ok());
  ReadCursor behind = early.resume;  // points at seq 9
  const RangeScan ahead = st->read_range(101, 8, &behind);
  ASSERT_TRUE(ahead.ok()) << ahead.error;
  ASSERT_EQ(ahead.records.size(), 8u);
  EXPECT_EQ(ahead.records.front().seq, 101u);
  EXPECT_EQ(ahead.records.front().payload, full.records[100].payload);

  st.reset();
  fs::remove_all(dir);
}

TEST(DurableStoreTest, CorruptNewestSnapshotFallsBackToOlderState) {
  const std::string dir = scratch_dir("snapfall");
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  {
    auto st = DurableStore::open(dir, opts);
    ASSERT_NE(st, nullptr);
    ASSERT_TRUE(st->append(reserve_rec(1, 1, 10)).has_value());
    ASSERT_TRUE(st->take_snapshot());
  }
  // Corrupt the snapshot body; the WAL alone still covers the state, so
  // recovery must fall back rather than fail or trust the bad bytes.
  std::string snap_path;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".snap") snap_path = e.path().string();
  }
  ASSERT_FALSE(snap_path.empty());
  {
    std::fstream f(snap_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    const char z = 0x5a;
    f.write(&z, 1);
  }
  RecoveryInfo info;
  auto st = DurableStore::open(dir, opts, &info);
  // The snapshot is the only holder of record 1 (the WAL was pruned at
  // snapshot time), so the fall-back path must fail closed: an older
  // state exists but the log to rebuild forward from it is gone.
  if (st != nullptr) {
    // Acceptable alternative: recovery succeeded from an older snapshot
    // or intact WAL coverage — state must still match.
    EXPECT_GE(info.snapshots_skipped, 1u);
  } else {
    EXPECT_FALSE(info.error.empty());
  }
  fs::remove_all(dir);
}

// --------------------------------------------------- gateway durability

/// Deployment-backed fixture (same idiom as GatewayUnit): one funded
/// escrow whose collateral fits exactly one payment's compensation plus
/// half — so a recovered reservation must block a second accept.
struct StoreGatewayUnit : ::testing::Test {
  StoreGatewayUnit() {
    core::DeploymentConfig cfg;
    cfg.seed = 4242;
    cfg.funded_coins = 3;
    cfg.collateral = 1'500'000;  // 1.5x the default 1'000'000 compensation
    dep = std::make_unique<core::Deployment>(cfg);
    now = static_cast<std::uint64_t>(dep->simulator().now());
    invoice = dep->merchant().make_invoice(5 * btc::kCoin, dep->config().compensation, now,
                                           10ULL * 60 * 1000);
    coins = sim::find_spendable(dep->customer_node().chain(),
                                dep->customer().btc_identity().script);
    pkg = dep->customer().create_fastpay(invoice, coins[0].first, coins[0].second.out.value, now,
                                         dep->config().binding_ttl_ms);
  }

  std::unique_ptr<gateway::Gateway> make_gateway(core::MerchantService& merchant) {
    auto gw = std::make_unique<gateway::Gateway>(merchant, pool, gateway::GatewayConfig{});
    gw->track_escrow(dep->customer().escrow_id());
    return gw;
  }

  [[nodiscard]] Bytes submit_frame(std::uint64_t request_id, const core::Invoice& inv,
                                   const core::FastPayPackage& p) const {
    gateway::SubmitFastPayRequest req;
    req.invoice_id = inv.invoice_id;
    req.package = p;
    return gateway::make_frame(gateway::MsgType::kSubmitFastPay, request_id, req.serialize());
  }

  static gateway::FastPayResultResponse decode_result(const Bytes& bytes) {
    const auto frame = gateway::Frame::deserialize(bytes);
    EXPECT_TRUE(frame.has_value());
    const auto resp = gateway::FastPayResultResponse::deserialize(frame->payload);
    EXPECT_TRUE(resp.has_value());
    return resp.value_or(gateway::FastPayResultResponse{});
  }

  common::ThreadPool pool{0};
  std::unique_ptr<core::Deployment> dep;
  std::uint64_t now = 0;
  core::Invoice invoice{};
  std::vector<std::pair<btc::OutPoint, btc::Coin>> coins;
  core::FastPayPackage pkg{};
};

TEST_F(StoreGatewayUnit, CrashBetweenAcceptAndFlushKeepsReservationNotAccept) {
  const std::string dir = scratch_dir("gw-accept-flush");
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  auto st = DurableStore::open(dir, opts);
  ASSERT_NE(st, nullptr);

  auto gw = make_gateway(dep->merchant());
  gw->attach_store(st.get());
  gw->register_invoice(invoice);
  const auto resp = decode_result(gw->serve(submit_frame(1, invoice, pkg), now));
  ASSERT_TRUE(resp.accepted) << resp.reason;
  EXPECT_EQ(gw->commit_queue_depth(), 1u);
  // The accept was WAL-committed before the response left serve().
  EXPECT_GE(gw->stats().store_wal_appends(), 1u);

  // Crash between accept and flush: gateway memory and store handle die;
  // the commit queue entry is gone for good.
  gw.reset();
  st.reset();

  RecoveryInfo info;
  auto st2 = DurableStore::open(dir, opts, &info);
  ASSERT_NE(st2, nullptr) << info.error;
  EXPECT_EQ(info.replayed_records, 1u);
  const StateImage image = st2->image_copy();
  ASSERT_EQ(image.reservations.size(), 1u);
  EXPECT_TRUE(image.accepted.empty());  // flush never happened: not covered
  EXPECT_EQ(image.reservations[0].escrow_id, dep->customer().escrow_id());
  EXPECT_EQ(image.reservations[0].amount, pkg.binding.binding.compensation);

  auto gw2 = make_gateway(dep->merchant());
  gw2->attach_store(st2.get());
  ASSERT_TRUE(gw2->restore_from(image));
  // The binding was never booked (crash before flush), so the merchant
  // book is empty — but the collateral hold survived the crash.
  EXPECT_EQ(dep->merchant().pending().size(), 0u);
  const auto snap = gw2->escrow_snapshot(dep->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, pkg.binding.binding.compensation);

  // A second payment against the same escrow now overcommits the
  // recovered hold (1.0M held + 1.0M asked > 1.5M collateral): denied.
  const auto inv2 = dep->merchant().make_invoice(5 * btc::kCoin, dep->config().compensation, now,
                                                 10ULL * 60 * 1000);
  gw2->register_invoice(inv2);
  const auto pkg2 = dep->customer().create_fastpay(inv2, coins[1].first,
                                                   coins[1].second.out.value, now,
                                                   dep->config().binding_ttl_ms);
  const auto resp2 = decode_result(gw2->serve(submit_frame(2, inv2, pkg2), now));
  EXPECT_FALSE(resp2.accepted);
  EXPECT_EQ(resp2.code, core::RejectReason::kInsufficientCollateral);
  gw2.reset();
  st2.reset();
  fs::remove_all(dir);
}

TEST_F(StoreGatewayUnit, RecoveryRestoresFlushedAcceptsIntoFreshProcess) {
  const std::string dir = scratch_dir("gw-flushed");
  StoreOptions opts;
  opts.policy = FsyncPolicy::kNone;
  auto st = DurableStore::open(dir, opts);
  ASSERT_NE(st, nullptr);

  auto gw = make_gateway(dep->merchant());
  gw->attach_store(st.get());
  gw->register_invoice(invoice);
  const auto resp = decode_result(gw->serve(submit_frame(1, invoice, pkg), now));
  ASSERT_TRUE(resp.accepted) << resp.reason;
  (void)gw->flush_accepted();
  EXPECT_EQ(dep->merchant().pending().size(), 1u);

  // The stats dump mirrors the store counters.
  const std::string json = gw->stats().to_json();
  EXPECT_NE(json.find("\"wal_appends\""), std::string::npos);
  EXPECT_GE(gw->stats().store_wal_appends(), 2u);  // reserve + accept-commit

  gw.reset();
  st.reset();

  // A replacement process: same deployment parameters, empty merchant
  // book, recovers reservation AND accepted binding from disk.
  core::DeploymentConfig cfg2 = dep->config();
  auto dep2 = std::make_unique<core::Deployment>(cfg2);
  EXPECT_EQ(dep2->merchant().pending().size(), 0u);

  RecoveryInfo info;
  auto st2 = DurableStore::open(dir, opts, &info);
  ASSERT_NE(st2, nullptr) << info.error;
  EXPECT_EQ(info.replayed_records, 2u);
  const StateImage image = st2->image_copy();
  ASSERT_EQ(image.reservations.size(), 1u);
  ASSERT_EQ(image.accepted.size(), 1u);

  auto gw2 = std::make_unique<gateway::Gateway>(dep2->merchant(), pool, gateway::GatewayConfig{});
  gw2->track_escrow(dep2->customer().escrow_id());
  gw2->attach_store(st2.get());
  ASSERT_TRUE(gw2->restore_from(image));
  EXPECT_GE(gw2->stats().store_recovery_replayed(), 2u);

  ASSERT_EQ(dep2->merchant().pending().size(), 1u);
  const auto& restored = dep2->merchant().pending()[0];
  EXPECT_EQ(restored.package.binding.binding.btc_txid, pkg.payment_tx.txid());
  EXPECT_EQ(restored.invoice.invoice_id, invoice.invoice_id);
  EXPECT_EQ(restored.accepted_at_ms, now);
  const auto snap = gw2->escrow_snapshot(dep2->customer().escrow_id());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->local_reserved, pkg.binding.binding.compensation);
  gw2.reset();
  st2.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace btcfast::store
