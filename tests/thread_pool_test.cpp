// Thread pool and batch verification: deterministic output ordering for
// every thread count, exception propagation, a TSan-friendly smoke test,
// and the 1-vs-N integration guarantee (identical merchant decisions).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "btcfast/orchestrator.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/batch_verify.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"
#include "crypto/sigcache.h"

namespace btcfast {
namespace {

TEST(ThreadPool, InlinePoolRunsAtSubmit) {
  common::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  int x = 0;
  auto fut = pool.submit([&] { return ++x; });
  // Inline mode executes before submit returns.
  EXPECT_EQ(x, 1);
  EXPECT_EQ(fut.get(), 1);
}

TEST(ThreadPool, SubmitReturnsValues) {
  common::ThreadPool pool(3);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    common::ThreadPool pool(threads);
    auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW((void)fut.get(), std::runtime_error);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    common::ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> counts(kN);
    pool.parallel_for(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    common::ThreadPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i) {
                                     ran.fetch_add(1);
                                     if (i == 13) throw std::runtime_error("bad index");
                                   }),
                 std::runtime_error);
    EXPECT_GE(ran.load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroAndOneItems) {
  common::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.parallel_for(0, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

// TSan-friendly smoke: a stream of tiny tasks touching shared atomics —
// run under -DBTCFAST_SANITIZE=thread this exercises queue handoff,
// condition-variable wakeups, and joined shutdown.
TEST(ThreadPool, ConcurrencySmoke) {
  common::ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr std::uint64_t kTasks = 2000;
  std::vector<std::future<void>> futs;
  futs.reserve(kTasks);
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

// --- batch_verify -------------------------------------------------------

std::vector<crypto::SigCheckJob> make_jobs(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<crypto::SigCheckJob> jobs;
  for (int i = 0; i < n; ++i) {
    const auto key = *crypto::PrivateKey::from_scalar(crypto::U256(seed * 1000 + i + 1));
    const auto msg = rng.bytes<48>();
    crypto::SigCheckJob job;
    job.digest = crypto::sha256({msg.data(), msg.size()});
    job.pubkey = crypto::PublicKey::derive(key).serialize();
    job.sig = crypto::ecdsa_sign(key, job.digest).serialize();
    if (i % 3 == 2) job.sig[7] ^= 0x20;  // every third job is corrupted
    jobs.push_back(job);
  }
  return jobs;
}

TEST(BatchVerify, ResultsAreInputOrderedForEveryThreadCount) {
  const auto jobs = make_jobs(24, 42);
  std::vector<std::uint8_t> reference;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    common::ThreadPool pool(threads);
    crypto::SigCache cache;  // fresh cache per run: no cross-run warm-up
    const auto results = crypto::batch_verify(pool, jobs, &cache);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(results[i], i % 3 == 2 ? 0 : 1) << "job " << i << " threads " << threads;
    }
    if (reference.empty()) {
      reference = results;
    } else {
      EXPECT_EQ(results, reference) << "threads " << threads;
    }
  }
}

TEST(BatchVerify, OnlyValidJobsEnterTheCache) {
  const auto jobs = make_jobs(12, 7);
  common::ThreadPool pool(2);
  crypto::SigCache cache;
  (void)crypto::batch_verify(pool, jobs, &cache);
  std::size_t valid = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) valid += i % 3 != 2;
  EXPECT_EQ(cache.size(), valid);
  // Second pass is pure hits for the valid jobs, repeated misses for the rest.
  cache.reset_stats();
  (void)crypto::batch_verify(pool, jobs, &cache);
  EXPECT_EQ(cache.stats().hits, valid);
  EXPECT_EQ(cache.stats().misses, jobs.size() - valid);
}

TEST(BatchVerify, NullCacheAndEmptyBatch) {
  common::ThreadPool pool(2);
  EXPECT_TRUE(crypto::batch_verify(pool, {}, nullptr).empty());
  const auto jobs = make_jobs(6, 3);
  const auto results = crypto::batch_verify(pool, jobs, nullptr);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(results[i], i % 3 == 2 ? 0 : 1);
}

// Repeat-payer batches: 4 distinct keys spread across n jobs, so the
// precomp path (group-by-pubkey, shared per-key tables) is exercised.
std::vector<crypto::SigCheckJob> make_repeat_key_jobs(int n, std::uint64_t key_seed,
                                                      std::uint64_t msg_seed) {
  Rng rng(msg_seed);
  std::vector<crypto::PrivateKey> keys;
  for (int k = 0; k < 4; ++k) {
    keys.push_back(*crypto::PrivateKey::from_scalar(crypto::U256(key_seed * 100 + k + 1)));
  }
  std::vector<crypto::SigCheckJob> jobs;
  for (int i = 0; i < n; ++i) {
    const auto& key = keys[i % keys.size()];
    const auto msg = rng.bytes<48>();
    crypto::SigCheckJob job;
    job.digest = crypto::sha256({msg.data(), msg.size()});
    job.pubkey = crypto::PublicKey::derive(key).serialize();
    job.sig = crypto::ecdsa_sign(key, job.digest).serialize();
    if (i % 3 == 2) job.sig[7] ^= 0x20;
    jobs.push_back(job);
  }
  return jobs;
}

TEST(BatchVerify, PrecompCacheMatchesColdResultsAndWarmsUp) {
  const auto jobs = make_repeat_key_jobs(24, 9, 9);
  for (const std::size_t threads :
       {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    common::ThreadPool pool(threads);
    crypto::SigCache cold_cache;
    const auto reference = crypto::batch_verify(pool, jobs, &cold_cache);

    crypto::SigCache cache;
    crypto::PubkeyPrecompCache pre;
    const auto first = crypto::batch_verify(pool, jobs, &cache, &pre);
    EXPECT_EQ(first, reference) << "threads " << threads;
    // Each distinct key had a valid signature, so the batch notes every
    // key once; a second batch notes them again, which builds tables.
    crypto::SigCache cache2;
    const auto fresh = make_repeat_key_jobs(24, 9, 1009);
    (void)crypto::batch_verify(pool, fresh, &cache2, &pre);
    EXPECT_EQ(pre.stats().insertions, 4u) << "threads " << threads;
    // Third batch of new messages rides the warm tables and must agree
    // with a precomp-free run bit for bit.
    const auto third = make_repeat_key_jobs(24, 9, 2009);
    crypto::SigCache cache3;
    pre.reset_stats();
    const auto warm = crypto::batch_verify(pool, third, &cache3, &pre);
    crypto::SigCache cache4;
    const auto cold = crypto::batch_verify(pool, third, &cache4);
    EXPECT_EQ(warm, cold) << "threads " << threads;
    EXPECT_EQ(pre.stats().hits, 4u) << "threads " << threads;
  }
}

// --- 1-vs-N integration: identical merchant outcomes --------------------

std::vector<core::AcceptDecision> run_batch_intake(std::size_t threads) {
  core::DeploymentConfig cfg;
  cfg.seed = 77;
  cfg.funded_coins = 6;
  cfg.verify_threads = threads;
  core::Deployment dep(cfg);
  crypto::SigCache::global().clear();  // each run starts cold

  const auto now = static_cast<std::uint64_t>(dep.simulator().now());
  const auto coins =
      sim::find_spendable(dep.customer_node().chain(), dep.customer().btc_identity().script);
  std::vector<core::Invoice> invoices;
  std::vector<core::FastPayPackage> pkgs;
  for (std::size_t i = 0; i < 6 && i < coins.size(); ++i) {
    invoices.push_back(dep.merchant().make_invoice(2 * btc::kCoin, cfg.compensation, now,
                                                   60ULL * 60 * 1000));
    auto pkg = dep.customer().create_fastpay(invoices.back(), coins[i].first,
                                             coins[i].second.out.value, now, cfg.binding_ttl_ms);
    if (i == 2) pkg.binding.customer_sig[9] ^= 0x01;  // one package must be rejected
    pkgs.push_back(std::move(pkg));
  }
  auto decisions = dep.merchant().evaluate_fastpay_batch(pkgs, invoices, now);
  common::ThreadPool::configure_global(0);
  return decisions;
}

TEST(BatchVerifyIntegration, MerchantDecisionsIdenticalAtOneAndNThreads) {
  const auto inline_run = run_batch_intake(0);
  const auto pooled_run = run_batch_intake(4);
  ASSERT_EQ(inline_run.size(), pooled_run.size());
  ASSERT_FALSE(inline_run.empty());
  int rejected = 0;
  for (std::size_t i = 0; i < inline_run.size(); ++i) {
    EXPECT_EQ(inline_run[i].accepted, pooled_run[i].accepted) << "package " << i;
    EXPECT_EQ(inline_run[i].reason, pooled_run[i].reason) << "package " << i;
    rejected += !inline_run[i].accepted;
  }
  EXPECT_EQ(rejected, 1);  // exactly the corrupted binding
  EXPECT_FALSE(inline_run[2].accepted);
}

}  // namespace
}  // namespace btcfast
