// Tests for the PSC bytecode VM: opcode semantics, control flow, error
// handling, gas, and full contracts (a vault) deployed on the chain.
#include <gtest/gtest.h>

#include "common/serialize.h"
#include "psc/assembler.h"
#include "psc/chain.h"
#include "psc/vm.h"

namespace btcfast::psc {
namespace {

using crypto::U256;

/// Executes a code fragment against a scratch world; returns the status
/// and captures return data.
struct VmHarness {
  WorldState state;
  GasMeter meter{10'000'000, GasSchedule::istanbul()};
  std::vector<LogEvent> logs;
  Address self = Address::from_label("vm-self");
  Address caller = Address::from_label("vm-caller");
  Value call_value = 0;

  Status run(const Bytes& code, Bytes* ret = nullptr, ByteSpan calldata = {}) {
    HostContext host(state, meter, self, caller, call_value, 7, 123456, logs);
    return execute_bytecode(host, code, calldata, ret);
  }

  /// Runs code expected to RETURN one 32-byte word.
  U256 run_word(const Bytes& code, ByteSpan calldata = {}) {
    Bytes ret;
    const Status s = run(code, &ret, calldata);
    EXPECT_TRUE(s.ok()) << (s.ok() ? "" : s.error().to_string());
    EXPECT_EQ(ret.size(), 32u);
    return U256::from_be_bytes(ret);
  }
};

Bytes binary_op(std::uint64_t lhs_second, std::uint64_t rhs_top, Op op) {
  // Stack builds bottom-up: push second operand first.
  Assembler a;
  a.push(lhs_second).push(rhs_top).op(op).return_word();
  return a.assemble();
}

TEST(Vm, Arithmetic) {
  VmHarness h;
  EXPECT_EQ(h.run_word(binary_op(3, 4, Op::kAdd)), U256(7));
  EXPECT_EQ(h.run_word(binary_op(3, 4, Op::kMul)), U256(12));
  // SUB computes top - second.
  EXPECT_EQ(h.run_word(binary_op(3, 10, Op::kSub)), U256(7));
  EXPECT_EQ(h.run_word(binary_op(5, 20, Op::kDiv)), U256(4));
  EXPECT_EQ(h.run_word(binary_op(5, 23, Op::kMod)), U256(3));
  // Division by zero yields zero (EVM convention).
  EXPECT_EQ(h.run_word(binary_op(0, 23, Op::kDiv)), U256(0));
}

TEST(Vm, ComparisonAndBitwise) {
  VmHarness h;
  // LT/GT compare top vs second.
  EXPECT_EQ(h.run_word(binary_op(5, 3, Op::kLt)), U256(1));  // 3 < 5
  EXPECT_EQ(h.run_word(binary_op(3, 5, Op::kGt)), U256(1));  // 5 > 3
  EXPECT_EQ(h.run_word(binary_op(7, 7, Op::kEq)), U256(1));
  EXPECT_EQ(h.run_word(binary_op(0b1100, 0b1010, Op::kAnd)), U256(0b1000));
  EXPECT_EQ(h.run_word(binary_op(0b1100, 0b1010, Op::kOr)), U256(0b1110));
  EXPECT_EQ(h.run_word(binary_op(0b1100, 0b1010, Op::kXor)), U256(0b0110));
  // SHL/SHR: top is the shift amount.
  EXPECT_EQ(h.run_word(binary_op(1, 4, Op::kShl)), U256(16));
  EXPECT_EQ(h.run_word(binary_op(16, 4, Op::kShr)), U256(1));
}

TEST(Vm, IsZeroAndNot) {
  VmHarness h;
  Assembler a;
  a.push(0).op(Op::kIsZero).return_word();
  EXPECT_EQ(h.run_word(a.assemble()), U256(1));
  Assembler b;
  b.push(0).op(Op::kNot).return_word();
  EXPECT_EQ(h.run_word(b.assemble()), U256::max());
}

TEST(Vm, MemoryRoundTrip) {
  VmHarness h;
  Assembler a;
  a.push(0xdeadbeef).push(64).op(Op::kMStore);  // mem[64..96] = value
  a.push(64).op(Op::kMLoad).return_word();
  EXPECT_EQ(h.run_word(a.assemble()), U256(0xdeadbeef));
}

TEST(Vm, StoragePersistsWithinWorld) {
  VmHarness h;
  Assembler store;
  store.push(777).push(5).op(Op::kSStore);  // storage[5] = 777 (SSTORE pops key, value)
  ASSERT_TRUE(h.run(store.assemble()).ok());

  Assembler load;
  load.push(5).op(Op::kSLoad).return_word();
  EXPECT_EQ(h.run_word(load.assemble()), U256(777));
}

TEST(Vm, ControlFlow) {
  VmHarness h;
  // if (1) return 42; else return 13
  Assembler a;
  a.push(1).jump_if_to("yes");
  a.push(13).return_word();
  a.label("yes");
  a.push(42).return_word();
  EXPECT_EQ(h.run_word(a.assemble()), U256(42));
}

TEST(Vm, LoopSumsOneToTen) {
  VmHarness h;
  // storage[0] = sum(1..10) via a counter loop.
  Assembler a;
  a.push(0).push(1);  // stack: [sum, i]
  a.label("loop");
  // stack: [sum, i] -> sum += i; i += 1; if i <= 10 goto loop
  a.op(Op::kDup1);              // [sum, i, i]
  a.op(static_cast<Op>(0x91));  // SWAP2: [i, i, sum]
  a.op(Op::kAdd);               // [i, sum'], top = sum+i
  a.op(Op::kSwap1);             // [sum', i]
  a.push(1).op(Op::kAdd);       // [sum', i+1]
  a.op(Op::kDup1).push(11).op(Op::kEq);  // [sum, i, i==11]
  a.op(Op::kIsZero).jump_if_to("loop");
  a.op(Op::kPop);  // drop i
  a.return_word();
  EXPECT_EQ(h.run_word(a.assemble()), U256(55));
}

TEST(Vm, JumpToNonJumpdestRejected) {
  VmHarness h;
  Assembler a;
  a.push(1).op(Op::kJump);  // destination 1 is inside the PUSH data
  const Status s = h.run(a.assemble());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "vm-bad-jumpdest");
}

TEST(Vm, StackUnderflowRejected) {
  VmHarness h;
  Assembler a;
  a.op(Op::kAdd);
  EXPECT_EQ(h.run(a.assemble()).error().code, "vm-stack-underflow");
}

TEST(Vm, BadOpcodeRejected) {
  VmHarness h;
  Bytes code{0xEF};
  EXPECT_EQ(h.run(code).error().code, "vm-bad-opcode");
}

TEST(Vm, RevertCarriesReason) {
  VmHarness h;
  // memory[0..5] = "denied", then REVERT(0, 6).
  Assembler a;
  const std::string reason = "denied";
  U256 word;
  {
    ByteArray<32> buf{};
    for (std::size_t i = 0; i < reason.size(); ++i) buf[i] = static_cast<std::uint8_t>(reason[i]);
    word = U256::from_be_bytes({buf.data(), buf.size()});
  }
  a.push(word).push(0).op(Op::kMStore);
  a.push(6).push(0).op(Op::kRevert);
  const Status s = h.run(a.assemble());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "vm-revert");
  EXPECT_EQ(s.error().detail, "denied");
}

TEST(Vm, OutOfGasSurfacesViaMeter) {
  VmHarness h;
  h.meter = GasMeter(50, GasSchedule::istanbul());
  Assembler a;
  a.label("spin").jump_to("spin");
  EXPECT_THROW((void)h.run(a.assemble()), OutOfGas);
}

TEST(Vm, EnvironmentOpcodes) {
  VmHarness h;
  h.call_value = 4242;
  Assembler a;
  a.op(Op::kCallValue).return_word();
  EXPECT_EQ(h.run_word(a.assemble()), U256(4242));

  Assembler b;
  b.op(Op::kTimestamp).return_word();
  EXPECT_EQ(h.run_word(b.assemble()), U256(123456));

  Assembler c;
  c.op(Op::kNumber).return_word();
  EXPECT_EQ(h.run_word(c.assemble()), U256(7));
}

TEST(Vm, Sha256Opcode) {
  VmHarness h;
  // hash 32 zero bytes in memory.
  Assembler a;
  a.push(32).push(0).op(Op::kSha256).return_word();
  const auto expect = crypto::sha256(Bytes(32, 0));
  EXPECT_EQ(h.run_word(a.assemble()),
            U256::from_be_bytes({expect.data(), expect.size()}));
}

TEST(Vm, CalldataAndSelector) {
  VmHarness h;
  Bytes calldata{0xAA, 0xBB, 0xCC, 0xDD, 0x01, 0x02};
  Assembler a;
  a.push(0).op(Op::kCallDataLoad).push(224).op(Op::kShr).return_word();
  EXPECT_EQ(h.run_word(a.assemble(), calldata), U256(0xAABBCCDD));

  Assembler b;
  b.op(Op::kCallDataSize).return_word();
  EXPECT_EQ(h.run_word(b.assemble(), calldata), U256(6));
}

/// The showcase contract: a vault with per-caller balances.
///   credit()   [payable] — balance[caller] += msg.value
///   redeem(amount u64 @calldata[4..])  — pays out and decrements
///   balanceOf() — returns balance[caller]
Bytes vault_bytecode() {
  Assembler a;
  a.dispatch("credit", "credit");
  a.dispatch("redeem", "redeem");
  a.dispatch("balanceOf", "balanceOf");
  a.push(0).push(0).op(Op::kRevert);  // unknown selector

  a.label("credit");
  // storage[caller] += callvalue
  a.op(Op::kCaller).op(Op::kSLoad);      // [bal]
  a.op(Op::kCallValue).op(Op::kAdd);     // [bal']
  a.op(Op::kCaller).op(Op::kSStore);     // storage[caller] = bal'
  a.op(Op::kStop);

  a.label("redeem");
  // amount = calldata word at offset 4, shifted down to u64 (args are a
  // Writer-encoded u64le... keep it simple: args = 32-byte BE word).
  a.push(4).op(Op::kCallDataLoad);       // [amount]
  // if amount > balance: revert
  a.op(Op::kDup1).op(Op::kCaller).op(Op::kSLoad);  // [amount, amount, bal]
  a.op(Op::kLt);                          // [amount, bal<amount]
  a.jump_if_to("nsf");
  // storage[caller] -= amount
  a.op(Op::kDup1);                        // [amount, amount]
  a.op(Op::kCaller).op(Op::kSLoad);       // [amount, amount, bal]
  a.op(Op::kSub);                         // [amount, bal-amount]  (SUB: top - second)
  a.op(Op::kCaller).op(Op::kSStore);      // [amount]
  // pay(to=caller, amount): kPay pops (to, amount) with `to` on top.
  a.op(Op::kCaller).op(Op::kPay);         // [success]
  a.return_word();

  a.label("nsf");
  a.push(0).push(0).op(Op::kRevert);

  a.label("balanceOf");
  a.op(Op::kCaller).op(Op::kSLoad).return_word();
  return a.assemble();
}

struct VaultFixture : ::testing::Test {
  VaultFixture() {
    vault = chain.deploy("vault", std::make_unique<VmContract>(vault_bytecode()));
    chain.mint(alice, 1'000'000'000);
    chain.mint(bob, 1'000'000'000);
  }

  PscTx call(const Address& from, const std::string& method, Bytes args = {},
             Value value = 0) {
    PscTx tx;
    tx.from = from;
    tx.to = vault;
    tx.method = method;
    tx.args = std::move(args);
    tx.value = value;
    return tx;
  }

  static Bytes amount_arg(std::uint64_t v) {
    const auto be = U256(v).to_be_bytes();
    return Bytes(be.begin(), be.end());
  }

  PscChain chain;
  Address vault;
  Address alice = Address::from_label("alice");
  Address bob = Address::from_label("bob");
};

TEST_F(VaultFixture, CreditAndBalance) {
  ASSERT_TRUE(chain.execute_now(call(alice, "credit", {}, 5000), 0).success);
  const auto r = chain.execute_now(call(alice, "balanceOf"), 1);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(U256::from_be_bytes(r.return_data), U256(5000));
  // Bob's balance is independent.
  const auto rb = chain.execute_now(call(bob, "balanceOf"), 2);
  EXPECT_EQ(U256::from_be_bytes(rb.return_data), U256(0));
}

TEST_F(VaultFixture, RedeemPaysOut) {
  ASSERT_TRUE(chain.execute_now(call(alice, "credit", {}, 5000), 0).success);
  const Value before = chain.state().balance(alice);
  const auto r = chain.execute_now(call(alice, "redeem", amount_arg(3000)), 1);
  ASSERT_TRUE(r.success) << r.revert_reason;
  EXPECT_EQ(U256::from_be_bytes(r.return_data), U256(1));  // pay succeeded
  EXPECT_EQ(chain.state().balance(alice), before + 3000 - r.gas_used);
  EXPECT_EQ(chain.state().balance(vault), 2000u);
}

TEST_F(VaultFixture, OverdraftReverts) {
  ASSERT_TRUE(chain.execute_now(call(alice, "credit", {}, 100), 0).success);
  const auto r = chain.execute_now(call(alice, "redeem", amount_arg(5000)), 1);
  EXPECT_FALSE(r.success);
  // Balance unchanged by the revert.
  const auto rb = chain.execute_now(call(alice, "balanceOf"), 2);
  EXPECT_EQ(U256::from_be_bytes(rb.return_data), U256(100));
}

TEST_F(VaultFixture, UnknownMethodReverts) {
  const auto r = chain.execute_now(call(alice, "nonsense"), 0);
  EXPECT_FALSE(r.success);
}

TEST(VmSelector, StableAndDistinct) {
  EXPECT_EQ(method_selector("credit"), method_selector("credit"));
  EXPECT_NE(method_selector("credit"), method_selector("redeem"));
}

}  // namespace
}  // namespace btcfast::psc
