// Watchtower tests: the availability gap (offline customer loses a
// wrongful dispute) and its closure (the tower files the defense).
#include <gtest/gtest.h>

#include "btcfast/orchestrator.h"

namespace btcfast::core {
namespace {

constexpr SimTime kSimHour = 60 * 60 * 1000;

DeploymentConfig wrongful_dispute_config() {
  DeploymentConfig cfg;
  cfg.seed = 33;
  cfg.attacker_share = 0.0;        // honest customer
  cfg.dispute_after_ms = 60'000;   // impatient merchant
  cfg.evidence_window_ms = 90 * 60 * 1000;
  cfg.required_depth = 3;
  cfg.settle_confirmations = 3;
  cfg.poll_interval_ms = 30'000;
  return cfg;
}

TEST(Watchtower, OfflineCustomerLosesWithoutTower) {
  // Documents the availability assumption: nobody defends, so the
  // merchant's (wrongful) dispute wins by default.
  DeploymentConfig cfg = wrongful_dispute_config();
  cfg.customer_online = false;
  cfg.watchtower_enabled = false;
  Deployment dep(cfg);

  const auto r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted) << r.reject_reason;
  dep.run_for(6 * kSimHour);

  const auto s = dep.summarize();
  EXPECT_EQ(s.disputes_opened, 1u);
  EXPECT_EQ(s.judged_for_merchant, 1u);
  EXPECT_EQ(s.judged_for_customer, 0u);
  EXPECT_EQ(s.escrow_collateral, cfg.collateral - cfg.compensation);  // customer robbed
}

TEST(Watchtower, TowerDefendsOfflineCustomer) {
  DeploymentConfig cfg = wrongful_dispute_config();
  cfg.customer_online = false;
  cfg.watchtower_enabled = true;
  Deployment dep(cfg);

  const auto r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted) << r.reject_reason;
  dep.run_for(6 * kSimHour);

  const auto s = dep.summarize();
  EXPECT_EQ(s.disputes_opened, 1u);
  EXPECT_EQ(s.judged_for_customer, 1u);
  EXPECT_EQ(s.judged_for_merchant, 0u);
  EXPECT_EQ(s.escrow_collateral, cfg.collateral);  // collateral intact
  ASSERT_NE(dep.watchtower(), nullptr);
  EXPECT_GE(dep.watchtower()->defenses_filed(), 1u);
}

TEST(Watchtower, IdleWhenNothingDisputed) {
  DeploymentConfig cfg;
  cfg.seed = 44;
  cfg.watchtower_enabled = true;
  cfg.settle_confirmations = 3;
  Deployment dep(cfg);

  const auto r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted);
  dep.run_for(3 * kSimHour);

  EXPECT_EQ(dep.watchtower()->defenses_filed(), 0u);
  EXPECT_TRUE(dep.receipts_for("submitCustomerEvidence").empty());
}

TEST(Watchtower, CannotHelpAGuiltyCustomer) {
  // The tower only relays *true* SPV facts: when the customer really
  // double-spent, there is no inclusion proof to file, and the merchant
  // still wins.
  DeploymentConfig cfg;
  cfg.seed = 21;
  cfg.attacker_share = 0.6;
  cfg.attacker_give_up_deficit = 50;
  cfg.required_depth = 3;
  cfg.dispute_after_ms = 90 * 60 * 1000;
  cfg.evidence_window_ms = 60 * 60 * 1000;
  cfg.customer_online = false;
  cfg.watchtower_enabled = true;
  Deployment dep(cfg);

  const auto r = dep.perform_fastpay(10 * btc::kCoin);
  ASSERT_TRUE(r.accepted);
  dep.run_for(8 * kSimHour);

  const auto s = dep.summarize();
  EXPECT_EQ(s.judged_for_merchant, 1u);
  EXPECT_EQ(s.judged_for_customer, 0u);
}

TEST(Watchtower, ProtectUnprotectLifecycle) {
  DeploymentConfig cfg;
  cfg.seed = 55;
  cfg.watchtower_enabled = true;
  Deployment dep(cfg);
  auto* tower = dep.watchtower();
  ASSERT_NE(tower, nullptr);
  EXPECT_TRUE(tower->is_protecting(dep.customer().escrow_id()));
  tower->unprotect(dep.customer().escrow_id());
  EXPECT_FALSE(tower->is_protecting(dep.customer().escrow_id()));
  EXPECT_TRUE(tower->poll(1000).empty());
}

}  // namespace
}  // namespace btcfast::core
